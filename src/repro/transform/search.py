"""Performance-guided transformation search (paper section 3.2).

"Based on the symbolic performance comparison, the compiler can utilize
graph search algorithms, such as the A* algorithm, to choose program
transformation sequence systematically."

States are programs; edges are (transformation, site) applications.
The evaluation function is the predicted cost of the state, obtained
from an :class:`~repro.transform.incremental.IncrementalPredictor`
(so probing many variants stays cheap), evaluated either

* at a concrete workload point (``workload={"n": 100}``), or
* by symbolic comparison against the incumbent (``workload=None``):
  a successor replaces the incumbent only when the comparator proves it
  cheaper over the whole domain, or recommends it by integral mass.

``astar_search`` expands best-first on predicted cost; ``exhaustive``
enumerates every sequence up to a depth, as the oracle the E-SEARCH
bench compares node counts against.

Scaling machinery (the E-PSEARCH bench measures both):

* Visited states are keyed by :func:`~repro.ir.digest.stmts_digest`
  -- an O(changed spine) structural hash -- instead of the O(program)
  ``print_program`` rendering the first version used, and predicted
  costs live in a :class:`TranspositionTable` that can be shared
  across searches (an exhaustive oracle run after an A* run re-predicts
  nothing).
* Expansion proceeds in *rounds*: each round pops up to ``beam_width``
  nodes, generates and digest-dedups their successors in a fixed
  order, then evaluates all fresh candidates as one batch -- inline,
  through a caller-supplied ``evaluate_batch``, or on a
  :class:`~repro.transform.parallel.SearchPool` when
  ``search_workers > 1``.  Ordering (dedup, push, pop, tie-breaks)
  never depends on where evaluation ran, so for a given ``beam_width``
  the parallel search returns bit-identical results to the serial one;
  ``beam_width=1`` is exactly the classic serial A* expansion order.

Caveat: programs whose branches are not nearly equal get fresh
probability variables (``pt_N``) numbered in evaluation order; under a
concrete workload these bind identically either way, but symbolic-mode
searches over heavily branchy programs should stay serial.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Mapping, Sequence

from ..compare.comparator import Verdict, compare
from ..ir.digest import stmts_digest
from ..ir.nodes import Program
from ..cost.placement import placement_kernel
from ..machine.compiled import compile_ops
from ..obs import trace_span
from ..symbolic.expr import PerfExpr
from ..symbolic.intervals import Interval
from .base import Transformation
from .incremental import IncrementalPredictor

__all__ = [
    "RoundProgress",
    "SearchCheckpoint",
    "SearchResult",
    "SearchStep",
    "TranspositionTable",
    "astar_search",
    "exhaustive_search",
]


@dataclass(frozen=True)
class SearchStep:
    """One applied transformation in the winning sequence."""

    transformation: str
    description: str


@dataclass
class SearchResult:
    """Outcome of a transformation search."""

    program: Program
    cost: PerfExpr
    steps: tuple[SearchStep, ...]
    nodes_expanded: int
    nodes_generated: int
    rounds: int = 0
    completed: bool = True   # False when an ``on_round`` callback stopped it

    @property
    def sequence(self) -> str:
        return " ; ".join(s.description for s in self.steps) or "(original)"


@dataclass
class SearchCheckpoint:
    """The complete search state at a round boundary.

    Everything the round loop reads lives here -- the frontier heap,
    the digest dedup set, the incumbent, the tie-break order counter,
    and the transposition memo -- so a search resumed from a checkpoint
    replays the remaining rounds *bit-identically* to the uninterrupted
    run: same pops, same pushes, same tie-breaks, same result.  All
    members are picklable (programs, costs, and steps already cross
    process pools), which is what lets the service layer persist one
    per round and hand a killed shard's job to its ring successor.
    """

    rounds: int
    expanded: int
    generated: int
    next_order: int
    frontier: list
    seen: set[str]
    best_program: Program
    best_cost: PerfExpr
    best_steps: tuple[SearchStep, ...]
    best_scalar: Fraction | None
    table_costs: dict[str, PerfExpr] = field(default_factory=dict)


@dataclass
class RoundProgress:
    """What one expansion round produced (passed to ``on_round``).

    ``checkpoint`` is the state *after* this round; resuming from it
    re-enters the loop exactly where the callback saw it.  The callback
    returns ``False`` to stop the search cooperatively -- the returned
    :class:`SearchResult` then carries ``completed=False`` and the
    best-so-far incumbent.
    """

    round: int
    expanded: int
    generated: int
    frontier_size: int
    best_program: Program
    best_cost: PerfExpr
    best_steps: tuple[SearchStep, ...]
    checkpoint: SearchCheckpoint

    @property
    def best_sequence(self) -> str:
        return (" ; ".join(s.description for s in self.best_steps)
                or "(original)")


@dataclass
class TranspositionTable:
    """Digest-keyed memo of predicted costs, shared across searches.

    Predictions are pure functions of the program (for a fixed
    predictor), so entries never go stale while the predictor lives.
    Passing one table to consecutive searches -- an A* pass and its
    exhaustive oracle, or the same search re-run at a deeper
    ``max_depth`` -- answers every revisited state from the memo.
    """

    costs: dict[str, PerfExpr] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def lookup(self, digest: str) -> PerfExpr | None:
        cost = self.costs.get(digest)
        if cost is None:
            self.misses += 1
        else:
            self.hits += 1
        return cost

    def store(self, digest: str, cost: PerfExpr) -> None:
        self.costs[digest] = cost

    def __len__(self) -> int:
        return len(self.costs)


def _scalar_cost(cost: PerfExpr, workload: Mapping[str, int]) -> Fraction:
    bindings = dict(workload)
    for name in cost.poly.variables():
        if name not in bindings:
            # Unknowns the workload doesn't pin: midpoint of bounds or 1.
            interval = cost.effective_bounds()[name]
            try:
                bindings[name] = interval.midpoint()
            except ValueError:
                bindings[name] = Fraction(1)
    return cost.poly.evaluate(bindings)


def _root_cost(
    program: Program,
    digest: str,
    predictor: IncrementalPredictor,
    table: TranspositionTable,
) -> PerfExpr:
    cost = table.lookup(digest)
    if cost is None:
        cost = predictor.predict(program)
        table.store(digest, cost)
    return cost


def astar_search(
    program: Program,
    transformations: Sequence[Transformation],
    predictor: IncrementalPredictor,
    workload: Mapping[str, int] | None = None,
    max_depth: int = 3,
    max_nodes: int = 200,
    domain: Mapping[str, "Interval"] | None = None,
    *,
    beam_width: int = 1,
    search_workers: int = 0,
    table: TranspositionTable | None = None,
    evaluate_batch: Callable[[list[Program]], list[PerfExpr]] | None = None,
    on_round: Callable[[RoundProgress], Any] | None = None,
    resume_from: SearchCheckpoint | None = None,
) -> SearchResult:
    """Best-first search over transformation sequences.

    The priority is the predicted cost of the state (an admissible
    estimate of the best reachable final cost would require knowing the
    future; using the state's own cost makes this the standard
    cost-guided best-first variant of A* with zero path cost, which is
    what a compiler actually wants: the cheapest *program*, not the
    shortest sequence).

    ``beam_width`` nodes are popped per expansion round and their
    fresh successors evaluated as one batch; ``evaluate_batch`` (or a
    :class:`~repro.transform.parallel.SearchPool` spawned when
    ``search_workers > 1``) may run that batch on worker processes.
    Results are bit-identical to the serial path for a given
    ``beam_width``.

    Every candidate evaluated below bottoms out in the active placement
    kernel; the machine's op costs are interned once here so no round
    pays the first-call compilation.  Under ``kernel="arena"`` the
    machine's :class:`~repro.cost.arena.PlacementArena` is warmed too,
    so sibling candidates -- near-identical straight-line streams that
    differ only in a transformed suffix -- fork from shared prefix
    snapshots instead of re-dropping the common head.  Each round's
    successor batch is already digest-deduped before evaluation (the
    ``seen`` transposition guard), so commuting transformation orders
    cost one prediction, not many.

    ``on_round`` fires at every round boundary with a
    :class:`RoundProgress` (best-so-far incumbent plus a resumable
    :class:`SearchCheckpoint`); returning ``False`` stops the search
    cooperatively.  ``resume_from`` re-enters the loop from a prior
    checkpoint -- because the checkpoint captures the full loop state,
    the resumed search is bit-identical to never having stopped.
    """
    if beam_width < 1:
        raise ValueError("beam width must be at least 1")
    compile_ops(predictor.aggregator.machine)
    if placement_kernel() == "arena":
        from ..cost.arena import get_arena

        get_arena(predictor.aggregator.machine)
    table = table if table is not None else TranspositionTable()
    own_pool = None
    if evaluate_batch is None and search_workers > 1:
        from .parallel import SearchPool

        own_pool = SearchPool(
            program, predictor.aggregator.machine, workers=search_workers,
        )
        evaluate_batch = own_pool.evaluate
    try:
        return _astar_rounds(
            program, transformations, predictor, workload, max_depth,
            max_nodes, domain, beam_width, table, evaluate_batch,
            on_round, resume_from,
        )
    finally:
        if own_pool is not None:
            own_pool.close()


def _astar_rounds(
    program: Program,
    transformations: Sequence[Transformation],
    predictor: IncrementalPredictor,
    workload: Mapping[str, int] | None,
    max_depth: int,
    max_nodes: int,
    domain: Mapping[str, "Interval"] | None,
    beam_width: int,
    table: TranspositionTable,
    evaluate_batch: Callable[[list[Program]], list[PerfExpr]] | None,
    on_round: Callable[[RoundProgress], Any] | None = None,
    resume_from: SearchCheckpoint | None = None,
) -> SearchResult:
    with trace_span("transform.search") as span:
        if resume_from is not None:
            # Re-enter the loop with the checkpointed state verbatim:
            # same heap (copied -- the checkpoint may be reused), same
            # dedup set, same incumbent, same tie-break counter.
            table.costs.update(resume_from.table_costs)
            frontier = list(resume_from.frontier)
            seen = set(resume_from.seen)
            next_order = resume_from.next_order
            best_prog = resume_from.best_program
            best_cost = resume_from.best_cost
            best_steps = resume_from.best_steps
            best_scalar = resume_from.best_scalar
            expanded = resume_from.expanded
            generated = resume_from.generated
            rounds = resume_from.rounds
        else:
            frontier = []
            seen = set()
            next_order = 0
            expanded = 0
            generated = 0
            rounds = 0

        def push(prog: Program, cost: PerfExpr,
                 steps: tuple[SearchStep, ...], depth: int) -> None:
            nonlocal next_order
            priority = (
                float(_scalar_cost(cost, workload)) if workload is not None else 0.0
            )
            heapq.heappush(frontier, (priority, next_order, prog, cost, steps, depth))
            next_order += 1

        if resume_from is None:
            root_digest = stmts_digest(program.body)
            start_cost = _root_cost(program, root_digest, predictor, table)
            push(program, start_cost, (), 0)
            best_prog, best_cost, best_steps = program, start_cost, ()
            best_scalar = (
                _scalar_cost(start_cost, workload) if workload is not None
                else None
            )
            seen.add(root_digest)
            generated = 1

        stopped = False
        while frontier and expanded < max_nodes:
            rounds += 1
            # Pop this round's beam, updating the incumbent in pop order.
            beam: list[tuple[Program, tuple[SearchStep, ...], int]] = []
            while frontier and len(beam) < beam_width and expanded < max_nodes:
                _, _, prog, cost, steps, depth = heapq.heappop(frontier)
                expanded += 1
                if workload is not None:
                    scalar = _scalar_cost(cost, workload)
                    if scalar < best_scalar:
                        best_prog, best_cost, best_steps = prog, cost, steps
                        best_scalar = scalar
                elif _better(cost, best_cost, workload, domain):
                    best_prog, best_cost, best_steps = prog, cost, steps
                if depth < max_depth:
                    beam.append((prog, steps, depth))

            # Generate and digest-dedup successors in a fixed order.
            fresh: list[tuple[Program, str, tuple[SearchStep, ...], int]] = []
            known: list[tuple[Program, PerfExpr, tuple[SearchStep, ...], int]] = []
            for prog, steps, depth in beam:
                for transformation in transformations:
                    for site in transformation.sites(prog):
                        candidate = transformation.apply(prog, site)
                        digest = stmts_digest(candidate.body)
                        if digest in seen:
                            continue
                        seen.add(digest)
                        step = steps + (
                            SearchStep(transformation.name, site.description),
                        )
                        cost = table.lookup(digest)
                        if cost is None:
                            fresh.append((candidate, digest, step, depth + 1))
                        else:
                            known.append((candidate, cost, step, depth + 1))

            # Evaluate the fresh batch -- inline or on the pool; the
            # push order below is fixed either way.
            costs: list[PerfExpr] = []
            if fresh:
                programs = [candidate for candidate, _, _, _ in fresh]
                if evaluate_batch is not None:
                    costs = evaluate_batch(programs)
                else:
                    costs = [predictor.predict(p) for p in programs]
                for (candidate, digest, step, depth), cost in zip(fresh, costs):
                    table.store(digest, cost)
            for candidate, cost, step, depth in known:
                generated += 1
                push(candidate, cost, step, depth)
            for (candidate, digest, step, depth), cost in zip(fresh, costs):
                generated += 1
                push(candidate, cost, step, depth)

            if on_round is not None:
                checkpoint = SearchCheckpoint(
                    rounds=rounds, expanded=expanded, generated=generated,
                    next_order=next_order, frontier=list(frontier),
                    seen=set(seen), best_program=best_prog,
                    best_cost=best_cost, best_steps=best_steps,
                    best_scalar=best_scalar, table_costs=dict(table.costs),
                )
                verdict = on_round(RoundProgress(
                    round=rounds, expanded=expanded, generated=generated,
                    frontier_size=len(frontier), best_program=best_prog,
                    best_cost=best_cost, best_steps=best_steps,
                    checkpoint=checkpoint,
                ))
                if verdict is False:
                    stopped = True
                    break

        if span.recording:
            span.set(nodes_expanded=expanded, nodes_generated=generated,
                     rounds=rounds, beam_width=beam_width,
                     max_depth=max_depth, best_cost=str(best_cost),
                     best_sequence=" ; ".join(s.description for s in best_steps)
                     or "(original)")
    return SearchResult(best_prog, best_cost, best_steps, expanded, generated,
                        rounds, completed=not stopped)


def _better(
    candidate: PerfExpr,
    incumbent: PerfExpr,
    workload: Mapping[str, int] | None,
    domain: Mapping[str, "Interval"] | None = None,
) -> bool:
    if workload is not None:
        return _scalar_cost(candidate, workload) < _scalar_cost(incumbent, workload)
    result = compare(candidate, incumbent, domain=dict(domain) if domain else None)
    if result.verdict is Verdict.FIRST_ALWAYS:
        return True
    if result.verdict is Verdict.DEPENDS:
        return result.recommended("integral") is Verdict.FIRST_ALWAYS
    return False


def exhaustive_search(
    program: Program,
    transformations: Sequence[Transformation],
    predictor: IncrementalPredictor,
    workload: Mapping[str, int],
    max_depth: int = 3,
    max_nodes: int = 100_000,
    *,
    table: TranspositionTable | None = None,
) -> SearchResult:
    """Enumerate every sequence to ``max_depth`` (the oracle baseline).

    Costs are predicted once, at generation time, and carried through
    the work list -- the popped node is never re-predicted.  A shared
    ``table`` (e.g. from a preceding :func:`astar_search` on the same
    predictor) answers revisited states without any prediction at all.
    """
    table = table if table is not None else TranspositionTable()
    root_digest = stmts_digest(program.body)
    start_cost = _root_cost(program, root_digest, predictor, table)
    best_prog, best_cost, best_steps = program, start_cost, ()
    best_scalar = _scalar_cost(start_cost, workload)
    seen: set[str] = {root_digest}
    queue: list[tuple[Program, PerfExpr, tuple[SearchStep, ...], int]] = [
        (program, start_cost, (), 0)
    ]
    expanded = 0
    generated = 1
    while queue and expanded < max_nodes:
        prog, cost, steps, depth = queue.pop()
        expanded += 1
        scalar = _scalar_cost(cost, workload)
        if scalar < best_scalar:
            best_prog, best_cost, best_steps = prog, cost, steps
            best_scalar = scalar
        if depth >= max_depth:
            continue
        for transformation in transformations:
            for site in transformation.sites(prog):
                candidate = transformation.apply(prog, site)
                digest = stmts_digest(candidate.body)
                if digest in seen:
                    continue
                seen.add(digest)
                candidate_cost = table.lookup(digest)
                if candidate_cost is None:
                    candidate_cost = predictor.predict(candidate)
                    table.store(digest, candidate_cost)
                generated += 1
                queue.append(
                    (candidate, candidate_cost,
                     steps + (SearchStep(transformation.name, site.description),),
                     depth + 1)
                )
    return SearchResult(best_prog, best_cost, best_steps, expanded, generated)
