"""Performance-guided transformation search (paper section 3.2).

"Based on the symbolic performance comparison, the compiler can utilize
graph search algorithms, such as the A* algorithm, to choose program
transformation sequence systematically."

States are programs; edges are (transformation, site) applications.
The evaluation function is the predicted cost of the state, obtained
from an :class:`~repro.transform.incremental.IncrementalPredictor`
(so probing many variants stays cheap), evaluated either

* at a concrete workload point (``workload={"n": 100}``), or
* by symbolic comparison against the incumbent (``workload=None``):
  a successor replaces the incumbent only when the comparator proves it
  cheaper over the whole domain, or recommends it by integral mass.

``astar_search`` expands best-first on predicted cost; ``exhaustive``
enumerates every sequence up to a depth, as the oracle the E-SEARCH
bench compares node counts against.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Sequence

from ..compare.comparator import Verdict, compare
from ..ir.nodes import Program
from ..obs import trace_span
from ..ir.printer import print_program
from ..symbolic.expr import PerfExpr
from ..symbolic.intervals import Interval
from .base import Transformation
from .incremental import IncrementalPredictor

__all__ = ["SearchResult", "SearchStep", "astar_search", "exhaustive_search"]


@dataclass(frozen=True)
class SearchStep:
    """One applied transformation in the winning sequence."""

    transformation: str
    description: str


@dataclass
class SearchResult:
    """Outcome of a transformation search."""

    program: Program
    cost: PerfExpr
    steps: tuple[SearchStep, ...]
    nodes_expanded: int
    nodes_generated: int

    @property
    def sequence(self) -> str:
        return " ; ".join(s.description for s in self.steps) or "(original)"


def _scalar_cost(cost: PerfExpr, workload: Mapping[str, int]) -> Fraction:
    bindings = dict(workload)
    for name in cost.poly.variables():
        if name not in bindings:
            # Unknowns the workload doesn't pin: midpoint of bounds or 1.
            interval = cost.effective_bounds()[name]
            try:
                bindings[name] = interval.midpoint()
            except ValueError:
                bindings[name] = Fraction(1)
    return cost.poly.evaluate(bindings)


def astar_search(
    program: Program,
    transformations: Sequence[Transformation],
    predictor: IncrementalPredictor,
    workload: Mapping[str, int] | None = None,
    max_depth: int = 3,
    max_nodes: int = 200,
    domain: Mapping[str, "Interval"] | None = None,
) -> SearchResult:
    """Best-first search over transformation sequences.

    The priority is the predicted cost of the state (an admissible
    estimate of the best reachable final cost would require knowing the
    future; using the state's own cost makes this the standard
    cost-guided best-first variant of A* with zero path cost, which is
    what a compiler actually wants: the cheapest *program*, not the
    shortest sequence).
    """
    with trace_span("transform.search") as span:
        counter = itertools.count()
        start_cost = predictor.predict(program)
        frontier: list = []

        def push(prog: Program, cost: PerfExpr, steps: tuple[SearchStep, ...], depth: int):
            priority = (
                float(_scalar_cost(cost, workload)) if workload is not None else 0.0
            )
            heapq.heappush(frontier, (priority, next(counter), prog, cost, steps, depth))

        push(program, start_cost, (), 0)
        best_prog, best_cost, best_steps = program, start_cost, ()
        seen: set[str] = {print_program(program)}
        expanded = 0
        generated = 1

        while frontier and expanded < max_nodes:
            _, _, prog, cost, steps, depth = heapq.heappop(frontier)
            expanded += 1
            if _better(cost, best_cost, workload, domain):
                best_prog, best_cost, best_steps = prog, cost, steps
            if depth >= max_depth:
                continue
            for transformation in transformations:
                for site in transformation.sites(prog):
                    candidate = transformation.apply(prog, site)
                    key = print_program(candidate)
                    if key in seen:
                        continue
                    seen.add(key)
                    candidate_cost = predictor.predict(candidate)
                    generated += 1
                    push(
                        candidate,
                        candidate_cost,
                        steps + (SearchStep(transformation.name, site.description),),
                        depth + 1,
                    )
        if span.recording:
            span.set(nodes_expanded=expanded, nodes_generated=generated,
                     max_depth=max_depth, best_cost=str(best_cost),
                     best_sequence=" ; ".join(s.description for s in best_steps)
                     or "(original)")
    return SearchResult(best_prog, best_cost, best_steps, expanded, generated)


def _better(
    candidate: PerfExpr,
    incumbent: PerfExpr,
    workload: Mapping[str, int] | None,
    domain: Mapping[str, "Interval"] | None = None,
) -> bool:
    if workload is not None:
        return _scalar_cost(candidate, workload) < _scalar_cost(incumbent, workload)
    result = compare(candidate, incumbent, domain=dict(domain) if domain else None)
    if result.verdict is Verdict.FIRST_ALWAYS:
        return True
    if result.verdict is Verdict.DEPENDS:
        return result.recommended("integral") is Verdict.FIRST_ALWAYS
    return False


def exhaustive_search(
    program: Program,
    transformations: Sequence[Transformation],
    predictor: IncrementalPredictor,
    workload: Mapping[str, int],
    max_depth: int = 3,
    max_nodes: int = 100_000,
) -> SearchResult:
    """Enumerate every sequence to ``max_depth`` (the oracle baseline)."""
    best_prog, best_cost, best_steps = program, predictor.predict(program), ()
    seen: set[str] = {print_program(program)}
    queue: list[tuple[Program, tuple[SearchStep, ...], int]] = [(program, (), 0)]
    expanded = 0
    generated = 1
    while queue and expanded < max_nodes:
        prog, steps, depth = queue.pop()
        expanded += 1
        cost = predictor.predict(prog)
        if _scalar_cost(cost, workload) < _scalar_cost(best_cost, workload):
            best_prog, best_cost, best_steps = prog, cost, steps
        if depth >= max_depth:
            continue
        for transformation in transformations:
            for site in transformation.sites(prog):
                candidate = transformation.apply(prog, site)
                key = print_program(candidate)
                if key in seen:
                    continue
                seen.add(key)
                generated += 1
                queue.append(
                    (candidate,
                     steps + (SearchStep(transformation.name, site.description),),
                     depth + 1)
                )
    return SearchResult(best_prog, best_cost, best_steps, expanded, generated)
