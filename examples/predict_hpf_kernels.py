"""Reproduce the paper's Figure 7 table from the library API.

For every kernel of the suite (F1-F7, Matmul 4x4, Jacobi, RB), predict
the innermost basic block's cycles with the Tetris model, measure the
reference back-end schedule (our IBM xlf stand-in), and print the
comparison -- then show the whole-program symbolic costs per machine.

Run:  python examples/predict_hpf_kernels.py
"""

import repro
from repro.backend import simulate
from repro.bench import kernel, kernel_names, kernel_stream
from repro.cost import StraightLineEstimator
from repro.machine import get_machine


def main() -> None:
    machine = get_machine("power")
    estimator = StraightLineEstimator(machine)

    print("Figure 7 reproduction: straight-line basic blocks on POWER")
    print(f"{'kernel':8s} {'ops':>4s} {'predicted':>9s} {'reference':>9s} {'error':>8s}")
    for name in kernel_names():
        k = kernel(name)
        info = kernel_stream(k, machine)
        predicted = estimator.estimate(info.stream).cycles
        iterative = [i for i in info.stream if not i.one_time]
        reference = simulate(machine, iterative).cycles
        error = 100 * (predicted - reference) / reference
        print(f"{name:8s} {len(iterative):4d} {predicted:9d} "
              f"{reference:9d} {error:+7.1f}%")
    print()

    print("Whole-program symbolic costs (cycles):")
    for name in ("matmul", "jacobi", "rb"):
        k = kernel(name)
        row = [f"{name:8s}"]
        for machine_name in ("scalar", "power", "wide"):
            cost = repro.predict(k.program, machine=machine_name)
            row.append(f"{machine_name}: {cost}")
        print("  " + "   ".join(row))
    print()

    print("Matmul with memory-hierarchy costs included:")
    cost = repro.predict(kernel("matmul").program, include_memory=True)
    print(f"  {cost}")
    print(f"  at n=128: {float(cost.evaluate({'n': 128})):.3e} cycles")


if __name__ == "__main__":
    main()
