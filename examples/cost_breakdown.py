"""Explainable predictions: per-region cost breakdowns and profiling.

Shows two supporting features of the framework: the structured cost
report (why does this program cost what it costs?) and profile-driven
elimination of branch-probability unknowns (paper section 3.4).

Run:  python examples/cost_breakdown.py
"""

import repro
from repro.aggregate import CostAggregator, LibraryCostTable, explain_program, render_report
from repro.compare import ProfileData, apply_profile
from repro.ir import SymbolTable
from repro.machine import power_machine

SOURCE = """
program solver
  integer n, i, j
  real a(n,n), r(n), s, x
  s = 0.0
  do i = 1, n
    do j = 1, n
      s = s + a(j,i) * a(j,i)
    end do
  end do
  do i = 1, n
    if (r(i) .gt. x) then
      r(i) = r(i) - x
    else
      r(i) = r(i) * r(i) / x
    end if
  end do
  call report(s)
end
"""

LIBRARY_ROUTINE = """
subroutine report(value)
  real value, buffer(64)
  integer k
  do k = 1, 64
    buffer(k) = value
  end do
end subroutine
"""


def main() -> None:
    program = repro.parse_program(SOURCE)
    machine = power_machine()

    # Analyze the library routine from source (section 3.5): its cost
    # expression joins the table and prices the call site.
    library = LibraryCostTable()
    library.define_from_source(
        repro.parse_program(LIBRARY_ROUTINE), machine
    )
    aggregator = CostAggregator(
        machine, SymbolTable.from_program(program), library=library
    )

    report = explain_program(program, aggregator)
    print("Cost breakdown:")
    print(render_report(report))
    print()
    total = report.cost
    print(f"Total: {total}")

    # The conditional left a branch-probability unknown; a profile run
    # resolves it without guessing.
    prob_vars = [v for v in total.poly.variables() if v.startswith("pt_")]
    if prob_vars:
        (pt,) = prob_vars
        profile = ProfileData()
        for _ in range(97):
            profile.record_branch(pt, True)   # fast branch dominates
        for _ in range(3):
            profile.record_branch(pt, False)
        profiled = apply_profile(total, profile)
        print()
        print(f"Observed {pt}: 97/100 taken")
        print(f"Profiled cost: {profiled}")
        print(f"  at n=100: {float(profiled.evaluate({'n': 100})):.0f} cycles")


if __name__ == "__main__":
    main()
