"""Automatic performance-guided restructuring (paper section 3.2).

The A* search probes transformation sequences (unroll, interchange,
strip-mine, distribute, reorder), scoring each candidate with the
incremental symbolic predictor.  On this program it should discover
that the row-traversing sweep wants its loops interchanged, and that
the latency-bound update loop wants unrolling.

Run:  python examples/guided_restructuring.py
"""

import repro
from repro.aggregate import CostAggregator
from repro.ir import SymbolTable
from repro.machine import power_machine
from repro.memory import MemoryCostModel
from repro.transform import (
    Distribute,
    IncrementalPredictor,
    Interchange,
    ReorderStatements,
    StripMine,
    Unroll,
    UnrollAndJam,
    astar_search,
)

SOURCE = """
program workload
  integer n, i, j, k
  real a(n,n), b(n,n), x(n), y(n)
  real alpha
  do i = 1, n
    do j = 1, n
      a(j,i) = b(j,i) * alpha
    end do
  end do
  do k = 1, n
    y(k) = y(k) + alpha * x(k)
  end do
end
"""


def main() -> None:
    program = repro.parse_program(SOURCE)
    machine = power_machine()
    aggregator = CostAggregator(
        machine,
        SymbolTable.from_program(program),
        memory_model=MemoryCostModel(machine),
        include_memory=True,
    )
    predictor = IncrementalPredictor(aggregator)

    workload = {"n": 256}
    base = predictor.predict(program)
    print("Original program:")
    print(repro.print_program(program))
    print(f"Predicted cost: {base}")
    print(f"  at n=256    : {float(base.evaluate(workload)):.0f} cycles")
    print()

    result = astar_search(
        program,
        [Unroll(factors=(2, 4)), UnrollAndJam(factors=(2,)),
         Interchange(), StripMine(tiles=(16,)),
         Distribute(), ReorderStatements()],
        predictor,
        workload=workload,
        max_depth=2,
        max_nodes=300,
    )
    print(f"Search: expanded {result.nodes_expanded} nodes "
          f"(generated {result.nodes_generated}), "
          f"cache hit rate {predictor.stats.hit_rate:.0%}")
    print(f"Chosen sequence: {result.sequence}")
    print()
    print("Restructured program:")
    print(repro.print_program(result.program))
    print(f"Predicted cost: {result.cost}")
    improved = float(result.cost.evaluate(workload))
    original = float(base.evaluate(workload))
    print(f"  at n=256    : {improved:.0f} cycles "
          f"({original / improved:.2f}x speedup predicted)")


if __name__ == "__main__":
    main()
