"""Quickstart: predict the symbolic cost of a Fortran-style loop nest.

Run:  python examples/quickstart.py
"""

import repro

SOURCE = """
program saxpy
  integer n, i
  real x(n), y(n)
  real alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""


def main() -> None:
    program = repro.parse_program(SOURCE)
    print("Input program:")
    print(repro.print_program(program))

    # One call: parse tree -> two-level translation -> Tetris placement
    # -> symbolic aggregation.  The result is an exact polynomial in the
    # program's unknowns (here the trip count n).
    cost = repro.predict(program, machine="power")
    print(f"Predicted cost on POWER : {cost} cycles")
    print(f"  ... at n = 100        : {cost.evaluate({'n': 100})} cycles")
    print(f"  ... at n = 10**6      : {cost.evaluate({'n': 10 ** 6})} cycles")

    # The same program on different machines -- the portability story:
    # only the atomic-op mapping and cost table change.
    for machine in repro.machine_names():
        print(f"  on {machine:7s}: {repro.predict(program, machine=machine)}")

    # Add the memory hierarchy terms (cache-line fills, TLB):
    with_memory = repro.predict(program, include_memory=True)
    print(f"With memory costs       : {with_memory}")

    # Symbolic comparison: is the wide machine provably faster?  Bounds
    # on the unknown make the sign decidable without guessing its value.
    power_cost = repro.predict(program, "power")
    wide_cost = repro.predict(program, "wide")
    verdict = repro.compare(
        wide_cost, power_cost, domain={"n": repro.Interval(1, 10 ** 9)}
    )
    print(f"wide vs power (n >= 1)  : {verdict.verdict.value}")


if __name__ == "__main__":
    main()
