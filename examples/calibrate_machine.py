"""Training-set calibration of a machine description (section 2.2.1).

"When low level cost information is not available, a training-set like
approach can be used."  Here the 'hardware' is a machine whose FP unit
is secretly twice as slow as the data sheet claims; timing probe chains
against it recovers the true latency, and predictions made with the
calibrated table match reality again.

Run:  python examples/calibrate_machine.py
"""

import repro
from repro.backend import simulate
from repro.machine import (
    AtomicCostTable,
    AtomicOp,
    Machine,
    UnitCost,
    UnitKind,
    calibrate,
    power_machine,
)


def secretly_slow_power() -> Machine:
    """The 'real hardware': FP ops take 4 cycles, not the 2 on paper."""
    paper = power_machine()
    table = AtomicCostTable()
    for name in paper.table.names():
        op = paper.atomic(name)
        if name == "fpu_arith":
            table.define(AtomicOp(
                name, (UnitCost(UnitKind.FPU, 2, 2),),
                "FP arith: actually 4 cycles on this silicon",
            ))
        else:
            table.define(op)
    return Machine(
        name="power-actual",
        units=paper.units,
        table=table,
        atomic_mapping=dict(paper.atomic_mapping),
        supports_fma=True,
    )


def main() -> None:
    data_sheet = power_machine()
    hardware = secretly_slow_power()

    def stopwatch(chain):
        """On real hardware this would be a cycle counter."""
        return simulate(hardware, chain, with_spills=False).cycles

    print("Data sheet says fpu_arith latency:",
          data_sheet.atomic("fpu_arith").result_latency)
    print("Hardware actually delivers    :",
          hardware.atomic("fpu_arith").result_latency)
    print()

    fitted = calibrate(
        data_sheet, stopwatch, ops=["fpu_arith", "fxu_add", "lsu_load"]
    )
    print("Calibrated fpu_arith latency  :",
          fitted["fpu_arith"].result_latency)

    calibrated_machine = Machine(
        name="power-calibrated",
        units=data_sheet.units,
        table=fitted,
        atomic_mapping=dict(data_sheet.atomic_mapping),
        supports_fma=True,
    )

    program = repro.parse_program(
        "program t\n  integer n, i\n  real a(n), s\n"
        "  do i = 1, n\n    s = s + a(i) * a(i)\n  end do\nend\n"
    )
    before = repro.predict(program, machine=data_sheet)
    after = repro.predict(program, machine=calibrated_machine)
    truth = repro.predict(program, machine=hardware)
    print()
    print(f"Prediction with data-sheet table : {before}")
    print(f"Prediction with calibrated table : {after}")
    print(f"Prediction with true table       : {truth}")
    assert after.poly == truth.poly
    print("calibrated == truth: the table was recovered from timings alone")


if __name__ == "__main__":
    main()
