"""Choosing an unroll factor with the cost model (paper section 2.2.2).

The paper gives two ways to estimate the benefit of unrolling: inspect
the shape of the cost block (is the critical bin mostly empty?) or drop
the body into the bins several times.  This example runs both, then
verifies the chosen factor end-to-end against the whole-program
prediction and the symbolic comparison.

Run:  python examples/choose_unroll_factor.py
"""

import repro
from repro.bench import kernel_stream
from repro.bench.kernels import Kernel
from repro.cost import StraightLineEstimator
from repro.machine import power_machine
from repro.transform import Unroll

SOURCE = """
program update
  integer n, i
  real u(n), f(n)
  real dt
  do i = 1, n
    u(i) = u(i) + dt * f(i)
  end do
end
"""


def main() -> None:
    machine = power_machine()
    program = repro.parse_program(SOURCE)
    k = Kernel("update", "explicit update", SOURCE)
    info = kernel_stream(k, machine)
    estimator = StraightLineEstimator(machine)

    base = estimator.estimate(info.stream)
    print(f"Body: {len(info.stream)} atomic ops, {base.cycles} cycles/visit")
    print(f"Cost block: {base.block}")
    print(f"Unroll headroom (shape method): {base.block.unroll_headroom():.0%}")
    print()

    print("Repeated-dropping method (cycles per original iteration):")
    for factor in (1, 2, 4, 8):
        cost = estimator.estimate_unrolled(info.stream, factor)
        print(f"  x{factor}: {cost.cycles:3d} cycles for {factor} iterations "
              f"= {cost.cycles / factor:5.2f} /iter")
    recommended = estimator.recommend_unroll(info.stream)
    print(f"Recommended factor: {recommended}")
    print()

    # End-to-end check: transform the program and compare symbolically.
    unroll = Unroll(factors=(recommended,)) if recommended > 1 else None
    base_cost = repro.predict(program)
    print(f"Original cost   : {base_cost}")
    if unroll is not None:
        site = unroll.sites(program)[0]
        transformed = unroll.apply(program, site)
        new_cost = repro.predict(transformed)
        print(f"Unrolled x{recommended} cost: {new_cost}")
        result = repro.compare(
            new_cost, base_cost, domain={"n": repro.Interval(8, 10 ** 9)}
        )
        print(f"Symbolic verdict (n >= 8): {result.verdict.value}")
        print(repro.region_report(result))


if __name__ == "__main__":
    main()
