"""Sensitivity analysis and run-time test generation (paper section 3.4).

When bounds cannot decide which of two program versions is faster, the
framework (1) ranks the unknowns by how much they perturb the cost,
(2) computes the exact positivity condition of the cost difference, and
(3) emits a guarded two-version program -- multi-version code selected
at run time, with the guard generated from the performance expressions
themselves.

Run:  python examples/runtime_test_generation.py
"""

import repro
from repro.compare import build_guard, rank_variables, worth_testing
from repro.ir import print_stmts
from repro.transform import Unroll

SOURCE = """
program stencil
  integer n, i
  real u(n), f(n)
  real dt
  do i = 1, n
    u(i) = u(i) + dt * f(i)
  end do
end
"""


def main() -> None:
    program = repro.parse_program(SOURCE)
    base_cost = repro.predict(program)

    unroll = Unroll(factors=(8,))
    site = unroll.sites(program)[0]
    unrolled = unroll.apply(program, site)
    unrolled_cost = repro.predict(unrolled)

    print(f"Version A (original)  : {base_cost}")
    print(f"Version B (unrolled x8): {unrolled_cost}")
    print()

    # 1. Which unknowns drive the decision?
    point = {"n": 64}
    ranking = rank_variables(base_cost - unrolled_cost, point)
    print("Sensitivity ranking of the difference at n=64:")
    for score in ranking:
        print(f"  {score}")
    print()

    # 2. Where does each version win?
    # The deployment regime: loops here run at most a few hundred
    # iterations, so both versions hold real territory.
    result = repro.compare(
        unrolled_cost, base_cost, domain={"n": repro.Interval(1, 500)}
    )
    print(repro.region_report(result))
    print()

    # 3. Generate the guard and the two-version program.
    if worth_testing(result):
        guard = build_guard(result)
        print(f"Run-time test: {guard.description}")
        versioned = guard.guarded(
            (unrolled.body[0],),   # true arm: unrolled loop
            (program.body[0],),    # false arm: original loop
        )
        print()
        print("Multi-version code:")
        print(print_stmts((versioned,), indent=1))
    else:
        print("One version dominates enough that no run-time test is worth it.")


if __name__ == "__main__":
    main()
