"""E-TRACE -- tracing overhead on the prediction hot path.

The tracer's contract is that instrumentation left enabled in
production code costs nearly nothing while tracing is off: a call site
reduces to one context-variable read returning the shared no-op span.
This bench measures that directly:

* the wall time of one cold whole-program prediction (tracing off);
* the per-call cost of a disabled ``trace_span`` entry/exit;
* the number of span sites one such prediction actually fires
  (counted by running the same prediction once under a real tracer).

The disabled-mode overhead is then ``sites x per_call / predict_time``,
asserted under 5%.

The routed-path experiment extends the same claim to the full service
stack: warm ``/predict`` requests through an in-process router + shard,
tracing enabled vs disabled.  Enabled tracing (tracer per hop, spans,
exemplar-ring deposit, trace stitching) must stay within 5% of the
disabled median; the disabled path's *residual* instrumentation cost
(span sites firing the no-op) must stay within 1%.  Writes
``BENCH_TRACING.json``, the machine-readable gate the ``obs-smoke`` CI
job checks.
"""

import json
import statistics
import time

import repro
from repro.aggregate import CostAggregator
from repro.ir import SymbolTable
from repro.machine import power_machine
from repro.obs import Tracer, current_tracer, trace_span
from repro.service import PredictionEngine, ReproClient, make_router, make_server

from _report import RESULTS_DIR, emit_table

FOUR_LOOPS = """
program traced
  integer n, i1, i2, i3, i4
  real a(n), b(n), c(n), d(n)
  do i1 = 1, n
    a(i1) = a(i1) + 1.0
  end do
  do i2 = 1, n
    b(i2) = b(i2) * 2.0
  end do
  do i3 = 1, n
    c(i3) = c(i3) - 3.0
  end do
  do i4 = 1, n
    d(i4) = d(i4) / 4.0 + a(i4) * b(i4)
  end do
end
"""

NOOP_CALLS = 200_000


def _cold_predict(prog):
    machine = power_machine()
    CostAggregator(machine, SymbolTable.from_program(prog)).cost_program(prog)


def test_disabled_tracer_overhead(benchmark):
    def run():
        assert current_tracer() is None  # measuring *disabled* mode
        prog = repro.parse_program(FOUR_LOOPS)
        _cold_predict(prog)  # warm imports and parser caches

        # Wall time of a cold prediction, instrumentation disabled.
        samples = []
        for _ in range(5):
            t0 = time.perf_counter()
            _cold_predict(prog)
            samples.append(time.perf_counter() - t0)
        predict_time = sorted(samples)[len(samples) // 2]

        # Per-call cost of a disabled span site.
        t0 = time.perf_counter()
        for _ in range(NOOP_CALLS):
            with trace_span("cost.place"):
                pass
        per_call = (time.perf_counter() - t0) / NOOP_CALLS

        # How many sites one prediction fires (enabled run, same work).
        tracer = Tracer()
        with tracer.activate():
            _cold_predict(prog)
        sites = len(tracer) + tracer.dropped

        return predict_time, per_call, sites

    predict_time, per_call, sites = benchmark.pedantic(
        run, rounds=1, iterations=1)
    overhead = sites * per_call / predict_time
    emit_table(
        "E-TRACE",
        "disabled-tracer overhead on one cold whole-program prediction",
        ["prediction", "span sites", "per disabled site", "overhead"],
        [(f"{predict_time * 1e3:.2f}ms", sites,
          f"{per_call * 1e9:.0f}ns", f"{overhead:.3%}")],
        notes="overhead = sites x per-site cost / prediction time",
    )
    assert sites > 0
    assert overhead <= 0.05


def test_enabled_tracer_records_pipeline(benchmark):
    """Enabled mode: spans exist and stay bounded per prediction."""
    prog = repro.parse_program(FOUR_LOOPS)

    def run():
        tracer = Tracer()
        with tracer.activate():
            _cold_predict(prog)
        return tracer

    tracer = benchmark.pedantic(run, rounds=1, iterations=1)
    names = {s["name"] for s in tracer.export()}
    assert {"aggregate.program", "aggregate.loop",
            "translate.specialize", "cost.place"} <= names
    assert tracer.dropped == 0


# ----------------------------------------------------------------------
# routed path: router + shard, tracing on vs off


ROUTED_WARMUP = 20
ROUTED_SAMPLES = 150

#: Gate values (mirrored in BENCH_TRACING.json for the CI job).
ENABLED_OVERHEAD_CEILING = 0.05
DISABLED_OVERHEAD_CEILING = 0.01


def _routed_medians(tracing: bool) -> tuple[float, str]:
    """Median warm ``/predict`` latency through a router; last request id.

    Router and shard run in-process: the point is the *relative* cost of
    the tracing machinery on an identical stack, and subprocess spawn /
    scheduler noise would only blur that.
    """
    engine = PredictionEngine(workers=0, cache_size=64)
    server = make_server(engine, port=0, tracing=tracing)
    server.start_background()
    router = make_router(
        [f"http://127.0.0.1:{server.port}"], port=0,
        tracing=tracing, probe_interval=30.0, backoff=0.01)
    router.start_background()
    try:
        with ReproClient(f"http://127.0.0.1:{router.port}") as client:
            for _ in range(ROUTED_WARMUP):
                client.predict(FOUR_LOOPS)
            samples = []
            for _ in range(ROUTED_SAMPLES):
                t0 = time.perf_counter()
                client.predict(FOUR_LOOPS)
                samples.append(time.perf_counter() - t0)
            return statistics.median(samples), client.last_request_id
    finally:
        router.stop()
        server.stop()


def test_routed_path_tracing_overhead(benchmark):
    def run():
        disabled, _ = _routed_medians(tracing=False)
        enabled, last_rid = _routed_medians(tracing=True)

        # Residual disabled-mode cost: span sites a routed request fires
        # (router + shard hops, counted from a stitched enabled trace)
        # times the measured per-site no-op cost.
        t0 = time.perf_counter()
        for _ in range(NOOP_CALLS):
            with trace_span("router.forward"):
                pass
        per_call = (time.perf_counter() - t0) / NOOP_CALLS
        return disabled, enabled, last_rid, per_call

    disabled, enabled, last_rid, per_call = benchmark.pedantic(
        run, rounds=1, iterations=1)
    # Re-derive the per-request site count from one traced request.
    engine = PredictionEngine(workers=0, cache_size=64)
    server = make_server(engine, port=0, tracing=True)
    server.start_background()
    router = make_router(
        [f"http://127.0.0.1:{server.port}"], port=0,
        tracing=True, probe_interval=30.0, backoff=0.01)
    router.start_background()
    try:
        with ReproClient(f"http://127.0.0.1:{router.port}") as client:
            client.predict(FOUR_LOOPS)
            rid = client.last_request_id
        deadline = time.monotonic() + 10.0
        sites = 0
        while time.monotonic() < deadline:
            sites = len(router.fetch_trace(rid))
            if sites:
                break
            time.sleep(0.05)
    finally:
        router.stop()
        server.stop()

    enabled_overhead = max(0.0, enabled / disabled - 1.0)
    disabled_overhead = sites * per_call / disabled
    emit_table(
        "E-TRACE-ROUTED",
        "tracing overhead on the warm routed /predict path",
        ["mode", "median request", "overhead", "ceiling"],
        [("disabled", f"{disabled * 1e3:.3f}ms",
          f"{disabled_overhead:.3%}", f"{DISABLED_OVERHEAD_CEILING:.0%}"),
         ("enabled", f"{enabled * 1e3:.3f}ms",
          f"{enabled_overhead:.3%}", f"{ENABLED_OVERHEAD_CEILING:.0%}")],
        notes=f"{sites} stitched span sites/request; disabled overhead = "
              "sites x per-site no-op cost / disabled median",
    )
    gate = {
        "experiment": "E-TRACE-ROUTED",
        "disabled_median_seconds": disabled,
        "enabled_median_seconds": enabled,
        "span_sites_per_request": sites,
        "per_disabled_site_seconds": per_call,
        "enabled_overhead": enabled_overhead,
        "disabled_overhead": disabled_overhead,
        "enabled_ceiling": ENABLED_OVERHEAD_CEILING,
        "disabled_ceiling": DISABLED_OVERHEAD_CEILING,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_TRACING.json").write_text(
        json.dumps(gate, indent=2, sort_keys=True) + "\n")
    assert sites >= 2          # the trace really is stitched across hops
    assert disabled_overhead <= DISABLED_OVERHEAD_CEILING
    assert enabled_overhead <= ENABLED_OVERHEAD_CEILING
