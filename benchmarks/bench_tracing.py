"""E-TRACE -- tracing overhead on the prediction hot path.

The tracer's contract is that instrumentation left enabled in
production code costs nearly nothing while tracing is off: a call site
reduces to one context-variable read returning the shared no-op span.
This bench measures that directly:

* the wall time of one cold whole-program prediction (tracing off);
* the per-call cost of a disabled ``trace_span`` entry/exit;
* the number of span sites one such prediction actually fires
  (counted by running the same prediction once under a real tracer).

The disabled-mode overhead is then ``sites x per_call / predict_time``,
asserted under 5%.
"""

import time

import repro
from repro.aggregate import CostAggregator
from repro.ir import SymbolTable
from repro.machine import power_machine
from repro.obs import Tracer, current_tracer, trace_span

from _report import emit_table

FOUR_LOOPS = """
program traced
  integer n, i1, i2, i3, i4
  real a(n), b(n), c(n), d(n)
  do i1 = 1, n
    a(i1) = a(i1) + 1.0
  end do
  do i2 = 1, n
    b(i2) = b(i2) * 2.0
  end do
  do i3 = 1, n
    c(i3) = c(i3) - 3.0
  end do
  do i4 = 1, n
    d(i4) = d(i4) / 4.0 + a(i4) * b(i4)
  end do
end
"""

NOOP_CALLS = 200_000


def _cold_predict(prog):
    machine = power_machine()
    CostAggregator(machine, SymbolTable.from_program(prog)).cost_program(prog)


def test_disabled_tracer_overhead(benchmark):
    def run():
        assert current_tracer() is None  # measuring *disabled* mode
        prog = repro.parse_program(FOUR_LOOPS)
        _cold_predict(prog)  # warm imports and parser caches

        # Wall time of a cold prediction, instrumentation disabled.
        samples = []
        for _ in range(5):
            t0 = time.perf_counter()
            _cold_predict(prog)
            samples.append(time.perf_counter() - t0)
        predict_time = sorted(samples)[len(samples) // 2]

        # Per-call cost of a disabled span site.
        t0 = time.perf_counter()
        for _ in range(NOOP_CALLS):
            with trace_span("cost.place"):
                pass
        per_call = (time.perf_counter() - t0) / NOOP_CALLS

        # How many sites one prediction fires (enabled run, same work).
        tracer = Tracer()
        with tracer.activate():
            _cold_predict(prog)
        sites = len(tracer) + tracer.dropped

        return predict_time, per_call, sites

    predict_time, per_call, sites = benchmark.pedantic(
        run, rounds=1, iterations=1)
    overhead = sites * per_call / predict_time
    emit_table(
        "E-TRACE",
        "disabled-tracer overhead on one cold whole-program prediction",
        ["prediction", "span sites", "per disabled site", "overhead"],
        [(f"{predict_time * 1e3:.2f}ms", sites,
          f"{per_call * 1e9:.0f}ns", f"{overhead:.3%}")],
        notes="overhead = sites x per-site cost / prediction time",
    )
    assert sites > 0
    assert overhead <= 0.05


def test_enabled_tracer_records_pipeline(benchmark):
    """Enabled mode: spans exist and stay bounded per prediction."""
    prog = repro.parse_program(FOUR_LOOPS)

    def run():
        tracer = Tracer()
        with tracer.activate():
            _cold_predict(prog)
        return tracer

    tracer = benchmark.pedantic(run, rounds=1, iterations=1)
    names = {s["name"] for s in tracer.export()}
    assert {"aggregate.program", "aggregate.loop",
            "translate.specialize", "cost.place"} <= names
    assert tracer.dropped == 0
