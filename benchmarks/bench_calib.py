"""E-CALIB -- auto-calibration fidelity and width-sweep amortisation.

Two questions, two floors (both gated by the ``calib-smoke`` CI job):

* is calibration *faithful*: perturb the POWER cost table, treat a
  simulator over the perturbed machine as the ground-truth cycle
  oracle, calibrate the pristine base against it, then predict a pool
  of validation kernels with the recovered table.  Mean relative
  prediction error vs the oracle machine must be <= 5%;
* is the sweep *amortised*: an 8-width ``/sweep`` through the engine
  shares translation and batches arena placement across the family, so
  its warm p50 must stay within 3x of a warm single-width ``/predict``
  -- not the naive 8x of predicting each width separately.

Besides ``E-CALIB.txt`` this writes
``benchmarks/results/BENCH_CALIB.json`` for the CI gate.
"""

import dataclasses
import json
import statistics
import time
from fractions import Fraction

import repro
from repro.calib import SimulatorOracle, calibrate_machine
from repro.machine import AtomicCostTable, AtomicOp, UnitCost, power_machine
from repro.service import PredictionEngine

from _report import RESULTS_DIR, emit_table

#: Deterministic table perturbation: (noncoverable delta, coverable
#: delta) per primary cost.  Mixed signs and magnitudes so recovery is
#: not a fixpoint no-op.
TRUTH_DELTAS = {
    "fpu_arith": (1, 1),
    "fpu_div": (2, 0),
    "fxu_add": (1, 0),
    "fxu_mul3": (0, 2),
    "lsu_load": (0, 1),
    "lsu_store": (1, 1),
}

#: Validation kernels: structurally distinct loop bodies, none of them
#: probe shapes, so accuracy is measured on real programs.
VALIDATION_KERNELS = (
    ("saxpy", """
program saxpy
  integer n, i
  real alpha, x(n), y(n)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""),
    ("dot", """
program dot
  integer n, i
  real s, x(n), y(n)
  do i = 1, n
    s = s + x(i) * y(i)
  end do
end
"""),
    ("mixed", """
program mixed
  integer n, i
  real a(n), b(n), c(n)
  do i = 1, n
    a(i) = b(i) * c(i) + a(i)
    c(i) = a(i) / b(i)
    b(i) = b(i) + 2.0
  end do
end
"""),
)

VALIDATION_SIZES = (16, 50, 128, 400)

SWEEP_WIDTHS = [1, 2, 3, 4, 5, 6, 7, 8]

SWEEP_SRC = VALIDATION_KERNELS[0][1]


def _truth_machine():
    """POWER with the primary costs shifted by TRUTH_DELTAS."""
    base = power_machine()
    table = AtomicCostTable()
    for name in base.table.names():
        op = base.atomic(name)
        dn, dc = TRUTH_DELTAS.get(name, (0, 0))
        primary = op.costs[0]
        # noncoverable stays >= 1: fully-coverable ops are
        # dispatch-bound and outside the calibration algebra.
        shifted = UnitCost(primary.unit,
                           max(1, primary.noncoverable + dn),
                           max(0, primary.coverable + dc))
        table.define(AtomicOp(name, (shifted,) + op.costs[1:],
                              op.description))
    return dataclasses.replace(base, name="power-truth", table=table)


def _prediction_error():
    """Calibrate against the perturbed oracle, validate on kernels."""
    truth = _truth_machine()
    result = calibrate_machine(power_machine(), SimulatorOracle(truth),
                               name="power-recovered")
    recovered = result.machine
    errors = []
    for _, source in VALIDATION_KERNELS:
        program = repro.parse_program(source)
        want = repro.predict(program, machine=truth)
        got = repro.predict(program, machine=recovered)
        for n in VALIDATION_SIZES:
            bindings = {"n": Fraction(n)}
            truth_cycles = float(want.evaluate(bindings))
            errors.append(abs(float(got.evaluate(bindings)) - truth_cycles)
                          / truth_cycles)
    return {
        "probes": result.probes,
        "fit_mean_abs_residual": result.mean_abs_residual,
        "fit_mean_relative_error": result.mean_relative_error,
        "validation_points": len(errors),
        "prediction_rel_error_mean": statistics.fmean(errors),
        "prediction_rel_error_max": max(errors),
    }


def _sweep_amortisation(reps):
    """Warm p50 of an 8-width engine sweep vs a single engine predict.

    Distinct bindings per rep keep every request a result-cache miss,
    so the ratio measures the shared-translation + batched-placement
    pipeline, not the cache.
    """
    engine = PredictionEngine(workers=0, cache_size=4096)
    try:
        for n in (11, 12, 13):            # warm parse/placement memos
            engine.handle("predict", {"source": SWEEP_SRC,
                                      "bindings": {"n": n}})
            engine.handle("sweep", {"source": SWEEP_SRC,
                                    "bindings": {"n": n},
                                    "widths": SWEEP_WIDTHS})
        predict_wall = []
        for rep in range(reps):
            payload = {"source": SWEEP_SRC,
                       "bindings": {"n": 1000 + rep}}
            t0 = time.perf_counter()
            result = engine.handle("predict", payload)
            predict_wall.append(time.perf_counter() - t0)
            assert "error" not in result, result
        sweep_wall = []
        for rep in range(reps):
            payload = {"source": SWEEP_SRC,
                       "bindings": {"n": 1000 + rep},
                       "widths": SWEEP_WIDTHS}
            t0 = time.perf_counter()
            result = engine.handle("sweep", payload)
            sweep_wall.append(time.perf_counter() - t0)
            assert "error" not in result, result
    finally:
        engine.close()
    predict_p50 = statistics.median(predict_wall)
    sweep_p50 = statistics.median(sweep_wall)
    return {
        "widths": len(SWEEP_WIDTHS),
        "predict_p50_seconds": predict_p50,
        "sweep_p50_seconds": sweep_p50,
        "sweep_ratio": sweep_p50 / predict_p50,
    }


def _calib_rows(reps):
    accuracy = _prediction_error()
    timing = _sweep_amortisation(reps)
    rows = [
        ("fit residual", f"{accuracy['fit_mean_abs_residual']:.3f}cy",
         f"{accuracy['probes']} probes", "-"),
        ("prediction rel error",
         f"{accuracy['prediction_rel_error_mean'] * 100:.2f}%",
         f"max {accuracy['prediction_rel_error_max'] * 100:.2f}%",
         f"{accuracy['validation_points']} pts"),
        ("single predict p50",
         f"{timing['predict_p50_seconds'] * 1e6:,.0f}us", "-", "-"),
        (f"{timing['widths']}-width sweep p50",
         f"{timing['sweep_p50_seconds'] * 1e6:,.0f}us",
         f"{timing['sweep_ratio']:.2f}x",
         f"naive would be {timing['widths']}x"),
    ]
    notes = (f"oracle = simulator over POWER with {len(TRUTH_DELTAS)} "
             f"perturbed primary costs; validation = "
             f"{len(VALIDATION_KERNELS)} kernels x {len(VALIDATION_SIZES)} "
             f"bindings; sweep reps = {reps}, distinct bindings per rep "
             f"(every request misses the result cache)")
    return rows, notes, {**accuracy, **timing}


def _emit(rows, notes, report, quick):
    report["quick"] = quick
    emit_table(
        "E-CALIB",
        "Auto-calibration fidelity and width-sweep amortisation",
        ["measure", "value", "ratio", "detail"],
        rows, notes=notes,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_CALIB.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out


def _check_floors(report):
    failures = []
    if report["prediction_rel_error_mean"] > 0.05:
        failures.append(
            f"mean prediction error "
            f"{report['prediction_rel_error_mean'] * 100:.2f}% > 5%")
    if report["sweep_ratio"] > 3.0:
        failures.append(
            f"{report['widths']}-width sweep is "
            f"{report['sweep_ratio']:.2f}x a single predict (> 3x)")
    return failures


def test_calibration_faithful_and_sweep_amortised(benchmark):
    rows, notes, report = benchmark.pedantic(
        lambda: _calib_rows(reps=60), rounds=1, iterations=1,
    )
    _emit(rows, notes, report, quick=False)
    assert not _check_floors(report), report


def main(argv=None):
    """Standalone entry for the CI calib-smoke gate."""
    import argparse

    parser = argparse.ArgumentParser(description="E-CALIB gate")
    parser.add_argument("--quick", action="store_true",
                        help="fewer timing reps; the floors stay the same")
    args = parser.parse_args(argv)
    rows, notes, report = _calib_rows(reps=20 if args.quick else 60)
    out = _emit(rows, notes, report, quick=args.quick)
    failures = _check_floors(report)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(f"calib ok: {report['prediction_rel_error_mean'] * 100:.2f}% "
          f"mean prediction error, {report['widths']}-width sweep at "
          f"{report['sweep_ratio']:.2f}x a single predict ({out})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
