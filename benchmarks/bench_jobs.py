"""E-JOBS -- foreground latency isolation under heavy async jobs.

The async-job subsystem's economic claim: a shard can chew on deep
restructure searches *in the background* without wrecking the latency
of its foreground traffic, because

* submission returns in milliseconds (the connection is not held for
  the life of the search, unlike the synchronous ``/restructure``), and
* the searches run on the engine's worker processes, so tiny
  ``/predict`` requests keep their fast path.

Topology is real: one ``python -m repro serve --job-store ...`` process
spawned here, driven through :class:`ReproClient` over the production
wire path.  The measured gate (checked by the ``jobs-smoke`` CI job):
tiny-predict p95 with four heavy jobs in flight stays within 2x of the
same server idle.  Writes ``E-JOBS.txt`` and ``BENCH_JOBS.json``.
"""

import json
import statistics
import sys
import tempfile
import time

from repro.service import ReproClient
from repro.service.cluster import spawn_backend

from _report import RESULTS_DIR, emit_table

HEAVY_JOBS = 4
P95_FLOOR = 2.0          # loaded p95 must stay within this factor of idle

TINY = """
program tiny{index}
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i) + {index}.0
  end do
end
"""

HEAVY = """
program heavy{index}
  integer n, i, j
  real a(n,n), b(n,n), c(n,n)
  do i = 1, n
    do j = 1, n
      a(j,i) = b(j,i) + c(j,i) * {index}.0
      c(j,i) = a(j,i) * b(j,i)
    end do
  end do
end
"""


def _p95(samples):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(len(ordered) * 0.95))]


def _sample_predicts(client, count, offset):
    """Per-request wall seconds for ``count`` distinct tiny predicts."""
    samples = []
    for index in range(count):
        source = TINY.format(index=offset + index)
        started = time.perf_counter()
        response = client.predict(source)
        samples.append(time.perf_counter() - started)
        if not hasattr(response, "cost"):
            raise RuntimeError(f"predict failed: {response}")
    return samples


def _measure(samples_per_phase):
    store = tempfile.mkdtemp(prefix="bench-jobs-")
    # Default job slots (``workers - 1``): the subsystem's own slot cap
    # is what keeps four in-flight jobs from starving the foreground.
    with spawn_backend(
        workers=2, cache_size=8,
        extra_args=("--job-store", store),
    ) as backend:
        with ReproClient(backend.url, timeout=120) as client:
            _sample_predicts(client, 10, offset=900_000)   # warm the pipeline
            idle = _sample_predicts(client, samples_per_phase, offset=0)

            # The connection-hold comparison: a synchronous restructure
            # holds its socket for the whole search; a submit answers as
            # soon as the job is durably queued.
            sync_started = time.perf_counter()
            client.restructure(HEAVY.format(index=77), depth=2,
                               max_nodes=60)
            sync_hold_s = time.perf_counter() - sync_started

            job_ids = []
            submit_s = []
            for index in range(HEAVY_JOBS):
                started = time.perf_counter()
                submitted = client.submit_restructure(
                    HEAVY.format(index=index), depth=6, max_nodes=10000,
                    beam_width=2)
                submit_s.append(time.perf_counter() - started)
                job_ids.append(submitted.job_id)

            loaded = _sample_predicts(client, samples_per_phase,
                                      offset=100_000)
            still_running = sum(
                1 for job_id in job_ids
                if client.job_status(job_id).status in ("queued", "running"))
            for job_id in job_ids:
                client.cancel_job(job_id)
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                statuses = [client.job_status(j).status for j in job_ids]
                if all(s in ("done", "error", "cancelled") for s in statuses):
                    break
                time.sleep(0.1)

    idle_p95 = _p95(idle)
    loaded_p95 = _p95(loaded)
    return {
        "samples_per_phase": samples_per_phase,
        "heavy_jobs": HEAVY_JOBS,
        "idle_p95_ms": idle_p95 * 1e3,
        "idle_median_ms": statistics.median(idle) * 1e3,
        "loaded_p95_ms": loaded_p95 * 1e3,
        "loaded_median_ms": statistics.median(loaded) * 1e3,
        "p95_ratio": loaded_p95 / idle_p95,
        "submit_max_ms": max(submit_s) * 1e3,
        "sync_restructure_hold_ms": sync_hold_s * 1e3,
        "jobs_running_during_sampling": still_running,
    }


def _emit(report, quick):
    report["quick"] = quick
    rows = [
        ("idle", f"{report['idle_median_ms']:.2f}ms",
         f"{report['idle_p95_ms']:.2f}ms", "1.00x"),
        (f"{HEAVY_JOBS} heavy jobs in flight",
         f"{report['loaded_median_ms']:.2f}ms",
         f"{report['loaded_p95_ms']:.2f}ms",
         f"{report['p95_ratio']:.2f}x"),
    ]
    notes = (f"submit hold <= {report['submit_max_ms']:.1f}ms vs "
             f"{report['sync_restructure_hold_ms']:.0f}ms for a "
             f"synchronous /restructure; "
             f"{report['jobs_running_during_sampling']}/{HEAVY_JOBS} jobs "
             f"still running when sampling ended")
    emit_table(
        "E-JOBS",
        "Tiny-predict latency with heavy async jobs in the background",
        ["foreground traffic", "median", "p95", "p95 vs idle"],
        rows, notes=notes,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_JOBS.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out


def main(argv=None):
    """Standalone entry for the CI jobs-smoke gate: no pytest needed."""
    import argparse

    parser = argparse.ArgumentParser(description="E-JOBS gate")
    parser.add_argument("--quick", action="store_true",
                        help="fewer samples (CI runners share cores)")
    args = parser.parse_args(argv)
    samples = 60 if args.quick else 200
    report = _measure(samples)
    out = _emit(report, quick=args.quick)
    if report["p95_ratio"] > P95_FLOOR:
        print(f"FAIL: loaded tiny-predict p95 {report['p95_ratio']:.2f}x "
              f"idle, above the {P95_FLOOR:.1f}x gate")
        return 1
    if report["submit_max_ms"] > report["sync_restructure_hold_ms"]:
        print("FAIL: job submission held the connection longer than a "
              "synchronous restructure")
        return 1
    print(f"jobs ok: loaded p95 {report['p95_ratio']:.2f}x idle "
          f"({report['loaded_p95_ms']:.2f}ms vs "
          f"{report['idle_p95_ms']:.2f}ms), submit hold "
          f"{report['submit_max_ms']:.1f}ms ({out})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
