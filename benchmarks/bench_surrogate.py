"""E-SURROGATE -- the learned fast tier vs the exact pipeline.

The tiered-fidelity engine answers ``fidelity=fast`` predicts from a
ridge-regression surrogate with split-conformal intervals instead of
running parse -> translate -> place.  This bench answers three
questions:

* is it *honest*: fidelity=exact responses from an engine carrying a
  surrogate are bit-identical (as canonical JSON) to those from an
  engine without one -- the fast tier must be strictly additive;
* is it *calibrated*: after training on exact predictions harvested
  from a family of generated loop programs, the conformal interval's
  empirical coverage on held-out points (unseen bindings *and* two
  entirely unseen programs) must sit within 5 points of the nominal
  level;
* is it *fast*: per-request p50 of a surrogate answer vs p50 of an
  exact cache-miss predict.  Target: >= 20x.

Besides ``E-SURROGATE.txt`` this writes
``benchmarks/results/BENCH_SURROGATE.json``, which the
``surrogate-perf`` CI job gates on.
"""

import json
import statistics
import time

from repro.learn import (
    Surrogate,
    SurrogateConfig,
    extract_static,
    reset_feature_cache,
)
from repro.service import PredictionEngine

from _report import RESULTS_DIR, emit_table

COVERAGE = 0.9

#: Loop-body statement pool; each generated program takes a subset, so
#: programs differ in length, op mix, and dependence structure.
_STMTS = (
    "a(i) = a(i) + s * b(i)",
    "b(i) = b(i) * c(i)",
    "c(i) = a(i) + b(i) + c(i)",
    "a(i) = b(i) * 2.0 + c(i) * 3.0",
    "b(i) = a(i) * a(i) + 1.0",
    "c(i) = c(i) * s + a(i)",
)

TRAIN_PROGRAMS = 24     # programs whose samples reach the reservoir
HELDOUT_PROGRAMS = 2    # never trained on; only the feature memo is warm
#: Training bindings span the whole evaluated range: conformal coverage
#: is an exchangeability guarantee, so held-out points interpolate.
TRAIN_SIZES = tuple(range(3, 220, 9))      # 25 bindings per program
HELDOUT_SIZES = (7, 25, 58, 91, 140, 201)  # disjoint from TRAIN_SIZES


def make_program(k):
    """Program ``k``: a distinct non-empty subset of the statement pool."""
    mask = (k % (2 ** len(_STMTS) - 1)) + 1
    body = [f"    {stmt}"
            for bit, stmt in enumerate(_STMTS) if mask & (1 << bit)]
    return (f"subroutine gen{k}(n)\n"
            f"  integer n, i\n"
            f"  real s, a(n), b(n), c(n)\n"
            f"  do i = 1, n\n"
            + "\n".join(body) + "\n"
            f"  end do\n"
            f"end\n")


def _payload(source, n, **extra):
    return {"source": source, "bindings": {"n": n}, **extra}


def _build_engines():
    """(exact-only engine, surrogate engine) -- fresh, inline trainer."""
    reset_feature_cache()
    plain = PredictionEngine(workers=0, cache_size=4096)
    # periodic/drift refits disabled: the bench controls training via
    # train_now so the evaluated model is fixed for the whole run
    surrogate = Surrogate(SurrogateConfig(
        background=False, min_samples=24, retrain_every=10 ** 9,
        drift_threshold=1e9, coverage=COVERAGE))
    tiered = PredictionEngine(workers=0, cache_size=4096,
                              surrogate=surrogate)
    return plain, tiered


def _train(tiered):
    """Harvest exact predictions for the training split, then fit."""
    for k in range(TRAIN_PROGRAMS):
        source = make_program(k)
        for n in TRAIN_SIZES:
            result = tiered.handle("predict", _payload(source, n))
            assert "error" not in result, result
    versions = tiered.surrogate.train_now()
    assert versions, "surrogate failed to fit a model"


def _bit_identity(plain, tiered, programs=4):
    """Exact responses must not change shape or value with a surrogate."""
    for k in range(programs):
        source = make_program(k * 7 + 1)
        for payload in (_payload(source, 33),
                        {"source": source},               # symbolic
                        _payload(source, 33)):            # cache hit
            a = plain.handle("predict", dict(payload))
            b = tiered.handle("predict", dict(payload))
            if json.dumps(a, sort_keys=True) != json.dumps(b, sort_keys=True):
                return False
    return True


def _coverage(plain, tiered):
    """Empirical conformal coverage on the held-out pool."""
    pool = [(make_program(k), n)
            for k in range(TRAIN_PROGRAMS) for n in HELDOUT_SIZES]
    for k in range(TRAIN_PROGRAMS, TRAIN_PROGRAMS + HELDOUT_PROGRAMS):
        source = make_program(k)
        extract_static(source, "power")    # warm the memo, not the model
        pool.extend((source, n) for n in HELDOUT_SIZES)
    hits = served = 0
    for source, n in pool:
        fast = tiered.handle("predict", _payload(source, n,
                                                 fidelity="fast"))
        if fast.get("fidelity") != "fast":
            continue                       # fell through: not a coverage point
        served += 1
        exact = plain.handle("predict", _payload(source, n))
        lo, hi = fast["interval"]
        hits += lo <= float(exact["cycles"]) <= hi
    return (hits / served if served else 0.0), served, len(pool)


def _latency(plain, tiered, fast_reps, exact_reps):
    """Per-request p50 seconds for fast serves and exact cache misses."""
    source = make_program(3)
    for n in range(5, 55):                 # steady state: warm one lap
        tiered.handle("predict", _payload(source, n, fidelity="fast"))
    fast_wall = []
    for rep in range(fast_reps):
        payload = _payload(source, 5 + (rep % 50), fidelity="fast")
        t0 = time.perf_counter()
        result = tiered.handle("predict", payload)
        fast_wall.append(time.perf_counter() - t0)
        assert result.get("fidelity") == "fast", result
    exact_wall = []
    for rep in range(exact_reps):
        # distinct bindings per rep: every request is a true cache miss
        payload = _payload(source, 10_000 + rep)
        t0 = time.perf_counter()
        result = plain.handle("predict", payload)
        exact_wall.append(time.perf_counter() - t0)
        assert "error" not in result
    return statistics.median(fast_wall), statistics.median(exact_wall)


def _surrogate_rows(fast_reps, exact_reps):
    plain, tiered = _build_engines()
    try:
        _train(tiered)
        identical = _bit_identity(plain, tiered)
        empirical, served, pool = _coverage(plain, tiered)
        fast_p50, exact_p50 = _latency(plain, tiered, fast_reps, exact_reps)
    finally:
        plain.close()
        tiered.close()
    speedup = exact_p50 / fast_p50
    model = tiered.surrogate.stats()["models"].get("power", {})
    rows = [
        ("exact cache-miss p50", f"{exact_p50 * 1e6:,.0f}us", "-", "-"),
        ("surrogate fast p50", f"{fast_p50 * 1e6:,.0f}us",
         f"{speedup:.1f}x", "-"),
        ("conformal coverage", f"{empirical:.3f}",
         f"nominal {COVERAGE:.2f}", f"{served}/{pool} pts"),
        ("exact bit-identity", "yes" if identical else "NO", "-", "-"),
    ]
    notes = (f"{TRAIN_PROGRAMS} train programs x {len(TRAIN_SIZES)} "
             f"bindings harvested through the engine; held-out pool = "
             f"unseen bindings + {HELDOUT_PROGRAMS} unseen programs; "
             f"model v{model.get('version')} "
             f"(n_train={model.get('n_train')}, n_cal={model.get('n_cal')})")
    report = {
        "nominal_coverage": COVERAGE,
        "empirical_coverage": empirical,
        "heldout_served": served,
        "heldout_pool": pool,
        "fast_p50_seconds": fast_p50,
        "exact_p50_seconds": exact_p50,
        "speedup": speedup,
        "bit_identical": identical,
        "model": model,
    }
    return rows, notes, report


def _emit(rows, notes, report, quick):
    report["quick"] = quick
    emit_table(
        "E-SURROGATE",
        "Tiered fidelity: learned surrogate vs exact pipeline",
        ["measure", "value", "vs exact", "detail"],
        rows, notes=notes,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_SURROGATE.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out


def _check_floors(report):
    failures = []
    if report["speedup"] < 20.0:
        failures.append(f"speedup {report['speedup']:.1f}x < 20x")
    if report["empirical_coverage"] < report["nominal_coverage"] - 0.05:
        failures.append(
            f"coverage {report['empirical_coverage']:.3f} more than 5 "
            f"points below nominal {report['nominal_coverage']:.2f}")
    if not report["bit_identical"]:
        failures.append("exact responses changed with a surrogate attached")
    if report["heldout_served"] < report["heldout_pool"] * 0.9:
        failures.append(
            f"only {report['heldout_served']}/{report['heldout_pool']} "
            f"held-out points served fast")
    return failures


def test_surrogate_fast_and_calibrated(benchmark):
    rows, notes, report = benchmark.pedantic(
        lambda: _surrogate_rows(fast_reps=400, exact_reps=60),
        rounds=1, iterations=1,
    )
    _emit(rows, notes, report, quick=False)
    assert not _check_floors(report), report


def main(argv=None):
    """Standalone entry for the CI surrogate-perf gate."""
    import argparse

    parser = argparse.ArgumentParser(description="E-SURROGATE gate")
    parser.add_argument("--quick", action="store_true",
                        help="fewer latency reps; the floors stay the same")
    args = parser.parse_args(argv)
    if args.quick:
        rows, notes, report = _surrogate_rows(fast_reps=120, exact_reps=20)
    else:
        rows, notes, report = _surrogate_rows(fast_reps=400, exact_reps=60)
    out = _emit(rows, notes, report, quick=args.quick)
    failures = _check_floors(report)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print(f"surrogate ok: {report['speedup']:.0f}x fast-path speedup, "
          f"coverage {report['empirical_coverage']:.3f} at nominal "
          f"{report['nominal_coverage']:.2f}, exact bit-identity held "
          f"({out})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
