"""Shared reporting helper for the benchmark harness.

Every experiment regenerates its paper artifact as a plain-text table,
printed to stdout *and* written under ``benchmarks/results/`` so that
``pytest benchmarks/ --benchmark-only`` leaves the reproduced tables on
disk for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
from typing import Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_table(
    experiment: str,
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str = "",
) -> str:
    """Format, print, and persist one experiment table."""
    widths = [len(str(h)) for h in header]
    rendered_rows = []
    for row in rows:
        cells = [_fmt(c) for c in row]
        rendered_rows.append(cells)
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = [f"== {experiment}: {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    if notes:
        lines.append(notes)
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text)
    return text


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}"
    return str(cell)
