"""E-KERNEL -- the fused columnar placement kernel vs the legacy drop.

Placement is the innermost loop of every prediction (section 2.1); the
fused kernel (``repro.cost.columnar``) precompiles the machine's op
costs and the stream's columns, then walks all required pipes in
lockstep.  This bench answers two questions:

* is it *correct*: a differential oracle places randomized streams on
  every preset machine through both kernels and compares cycles,
  per-op times/completions, block summaries, and the full bin grids;
* is it *fast*: a throughput sweep over stream sizes, asserting the
  target speedup (>= 3x on 200+-instruction streams) in full mode and
  fused >= legacy in ``--quick`` (CI) mode.

Besides the usual ``E-KERNEL.txt`` table this writes
``benchmarks/results/BENCH_KERNEL.json`` (machine-readable: speedups
and ops/s per size), which the ``kernel-perf`` CI job gates on.
"""

import json
import pathlib
import random
import time

from repro.cost import BinSet, reset_columnar_cache, reset_placement_cache
from repro.cost.placement import _place_uncached
from repro.machine.alpha import alpha_machine
from repro.machine.power import power_machine
from repro.machine.scalar import scalar_machine
from repro.machine.wide import wide_machine
from repro.translate.stream import Instr

from _report import RESULTS_DIR, emit_table

FOCUS_SPAN = 64
MACHINES = (power_machine, wide_machine, scalar_machine, alpha_machine)


def _placeable_ops(machine):
    return [
        name for name in machine.table.names()
        if all(machine.has_unit(c.unit)
               for c in machine.table[name].costs if c.noncoverable > 0)
    ]


def _rand_stream(rng, names, n):
    return [
        Instr(i, rng.choice(names),
              deps=tuple(sorted(rng.sample(range(i),
                                           k=min(i, rng.randint(0, 3))))),
              one_time=rng.random() < 0.1)
        for i in range(n)
    ]


def _differential(trials, seed=20240806):
    """Place random streams through both kernels; any mismatch raises."""
    rng = random.Random(seed)
    machines = [factory() for factory in MACHINES]
    per_machine = trials // len(machines)
    checked = 0
    for machine in machines:
        names = _placeable_ops(machine)
        for _ in range(per_machine):
            instrs = _rand_stream(rng, names, rng.randint(1, 64))
            focus = rng.choice([2, 8, 64])
            legacy_bins = BinSet(machine)
            fused_bins = BinSet(machine)
            legacy = _place_uncached(
                machine, instrs, focus, legacy_bins, "legacy")
            fused = _place_uncached(
                machine, instrs, focus, fused_bins, "fused")
            assert fused.cycles == legacy.cycles, (machine.name, len(instrs))
            assert [(o.time, o.completion) for o in fused.ops] == \
                   [(o.time, o.completion) for o in legacy.ops], machine.name
            assert fused.block == legacy.block, machine.name
            for bin_id, arr in fused_bins.arrays.items():
                assert arr.as_bools() == \
                    legacy_bins.arrays[bin_id].as_bools(), (machine.name, bin_id)
            assert fused_bins._top == legacy_bins._top
            checked += 1
    return checked


def _throughput(size, reps, seed=7, rounds=3):
    """(legacy s, fused s) for ``reps`` placements of one ``size`` stream.

    ``place_stream`` hashes the stream once for its memo key before
    either kernel runs, so the digest is precomputed here too -- the
    timed region is placement work only, for both kernels.  Each
    kernel's wall time is the best of ``rounds`` to shed scheduler
    noise.
    """
    from repro.translate.stream import placement_digest

    machine = power_machine()
    rng = random.Random(seed)
    instrs = _rand_stream(rng, _placeable_ops(machine), size)
    digest = placement_digest(instrs)
    reset_placement_cache()
    reset_columnar_cache()
    for kernel in ("legacy", "fused"):  # warm compilation + memos
        _place_uncached(machine, instrs, FOCUS_SPAN, None, kernel,
                        None, digest)
    wall = {"legacy": None, "fused": None}
    # Rounds interleave the kernels so CPU frequency drift and noisy
    # neighbours hit both equally; the min is the honest figure.
    for _ in range(rounds):
        for kernel in ("legacy", "fused"):
            t0 = time.perf_counter()
            for _ in range(reps):
                _place_uncached(machine, instrs, FOCUS_SPAN, None, kernel,
                                None, digest)
            elapsed = time.perf_counter() - t0
            if wall[kernel] is None or elapsed < wall[kernel]:
                wall[kernel] = elapsed
    return wall["legacy"], wall["fused"]


def _kernel_rows(trials, sizes, reps):
    checked = _differential(trials)
    rows = []
    report = {"differential_trials": checked, "sizes": []}
    for size in sizes:
        legacy_s, fused_s = _throughput(size, reps)
        ops = size * reps
        speedup = legacy_s / fused_s
        rows.append((
            size, f"{legacy_s:.3f}s", f"{fused_s:.3f}s",
            f"{ops / legacy_s:,.0f}", f"{ops / fused_s:,.0f}",
            f"{speedup:.2f}x",
        ))
        report["sizes"].append({
            "stream_size": size,
            "legacy_seconds": legacy_s,
            "fused_seconds": fused_s,
            "legacy_ops_per_s": ops / legacy_s,
            "fused_ops_per_s": ops / fused_s,
            "speedup": speedup,
        })
    report["speedup_large"] = report["sizes"][-1]["speedup"]
    notes = (f"differential oracle: {checked} randomized streams across "
             f"{len(MACHINES)} machines, bin grids included; "
             f"focus span {FOCUS_SPAN}")
    return rows, notes, report


def _emit(rows, notes, report, quick):
    report["quick"] = quick
    emit_table(
        "E-KERNEL",
        "Fused columnar placement kernel vs legacy BinSet.place",
        ["stream", "legacy", "fused", "legacy ops/s", "fused ops/s",
         "speedup"],
        rows, notes=notes,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_KERNEL.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out


def test_fused_kernel_matches_and_beats_legacy(benchmark):
    rows, notes, report = benchmark.pedantic(
        lambda: _kernel_rows(trials=1200, sizes=(64, 256), reps=120),
        rounds=1, iterations=1,
    )
    _emit(rows, notes, report, quick=False)
    assert report["differential_trials"] >= 1000
    # The tentpole target: >= 3x on 200+-instruction streams.
    assert report["speedup_large"] >= 3.0, report


def main(argv=None):
    """Standalone entry for the CI kernel-perf gate: no pytest needed."""
    import argparse

    parser = argparse.ArgumentParser(description="E-KERNEL gate")
    parser.add_argument("--quick", action="store_true",
                        help="smaller differential + one sweep size "
                             "(CI gate: asserts fused is not slower)")
    args = parser.parse_args(argv)
    if args.quick:
        rows, notes, report = _kernel_rows(
            trials=200, sizes=(256,), reps=40)
    else:
        rows, notes, report = _kernel_rows(
            trials=1200, sizes=(64, 256), reps=120)
    out = _emit(rows, notes, report, quick=args.quick)
    floor = 1.0 if args.quick else 3.0
    if report["speedup_large"] < floor:
        print(f"FAIL: fused speedup {report['speedup_large']:.2f}x "
              f"below the {floor:.1f}x floor")
        return 1
    print(f"kernel ok: {report['differential_trials']} differential trials, "
          f"{report['speedup_large']:.2f}x on "
          f"{report['sizes'][-1]['stream_size']}-instruction streams "
          f"({out})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
