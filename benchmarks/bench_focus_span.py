"""E-FOCUS -- the focus-span accuracy/efficiency trade-off (section 2.1).

"Only a certain number of slots (called focus span) under the highest
occupied time slot need to be considered. ... the focus span is an
adjustable parameter, thus allowing more flexible allocation of
computing resources based on accuracy and efficiency considerations."

Sweeps the span on streams engineered to leave deep backfill holes
(long FXU chains with trailing FPU work) plus the kernel suite, and
reports predicted cycles and estimation time per span.
"""

import time

from repro.bench import kernel, kernel_names, kernel_stream, random_stream
from repro.cost import StraightLineEstimator
from repro.machine import power_machine
from repro.translate.stream import Instr

from _report import emit_table

_SPANS = (2, 4, 8, 16, 64, 1 << 20)


def _holey_stream():
    """A long dependent FXU chain followed by independent FPU work."""
    instrs = [
        Instr(i, "fxu_mul5", deps=(i - 1,) if i else ()) for i in range(12)
    ]
    instrs += [Instr(12 + j, "fpu_arith") for j in range(8)]
    return instrs


def test_focus_span_sweep(benchmark):
    def sweep():
        machine = power_machine()
        rows = []
        instrs = _holey_stream()
        exact = None
        for span in _SPANS:
            estimator = StraightLineEstimator(machine, focus_span=span)
            t0 = time.perf_counter()
            for _ in range(200):
                from repro.cost import place_stream

                cycles = place_stream(machine, instrs, focus_span=span).cycles
            elapsed = (time.perf_counter() - t0) / 200
            if span == _SPANS[-1]:
                exact = cycles
            rows.append((span if span < 1 << 20 else "inf", cycles,
                         f"{elapsed * 1e6:.0f}us"))
        return rows, exact

    rows, exact = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit_table(
        "E-FOCUS",
        "Focus-span sweep on a deep-hole stream (12-op FXU chain + 8 FMAs)",
        ["focus span", "predicted cycles", "time/estimate"],
        rows,
        notes="small spans cannot backfill the FPU work under the chain",
    )
    cycles_by_span = [r[1] for r in rows]
    # Monotone non-increasing accuracy cost as the span grows...
    for a, b in zip(cycles_by_span, cycles_by_span[1:]):
        assert a >= b
    # ...with a strict gap between the tightest span and exhaustive.
    assert cycles_by_span[0] > exact


def test_focus_span_kernel_accuracy(benchmark):
    """On the real kernels a moderate span already saturates accuracy."""

    def run():
        machine = power_machine()
        drift = []
        for name in kernel_names():
            info = kernel_stream(kernel(name), machine)
            tight = StraightLineEstimator(machine, 8).estimate(info.stream).cycles
            exact = StraightLineEstimator(machine, 1 << 20).estimate(
                info.stream
            ).cycles
            drift.append(abs(tight - exact) / exact)
        return drift

    drift = benchmark.pedantic(run, rounds=1, iterations=1)
    assert max(drift) <= 0.25
    assert sum(drift) / len(drift) <= 0.05


def test_focus_span_speed_small(benchmark):
    machine = power_machine()
    stream = random_stream(machine, 200, seed=3)
    estimator = StraightLineEstimator(machine, focus_span=4)
    benchmark(lambda: estimator.estimate(stream).cycles)


def test_focus_span_speed_exhaustive(benchmark):
    machine = power_machine()
    stream = random_stream(machine, 200, seed=3)
    estimator = StraightLineEstimator(machine, focus_span=1 << 20)
    benchmark(lambda: estimator.estimate(stream).cycles)
