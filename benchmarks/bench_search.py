"""E-SEARCH -- performance-guided A* restructuring (section 3.2).

"Based on the symbolic performance comparison, the compiler can utilize
graph search algorithms, such as the A* algorithm, to choose program
transformation sequence systematically."

Runs the best-first search over {unroll, interchange, tile,
distribute, reorder} on two nests and compares against exhaustive
enumeration: the search must reach the same best cost while expanding
fewer nodes.
"""

import repro
from repro.aggregate import CostAggregator
from repro.ir import SymbolTable
from repro.machine import power_machine
from repro.transform import (
    IncrementalPredictor,
    Interchange,
    StripMine,
    Unroll,
    astar_search,
    exhaustive_search,
)

from _report import emit_table

LATENCY_LOOP = """
program daxpyish
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""

NEST = """
program sweep
  integer n, i, j
  real a(n,n), b(n,n)
  do i = 1, n
    do j = 1, n
      a(j,i) = b(j,i) + 1.0
    end do
  end do
end
"""


def _predictor(prog):
    return IncrementalPredictor(
        CostAggregator(power_machine(), SymbolTable.from_program(prog))
    )


def _transforms():
    return [Unroll(factors=(2, 4)), Interchange(), StripMine(tiles=(16,))]


def test_search_vs_exhaustive_table(benchmark):
    def run():
        rows = []
        for label, source, workload in (
            ("daxpy-like", LATENCY_LOOP, {"n": 1000}),
            ("2-D sweep", NEST, {"n": 100}),
        ):
            prog = repro.parse_program(source)
            base = _predictor(prog).predict(prog).evaluate(workload)
            astar = astar_search(
                repro.parse_program(source), _transforms(), _predictor(prog),
                workload=workload, max_depth=2, max_nodes=400,
            )
            oracle = exhaustive_search(
                repro.parse_program(source), _transforms(), _predictor(prog),
                workload=workload, max_depth=2,
            )
            rows.append((
                label,
                float(base),
                float(astar.cost.evaluate(workload)),
                float(oracle.cost.evaluate(workload)),
                astar.nodes_expanded,
                oracle.nodes_expanded,
                astar.sequence,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-SEARCH",
        "A* restructuring vs exhaustive enumeration (depth 2)",
        ["program", "original", "A* best", "oracle best",
         "A* nodes", "oracle nodes", "A* sequence"],
        rows,
    )
    for _, base, astar_best, oracle_best, astar_nodes, oracle_nodes, _ in rows:
        assert astar_best == oracle_best       # same optimum found
        assert astar_best < base               # and it is a real win
        assert astar_nodes <= oracle_nodes     # with no more work


def test_search_finds_unroll_for_latency_bound(benchmark):
    def run():
        prog = repro.parse_program(LATENCY_LOOP)
        return astar_search(
            prog, [Unroll(factors=(2, 4))], _predictor(prog),
            workload={"n": 1000}, max_depth=1, max_nodes=50,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert any(s.transformation == "unroll" for s in result.steps)


TWO_REGIONS = """
program two
  integer n, i, j, k
  real x(n), y(n), alpha, a(n,n), b(n,n)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
  do j = 1, n
    do k = 1, n
      a(k,j) = b(k,j) + 1.0
    end do
  end do
end
"""


def test_incremental_makes_search_cheaper(benchmark):
    """Probes touching one region reuse the other region's cached cost."""

    def run():
        prog = repro.parse_program(TWO_REGIONS)
        predictor = _predictor(prog)
        astar_search(
            prog, _transforms(), predictor,
            workload={"n": 64}, max_depth=2, max_nodes=200,
        )
        return predictor.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.hits > 0
    assert stats.hit_rate > 0.1
