"""E-SEARCH -- performance-guided A* restructuring (section 3.2).

"Based on the symbolic performance comparison, the compiler can utilize
graph search algorithms, such as the A* algorithm, to choose program
transformation sequence systematically."

Runs the best-first search over {unroll, interchange, tile,
distribute, reorder} on two nests and compares against exhaustive
enumeration: the search must reach the same best cost while expanding
fewer nodes.
"""

import repro
from repro.aggregate import CostAggregator
from repro.ir import SymbolTable
from repro.machine import power_machine
from repro.transform import (
    IncrementalPredictor,
    Interchange,
    StripMine,
    Unroll,
    astar_search,
    exhaustive_search,
)

from _report import emit_table

LATENCY_LOOP = """
program daxpyish
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""

NEST = """
program sweep
  integer n, i, j
  real a(n,n), b(n,n)
  do i = 1, n
    do j = 1, n
      a(j,i) = b(j,i) + 1.0
    end do
  end do
end
"""


def _predictor(prog):
    return IncrementalPredictor(
        CostAggregator(power_machine(), SymbolTable.from_program(prog))
    )


def _transforms():
    return [Unroll(factors=(2, 4)), Interchange(), StripMine(tiles=(16,))]


def test_search_vs_exhaustive_table(benchmark):
    def run():
        rows = []
        for label, source, workload in (
            ("daxpy-like", LATENCY_LOOP, {"n": 1000}),
            ("2-D sweep", NEST, {"n": 100}),
        ):
            prog = repro.parse_program(source)
            base = _predictor(prog).predict(prog).evaluate(workload)
            astar = astar_search(
                repro.parse_program(source), _transforms(), _predictor(prog),
                workload=workload, max_depth=2, max_nodes=400,
            )
            oracle = exhaustive_search(
                repro.parse_program(source), _transforms(), _predictor(prog),
                workload=workload, max_depth=2,
            )
            rows.append((
                label,
                float(base),
                float(astar.cost.evaluate(workload)),
                float(oracle.cost.evaluate(workload)),
                astar.nodes_expanded,
                oracle.nodes_expanded,
                astar.sequence,
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-SEARCH",
        "A* restructuring vs exhaustive enumeration (depth 2)",
        ["program", "original", "A* best", "oracle best",
         "A* nodes", "oracle nodes", "A* sequence"],
        rows,
    )
    for _, base, astar_best, oracle_best, astar_nodes, oracle_nodes, _ in rows:
        assert astar_best == oracle_best       # same optimum found
        assert astar_best < base               # and it is a real win
        assert astar_nodes <= oracle_nodes     # with no more work


def test_search_finds_unroll_for_latency_bound(benchmark):
    def run():
        prog = repro.parse_program(LATENCY_LOOP)
        return astar_search(
            prog, [Unroll(factors=(2, 4))], _predictor(prog),
            workload={"n": 1000}, max_depth=1, max_nodes=50,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert any(s.transformation == "unroll" for s in result.steps)


TWO_REGIONS = """
program two
  integer n, i, j, k
  real x(n), y(n), alpha, a(n,n), b(n,n)
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
  do j = 1, n
    do k = 1, n
      a(k,j) = b(k,j) + 1.0
    end do
  end do
end
"""


def test_incremental_makes_search_cheaper(benchmark):
    """Probes touching one region reuse the other region's cached cost."""

    def run():
        prog = repro.parse_program(TWO_REGIONS)
        predictor = _predictor(prog)
        astar_search(
            prog, _transforms(), predictor,
            workload={"n": 64}, max_depth=2, max_nodes=200,
        )
        return predictor.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    assert stats.hits > 0
    assert stats.hit_rate > 0.1


# ----------------------------------------------------------------------
# E-PSEARCH -- digest-keyed parallel search


THREE_NEST = """
program mm
  integer n, i, j, k
  real a(n,n), b(n,n), c(n,n)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
"""


def _psearch_rows(depth, max_nodes, beam_width, workers):
    """Serial vs parallel A* on the 3-deep nest; rows for E-PSEARCH."""
    import os
    import time

    from repro.transform import (
        Distribute, Fuse, ReorderStatements, UnrollAndJam, astar_search,
    )

    def transforms():
        return [Unroll(factors=(2, 4)), UnrollAndJam(factors=(2, 4)),
                Interchange(), StripMine(tiles=(16,)),
                Fuse(), Distribute(), ReorderStatements()]

    def run(search_workers):
        prog = repro.parse_program(THREE_NEST)
        t0 = time.perf_counter()
        result = astar_search(
            prog, transforms(), _predictor(prog),
            workload={"n": 32}, max_depth=depth, max_nodes=max_nodes,
            beam_width=beam_width, search_workers=search_workers,
        )
        return result, time.perf_counter() - t0

    serial, serial_s = run(0)
    parallel, parallel_s = run(workers)
    rows = [
        ("serial", serial.nodes_expanded, serial.nodes_generated,
         serial.rounds, f"{serial_s:.2f}s",
         f"{serial.nodes_generated / serial_s:.0f}", serial.sequence),
        (f"{workers} workers", parallel.nodes_expanded,
         parallel.nodes_generated, parallel.rounds, f"{parallel_s:.2f}s",
         f"{parallel.nodes_generated / parallel_s:.0f}", parallel.sequence),
    ]
    speedup = serial_s / parallel_s
    notes = (f"beam={beam_width} depth={depth}; speedup {speedup:.2f}x "
             f"on {os.cpu_count()} core(s); results bit-identical: "
             f"{parallel.sequence == serial.sequence}")
    # The load-bearing invariant, asserted on any machine: where the
    # batches were evaluated must not change what the search returns.
    assert parallel.sequence == serial.sequence
    assert str(parallel.cost) == str(serial.cost)
    assert parallel.nodes_expanded == serial.nodes_expanded
    return rows, notes, speedup


def test_parallel_search_matches_serial(benchmark):
    import os

    rows, notes, speedup = benchmark.pedantic(
        lambda: _psearch_rows(depth=3, max_nodes=250, beam_width=8, workers=4),
        rounds=1, iterations=1,
    )
    emit_table(
        "E-PSEARCH",
        "Parallel digest-keyed A* vs serial (3-deep nest)",
        ["mode", "expanded", "generated", "rounds", "wall", "nodes/s",
         "sequence"],
        rows, notes=notes,
    )
    if (os.cpu_count() or 1) >= 4:
        assert speedup >= 3.0


def main(argv=None):
    """Standalone entry for the CI search-perf smoke: no pytest needed."""
    import argparse

    parser = argparse.ArgumentParser(description="E-PSEARCH smoke")
    parser.add_argument("--quick", action="store_true",
                        help="small depth-2 run (CI smoke: asserts "
                             "parallel == serial, records nodes/s)")
    args = parser.parse_args(argv)
    if args.quick:
        rows, notes, _ = _psearch_rows(
            depth=2, max_nodes=80, beam_width=4, workers=2)
    else:
        rows, notes, _ = _psearch_rows(
            depth=3, max_nodes=250, beam_width=8, workers=4)
    emit_table(
        "E-PSEARCH",
        "Parallel digest-keyed A* vs serial (3-deep nest)",
        ["mode", "expanded", "generated", "rounds", "wall", "nodes/s",
         "sequence"],
        rows, notes=notes,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
