"""E-F8/9 -- Figures 8-9: cost-block shapes and inter-block overlap.

Figure 9 shows two adjacent basic blocks whose cost blocks interlock:
the combined cost is less than the sum.  This bench regenerates that
example with an FXU-heavy block followed by an FPU-heavy block,
measures loop iteration self-overlap on the kernel suite, and runs the
ablation of disabling overlap credit in the aggregator.
"""

from repro.aggregate import CostAggregator
from repro.backend import simulate_loop
from repro.bench import kernel, kernel_names, kernel_stream
from repro.cost import combined_cycles, max_overlap, place_stream
from repro.ir import SymbolTable
from repro.machine import power_machine
from repro.translate import AGGRESSIVE_BACKEND
from repro.translate.stream import Instr

from _report import emit_table


def _blocks():
    machine = power_machine()
    fxu_heavy = place_stream(machine, [
        Instr(i, "fxu_add", deps=(i - 1,) if i else ()) for i in range(4)
    ]).block
    fpu_heavy = place_stream(machine, [
        Instr(i, "fpu_arith") for i in range(4)
    ]).block
    return fxu_heavy, fpu_heavy


def test_fig9_adjacent_blocks_interlock(benchmark):
    fxu_heavy, fpu_heavy = benchmark.pedantic(_blocks, rounds=1, iterations=1)
    overlap = max_overlap(fxu_heavy, fpu_heavy)
    combined = combined_cycles(fxu_heavy, fpu_heavy)
    separate = fxu_heavy.cycles + fpu_heavy.cycles
    emit_table(
        "E-F9a",
        "Figure 9: combining an FXU-heavy and an FPU-heavy basic block",
        ["quantity", "cycles"],
        [
            ("block 1 (FXU chain)", fxu_heavy.cycles),
            ("block 2 (FPU stream)", fpu_heavy.cycles),
            ("sum, no overlap", separate),
            ("shape overlap", overlap),
            ("combined (Fig. 9)", combined),
        ],
    )
    assert overlap > 0
    assert combined < separate


def test_fig9_loop_steady_state_table(benchmark):
    """Per-iteration steady cost vs the reference loop simulation."""

    def build():
        machine = power_machine()
        rows = []
        for name in kernel_names():
            k = kernel(name)
            agg = CostAggregator(machine, SymbolTable.from_program(k.program))
            info = kernel_stream(k, machine)
            stream = info.stream
            overhead = agg.translator.loop_overhead()
            base = len(stream)
            for instr in overhead.stream:
                stream.append(instr.atomic,
                              tuple(d + base for d in instr.deps), instr.tag)
            few = agg.estimator.estimate_unrolled(stream, 4).cycles
            many = agg.estimator.estimate_unrolled(stream, 8).cycles
            predicted_steady = max(-(-(many - few) // 4), info.carried_latency, 1)
            iters = 24
            reference = simulate_loop(
                machine, stream, iters, carried_latency=info.carried_latency
            ).cycles
            ref_steady = reference / iters
            rows.append((
                name, predicted_steady, f"{ref_steady:.1f}",
                f"{100 * (predicted_steady - ref_steady) / ref_steady:+.0f}%",
            ))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit_table(
        "E-F9b",
        "Iteration overlap: predicted steady-state cycles/iter vs reference",
        ["kernel", "predicted", "reference", "error"],
        rows,
        notes="reference = back-end scheduling of 24 replicated iterations",
    )
    errors = [abs(float(r[3].rstrip("%"))) for r in rows]
    errors.sort()
    assert errors[len(errors) // 2] <= 35.0  # median tracks the reference


def test_fig9_overlap_ablation(benchmark):
    """Disabling overlap credit inflates every loop prediction."""

    def run():
        machine = power_machine()
        rows = []
        for name in ("f1", "f3", "matmul"):
            k = kernel(name)
            table = SymbolTable.from_program(k.program)
            on = CostAggregator(machine, table).cost_program(k.program)
            off = CostAggregator(
                machine, table,
                flags=AGGRESSIVE_BACKEND.without(overlap_iterations=True),
            ).cost_program(k.program)
            n = 64
            rows.append((
                name,
                float(on.evaluate({"n": n})),
                float(off.evaluate({"n": n})),
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-F9c",
        "Ablation: loop cost at n=64 with and without iteration overlap",
        ["kernel", "overlap on", "overlap off"],
        rows,
    )
    for _, on, off in rows:
        assert off > on
