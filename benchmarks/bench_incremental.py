"""E-INCR -- incremental prediction updates (section 3.3.1).

"When choosing among two transformations, only the changes that the
transformations have on the performance expressions need to be
computed."

Measures repeated what-if probing (the inner loop of the restructurer)
with and without the affected-region cache, and verifies that cache
misses after a local transformation stay confined to the changed
region's ancestors.
"""

import time

import repro
from repro.aggregate import CostAggregator
from repro.ir import SymbolTable
from repro.machine import power_machine
from repro.transform import IncrementalPredictor, Unroll

from _report import emit_table

MANY_REGIONS = """
program regions
  integer n, i1, i2, i3, i4
  real a(n), b(n), c(n), d(n)
  do i1 = 1, n
    a(i1) = a(i1) + 1.0
  end do
  do i2 = 1, n
    b(i2) = b(i2) * 2.0
  end do
  do i3 = 1, n
    c(i3) = c(i3) - 3.0
  end do
  do i4 = 1, n
    d(i4) = d(i4) / 4.0
  end do
end
"""


def _variants(prog, count=24):
    """Probe programs, each unrolling one loop by one factor."""
    unroll = Unroll(factors=(2, 4))
    sites = unroll.sites(prog)
    out = []
    for i in range(count):
        out.append(unroll.apply(prog, sites[i % len(sites)]))
    return out


def test_incremental_probe_speed_table(benchmark):
    def run():
        prog = repro.parse_program(MANY_REGIONS)
        variants = _variants(prog)

        def fresh_aggregator():
            return CostAggregator(
                power_machine(), SymbolTable.from_program(prog)
            )

        # Cold: a fresh aggregation of every variant.
        t0 = time.perf_counter()
        for variant in variants:
            fresh_aggregator().cost_program(variant)
        cold = time.perf_counter() - t0

        # Incremental: one predictor shared across probes.
        predictor = IncrementalPredictor(fresh_aggregator())
        predictor.predict(prog)
        t0 = time.perf_counter()
        for variant in variants:
            predictor.predict(variant)
        warm = time.perf_counter() - t0
        return cold, warm, predictor.stats

    cold, warm, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-INCR",
        "24 what-if probes on a 4-region program: cold vs incremental",
        ["mode", "time", "cache hits", "cache misses", "hit rate"],
        [
            ("cold re-aggregation", f"{cold * 1e3:.1f}ms", "-", "-", "-"),
            ("incremental", f"{warm * 1e3:.1f}ms", stats.hits,
             stats.misses, f"{stats.hit_rate:.0%}"),
        ],
    )
    assert warm < cold
    assert stats.hit_rate > 0.4


def test_incremental_affected_region_confinement(benchmark):
    """A transformation of region 3 must not re-cost regions 1, 2, 4."""

    def run():
        prog = repro.parse_program(MANY_REGIONS)
        predictor = IncrementalPredictor(
            CostAggregator(power_machine(), SymbolTable.from_program(prog))
        )
        predictor.predict(prog)
        before = predictor.stats.misses
        unroll = Unroll(factors=(2,))
        site = [s for s in unroll.sites(prog) if s.path == (2,)][0]
        predictor.predict(unroll.apply(prog, site))
        new_misses = predictor.stats.misses - before
        return new_misses

    new_misses = benchmark.pedantic(run, rounds=1, iterations=1)
    # Misses: the new top-level region list + the one changed loop.
    assert new_misses <= 2


def test_incremental_predict_throughput(benchmark):
    prog = repro.parse_program(MANY_REGIONS)
    predictor = IncrementalPredictor(
        CostAggregator(power_machine(), SymbolTable.from_program(prog))
    )
    predictor.predict(prog)  # warm
    benchmark(lambda: predictor.predict(prog))
