"""E-SENS -- sensitivity analysis and run-time test placement (section 3.4).

"Sensitivity analysis can be applied to find the top few variables that
produce the most perturbations to the performance. ... Run-time tests
can be formulated based on the most sensitive variables."

Builds multi-unknown cost expressions from real programs, ranks their
variables by perturbation and by elasticity (the two must agree on the
ranking), and shows the generated run-time guard for a genuinely
regime-dependent comparison.
"""

import repro
from repro.compare import (
    build_guard,
    compare,
    rank_variables,
    worth_testing,
)
from repro.ir import print_expr
from repro.symbolic import Interval, PerfExpr, UnknownKind

from _report import emit_table

PROGRAM = """
program wave
  integer n, m, i, j, t, steps
  real u(n,m), v(n,m)
  do t = 1, steps
    do j = 2, m - 1
      do i = 2, n - 1
        v(i,j) = u(i,j) + 0.5 * (u(i-1,j) + u(i+1,j))
      end do
    end do
  end do
end
"""


def test_sensitivity_ranking_table(benchmark):
    def run():
        prog = repro.parse_program(PROGRAM)
        cost = repro.predict(prog)
        point = {"n": 100, "m": 50, "steps": 20}
        perturbation = rank_variables(cost, point, method="perturbation")
        analytic = rank_variables(cost, point, method="elasticity")
        return cost, point, perturbation, analytic

    cost, point, perturbation, analytic = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = [
        (p.name, f"{float(p.score):.3f}", f"{float(a.score):.3f}")
        for p, a in zip(perturbation, analytic)
    ]
    emit_table(
        "E-SENS",
        "Variable sensitivity of the wave-kernel cost at (n=100,m=50,steps=20)",
        ["variable", "perturbation score", "elasticity"],
        rows,
        notes=f"cost = {cost}",
    )
    # The two estimators agree on the ranking.
    assert [p.name for p in perturbation] == [a.name for a in analytic]
    # All three structural unknowns matter; the top one has elasticity
    # near the product nesting depth behaviour (close to 1 each here).
    assert len(perturbation) == 3
    assert perturbation[0].score > 0


def test_sensitivity_identifies_dominant_unknown(benchmark):
    """A quadratic unknown dominates linear ones at scale."""

    def run():
        n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 10 ** 6))
        m = PerfExpr.unknown("m", UnknownKind.TRIP_COUNT, Interval(1, 10 ** 6))
        p = PerfExpr.unknown("pt", UnknownKind.BRANCH_PROB)
        cost = n * n + 20 * m + 100 * p
        return rank_variables(cost, {"n": 500, "m": 500, "pt": 1}, top=1)

    top = benchmark.pedantic(run, rounds=1, iterations=1)
    assert top[0].name == "n"


def test_sensitivity_to_runtime_test_pipeline(benchmark):
    """Most-sensitive variable becomes the run-time test variable."""

    def run():
        n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(0, 1000))
        versioned_a = 2 * n + 50     # fast loop, fixed setup
        versioned_b = 3 * n          # no setup, slower per iteration
        result = compare(versioned_a, versioned_b)
        guard = build_guard(result)
        return result, guard

    result, guard = benchmark.pedantic(run, rounds=1, iterations=1)
    assert worth_testing(result)
    assert guard is not None
    emit_table(
        "E-SENS-b",
        "Generated run-time test for the two-version loop",
        ["artifact", "value"],
        [
            ("deciding variable", result.variable),
            ("crossover", str(guard.crossovers[0])),
            ("guard condition", print_expr(guard.condition)),
            ("description", guard.description),
        ],
    )
    assert result.variable == "n"
    assert print_expr(guard.condition) in ("n >= 50", "n .ge. 50")
