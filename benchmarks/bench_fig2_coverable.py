"""E-F2 -- Figure 2: coverable vs noncoverable instruction costs.

The paper's defining example: an FP add has one noncoverable and one
coverable FPU cycle, so it costs two cycles alone but one cycle
marginally when independent work fills the coverable slot; a dependent
consumer must wait the full latency.  This bench regenerates that
arithmetic across chain lengths and mixes.
"""

from repro.cost import place_stream
from repro.machine import power_machine
from repro.translate.stream import Instr

from _report import emit_table


def _series():
    machine = power_machine()
    rows = []
    for k in (1, 2, 4, 8, 16):
        independent = place_stream(
            machine, [Instr(i, "fpu_arith") for i in range(k)]
        ).cycles
        dependent = place_stream(
            machine,
            [Instr(i, "fpu_arith", deps=(i - 1,) if i else ()) for i in range(k)],
        ).cycles
        rows.append((k, independent, dependent))
    return rows


def test_fig2_coverable_series(benchmark):
    rows = benchmark.pedantic(_series, rounds=1, iterations=1)
    emit_table(
        "E-F2",
        "Figure 2: k FP adds -- independent (covered) vs dependent (uncovered)",
        ["k adds", "independent cycles", "dependent cycles"],
        rows,
        notes="independent: k+1 (one trailing coverable cycle); "
        "dependent: 2k (every coverable cycle exposed)",
    )
    for k, independent, dependent in rows:
        assert independent == k + 1
        assert dependent == 2 * k


def test_fig2_store_dual_unit_cost(benchmark):
    """FP store: FPU 2 cycles (1 coverable) + FXU 1 cycle (paper text)."""
    machine = power_machine()

    def run():
        alone = place_stream(machine, [Instr(0, "fpu_store")]).cycles
        # An independent FXU op cannot share the store's FXU slot...
        with_fxu = place_stream(
            machine, [Instr(0, "fpu_store"), Instr(1, "fxu_add")]
        ).cycles
        # ...but an independent FPU op can share the coverable FPU slot.
        with_fpu = place_stream(
            machine, [Instr(0, "fpu_store"), Instr(1, "fpu_arith")]
        ).cycles
        return alone, with_fxu, with_fpu

    alone, with_fxu, with_fpu = benchmark.pedantic(run, rounds=1, iterations=1)
    assert alone == 2
    assert with_fxu == 2   # FXU add lands at slot 1: still 2 cycles
    assert with_fpu == 3   # FPU busy slot 0; add at 1, result at 3


def test_fig2_mixed_units_fill_coverable(benchmark):
    """Loads slot into an FP add's shadow: total stays at the maximum."""
    machine = power_machine()

    def run():
        return place_stream(machine, [
            Instr(0, "fpu_arith"),
            Instr(1, "lsu_load"),
            Instr(2, "lsu_load"),
        ]).cycles

    assert benchmark.pedantic(run, rounds=1, iterations=1) == 3
