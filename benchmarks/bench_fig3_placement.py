"""E-F3 -- Figure 3: dropping the loop body into the functional bins.

Reproduces the paper's worked example: the body of

    do l = 1, 150
      c(l) = c(l) + a(l) * b(l)
    end do

dropped into the five POWER bins (FXU, FPU, BranchU, CR-LogicU,
Load/StoreU).  Checks the landing slots the figure implies -- loads
pipeline through the LSU, the FMA waits for its operands, the store
follows the FMA, the branch hides in the Branch unit -- and renders the
ASCII bin picture.
"""

from repro.cost import BinSet, place_stream
from repro.machine import power_machine
from repro.translate.stream import Instr

from _report import emit_table

FIG3_BODY = [
    Instr(0, "lsu_load", tag="load a(l)"),
    Instr(1, "lsu_load", tag="load b(l)"),
    Instr(2, "lsu_load", tag="load c(l)"),
    Instr(3, "fpu_arith", deps=(0, 1, 2), tag="r = c + a*b (fma)"),
    Instr(4, "fpu_store", deps=(3,), tag="store c(l)"),
    Instr(5, "fxu_cmp", tag="l vs 150"),
    Instr(6, "branch", deps=(5,), tag="loop branch"),
]


def _place():
    machine = power_machine()
    bins = BinSet(machine)
    placed = place_stream(machine, FIG3_BODY, bins=bins)
    return machine, bins, placed


def test_fig3_landing_slots(benchmark):
    _, bins, placed = benchmark.pedantic(_place, rounds=1, iterations=1)
    slots = {op.instr.tag: op.time for op in placed.ops}
    rows = [(tag, time, FIG3_BODY[i].atomic)
            for i, (tag, time) in enumerate(slots.items())]
    emit_table(
        "E-F3",
        "Figure 3: Tetris drop of `c(l) = c(l) + a(l)*b(l)` into POWER bins",
        ["operation", "time slot", "atomic op"],
        rows,
        notes=bins.render(),
    )
    # Loads pipeline 1/cycle through the single LSU.
    assert slots["load a(l)"] == 0
    assert slots["load b(l)"] == 1
    assert slots["load c(l)"] == 2
    # FMA waits for the last load's result (issued at 2, ready at 4).
    assert slots["r = c + a*b (fma)"] == 4
    # The dependent store waits for the FMA result.
    assert slots["store c(l)"] == 6
    # Compare and branch hide under the loads in their own bins.
    assert slots["l vs 150"] == 0
    assert slots["loop branch"] <= 2


def test_fig3_total_cost(benchmark):
    _, _, placed = benchmark.pedantic(_place, rounds=1, iterations=1)
    # store at 6, FPU busy 6 (+1 coverable), FXU of store at 6: cost 8.
    assert placed.cycles == 8


def test_fig3_bins_flushed_between_blocks(benchmark):
    """'The bins are flushed before being used for another block.'"""
    machine = power_machine()

    def run():
        first = place_stream(machine, FIG3_BODY)
        second = place_stream(machine, FIG3_BODY)
        return first, second

    first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert first.cycles == second.cycles
    assert first.ops[0].time == second.ops[0].time == 0


def test_fig3_placement_throughput(benchmark):
    machine = power_machine()
    benchmark(lambda: place_stream(machine, FIG3_BODY).cycles)
