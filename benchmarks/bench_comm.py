"""E-COMM -- the communication cost module (section 2, Figure 1).

"For distributed memory machines, message passing instructions are sent
along with the sequential cost estimation to the communication cost
module to get cost of moving data among processors."

Regenerates the primitive scaling tables -- cost vs message size and vs
processor count -- and prices a block-distributed Jacobi step
end-to-end (compute + halo exchange), locating the message-size regime
where distribution starts to pay.
"""

from fractions import Fraction

import repro
from repro.comm import (
    CommunicationCostModel,
    broadcast_cost,
    exchange_cost,
    reduce_cost,
    send_cost,
    shift_cost,
    sp1_network,
)
from repro.symbolic import Interval, PerfExpr, UnknownKind

from _report import emit_table


def test_comm_primitive_scaling_table(benchmark):
    def run():
        rows = []
        for nbytes in (64, 1024, 65536):
            for p in (4, 16, 64):
                net = sp1_network(p)
                rows.append((
                    nbytes, p,
                    int(send_cost(net, nbytes).constant_value()),
                    int(shift_cost(net, nbytes).constant_value()),
                    int(broadcast_cost(net, nbytes).constant_value()),
                    int(reduce_cost(net, nbytes).constant_value()),
                    int(exchange_cost(net, nbytes).constant_value()),
                ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-COMM",
        "Message-passing primitive costs (cycles) on the SP1-like switch",
        ["bytes", "P", "send", "shift", "broadcast", "reduce", "all-to-all"],
        rows,
    )
    # Structural checks: broadcast grows with log P, exchange with P.
    by_bytes = [r for r in rows if r[0] == 1024]
    assert by_bytes[0][4] < by_bytes[1][4] < by_bytes[2][4]       # broadcast
    assert by_bytes[2][6] / by_bytes[0][6] > 10                    # exchange ~P
    # Startup dominates small messages: send(64B) ~ send(1KB) within 2x.
    small = [r for r in rows if r[0] == 64][0][2]
    medium = [r for r in rows if r[0] == 1024][0][2]
    assert medium < 2 * small


def test_comm_distributed_jacobi_crossover(benchmark):
    """Compute/communicate balance of a block-distributed stencil."""

    def run():
        prog = repro.parse_program(
            "program jac\n  integer n, i, j\n  real a(n,n), b(n,n)\n"
            "  do j = 2, n - 1\n    do i = 2, n - 1\n"
            "      b(i,j) = 0.25 * (a(i-1,j) + a(i+1,j) + a(i,j-1) + a(i,j+1))\n"
            "    end do\n  end do\nend\n"
        )
        compute = repro.predict(prog)
        rows = []
        for p in (2, 4, 16):
            model = CommunicationCostModel(sp1_network(p), element_bytes=4)
            n_sym = PerfExpr.unknown(
                "n", UnknownKind.LOOP_BOUND, Interval(4, 10 ** 6)
            )
            halo = model.block_distribution_cost(n_sym)
            crossover = None
            for n in (64, 128, 256, 512, 1024, 2048, 4096):
                serial = compute.evaluate({"n": n})
                parallel = compute.evaluate({"n": n}) / p + halo.evaluate({"n": n})
                if parallel < serial and crossover is None:
                    crossover = n
            rows.append((p, crossover))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-COMM-b",
        "Distributed Jacobi: smallest n where P-way distribution wins",
        ["processors", "crossover n"],
        rows,
        notes="startup-dominated halo exchange makes small grids serial-best",
    )
    # More processors shift more work off each node: crossovers exist
    # and are finite for every P.
    for _, crossover in rows:
        assert crossover is not None
    # With very few processors the win requires larger n than with many
    # ... unless startup dominates; just require monotone or equal.
    values = [c for _, c in rows]
    assert values[0] >= values[-1]


def test_comm_symbolic_message_size(benchmark):
    """Message sizes stay symbolic end to end."""

    def run():
        net = sp1_network()
        m = PerfExpr.unknown("m", UnknownKind.PARAMETER, Interval(0, 10 ** 9))
        cost = send_cost(net, m)
        return cost

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cost.poly.degree("m") == 1
    assert cost.poly.coeffs_by_var("m")[1].constant_value() == Fraction(3, 2)
