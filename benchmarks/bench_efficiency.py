"""E-EFF -- the efficiency requirement (paper sections 1.3 and 2.1).

"The performance prediction needs to be very efficient to make repeated
calls practical during the program optimization process" and "the key
factor in deciding whether this approach is useful or not lies in the
efficiency of the implementation" (of the linear-time placement).

Measures estimator throughput across block sizes and checks that the
cost grows roughly linearly in the number of atomic operations.
"""

import time

from repro.cost import StraightLineEstimator
from repro.bench import random_stream
from repro.machine import power_machine

from _report import emit_table

_SIZES = (10, 50, 100, 500, 1000)


def test_eff_linearity_table(benchmark):
    def measure():
        machine = power_machine()
        estimator = StraightLineEstimator(machine)
        rows = []
        per_op: list[float] = []
        for size in _SIZES:
            repeats = max(1, 2000 // size)
            # Distinct streams per repeat: identical ones would be
            # answered by the placement memo, and this bench times the
            # placement algorithm itself.
            streams = [random_stream(machine, size, seed=size + 7919 * r)
                       for r in range(repeats)]
            t0 = time.perf_counter()
            for stream in streams:
                estimator.estimate(stream)
            elapsed = (time.perf_counter() - t0) / repeats
            per_op.append(elapsed / size)
            rows.append((
                size,
                f"{elapsed * 1e3:.3f}ms",
                f"{elapsed / size * 1e6:.2f}us",
                f"{1 / elapsed:.0f}",
            ))
        return rows, per_op

    rows, per_op = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit_table(
        "E-EFF",
        "Estimator throughput vs block size (random atomic-op DAGs, POWER)",
        ["atomic ops", "time/estimate", "time/op", "estimates/sec"],
        rows,
        notes="near-constant time/op = the linear-time placement claim",
    )
    # Linearity check: per-op time at 1000 ops within 2.5x of at 10 ops
    # (the hinted block walk keeps placement linear).
    assert per_op[-1] <= 2.5 * per_op[0]


def test_eff_estimate_100(benchmark):
    machine = power_machine()
    estimator = StraightLineEstimator(machine)
    stream = random_stream(machine, 100, seed=1)
    benchmark(lambda: estimator.estimate(stream).cycles)


def test_eff_estimate_1000(benchmark):
    machine = power_machine()
    estimator = StraightLineEstimator(machine)
    stream = random_stream(machine, 1000, seed=2)
    benchmark(lambda: estimator.estimate(stream).cycles)


def test_eff_whole_program_prediction(benchmark):
    """End-to-end predict() on matmul: the repeated-call unit of work."""
    import repro
    from repro.bench import kernel

    program = kernel("matmul").program
    cost = benchmark(lambda: repro.predict(program))
    assert cost.poly.degree("n") == 3
