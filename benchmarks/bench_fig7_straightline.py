"""E-F7 -- Figure 7: straight-line prediction vs the reference back-end.

Regenerates the paper's preliminary-results table: for each kernel
(F1-F7, Matmul 4x4, Jacobi, RB) the predicted cycle count of the
innermost basic block versus the reference scheduler's count (our
substitute for the IBM xlf cycle listings), with the relative error.

Expected shape (the paper: "predictions are fairly accurate for
straight-line code"): single-digit errors on most kernels, and the
16-FMA Matmul block streaming at ~1 FMA/cycle.
"""

import pytest

from repro.backend import simulate
from repro.bench import kernel, kernel_names, kernel_stream
from repro.cost import StraightLineEstimator
from repro.machine import power_machine

from _report import emit_table


def _rows():
    machine = power_machine()
    estimator = StraightLineEstimator(machine)
    rows = []
    for name in kernel_names():
        info = kernel_stream(kernel(name), machine)
        predicted = estimator.estimate(info.stream).cycles
        iterative = [i for i in info.stream if not i.one_time]
        reference = simulate(machine, iterative).cycles
        error = 100.0 * (predicted - reference) / reference
        rows.append((name, len(iterative), predicted, reference, f"{error:+.1f}%"))
    return rows


def test_fig7_table_regeneration(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    emit_table(
        "E-F7",
        "Figure 7: predicted vs reference cycles, straight-line blocks (POWER)",
        ["kernel", "atomic ops", "predicted", "reference", "error"],
        rows,
        notes="reference = list-scheduling back-end (xlf stand-in); "
        "memory & call costs excluded as in the paper",
    )
    # The reproduction criterion: every kernel within 30%, median well
    # under 10% (the paper reports 'fairly accurate').
    errors = [abs(float(r[4].rstrip("%"))) for r in rows]
    assert max(errors) <= 30.0
    errors.sort()
    assert errors[len(errors) // 2] <= 10.0


def test_fig7_matmul_streams_fmas(benchmark):
    """16 FMAs + 8 loads stream at ~1.25 cycles per FMA."""
    machine = power_machine()
    info = kernel_stream(kernel("matmul"), machine)
    predicted = benchmark.pedantic(
        lambda: StraightLineEstimator(machine).estimate(info.stream),
        rounds=1, iterations=1,
    )
    fmas = sum(1 for i in info.stream if i.tag == "fma")
    assert fmas == 16
    assert predicted.cycles <= 2 * fmas  # far better than 2 cycles/FMA serial


@pytest.mark.parametrize("name", kernel_names())
def test_fig7_prediction_speed(benchmark, name):
    """Prediction must be fast enough for repeated compiler queries."""
    machine = power_machine()
    estimator = StraightLineEstimator(machine)
    info = kernel_stream(kernel(name), machine)

    benchmark(lambda: estimator.estimate(info.stream).cycles)
