"""E-F10 -- Figure 10: sign regions of a cubic performance difference.

The paper's figure shows ``y = a x^3 + b x^2 + c x + d`` with ``a > 0``
over ``[lb, ub]`` and shades the regions where it is negative.  This
bench reconstructs the figure for a family of cubics with known roots,
checks the computed crossovers against the analytic roots, and reports
the P+/P- masses section 3.1 uses to rank transformations.
"""

from fractions import Fraction

from repro.compare import Verdict, compare
from repro.symbolic import Interval, PerfExpr, Poly, sign_regions

from _report import emit_table


def _analyze():
    x = Poly.var("x")
    cases = [
        ("(x-1)(x-3)(x-6)", (x - 1) * (x - 3) * (x - 6), [1, 3, 6]),
        # A double root does not change the sign: one boundary only.
        ("(x-2)^2(x-8)", (x - 2) * (x - 2) * (x - 8), [8]),
        ("x^3+1 (no roots in domain)", x ** 3 + 1, []),
        ("(x-5)(x^2+1)", (x - 5) * (x * x + 1), [5]),
    ]
    rows = []
    for label, poly, expected_roots in cases:
        domain = Interval(0, 10)
        regions = sign_regions(poly, "x", domain)
        crossings = [float(a.interval.hi) for a in regions[:-1]]
        signs = "".join(
            {"positive": "+", "negative": "-", "zero": "0"}[r.sign.value]
            for r in regions
        )
        rows.append((label, signs, str(crossings), str(expected_roots)))
        assert len(crossings) == len(expected_roots)
        for got, want in zip(sorted(crossings), sorted(expected_roots)):
            assert abs(got - want) < 1e-6
    return rows


def test_fig10_cubic_regions(benchmark):
    rows = benchmark.pedantic(_analyze, rounds=1, iterations=1)
    emit_table(
        "E-F10",
        "Figure 10: sign regions of cubics over [0, 10]",
        ["cubic", "sign pattern", "computed boundaries", "analytic roots"],
        rows,
    )


def test_fig10_pplus_pminus_masses(benchmark):
    """P+ / P- integral comparison on the figure's cubic."""

    def run():
        x = PerfExpr.unknown("x", interval=Interval(0, 10))
        cubic = PerfExpr(
            (Poly.var("x") - 1) * (Poly.var("x") - 3) * (Poly.var("x") - 6),
            x.bounds, x.unknowns,
        )
        return compare(cubic, PerfExpr.zero())

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.verdict is Verdict.DEPENDS
    masses = result.integrals
    emit_table(
        "E-F10b",
        "P+/P- masses of (x-1)(x-3)(x-6) over [0, 10]",
        ["quantity", "value"],
        [
            ("P- mass (first wins)", float(masses.negative_integral)),
            ("P+ mass (second wins)", float(masses.positive_integral)),
            ("first-wins measure", float(result.first_wins_measure())),
            ("second-wins measure", float(result.second_wins_measure())),
            ("net integral", float(masses.net)),
        ],
    )
    # Exact check: net = ∫0..10 (x^3 - 10x^2 + 27x - 18) dx = 1010/3.
    assert masses.net == Fraction(1010, 3)


def test_fig10_region_throughput(benchmark):
    x = Poly.var("x")
    poly = (x - 1) * (x - 3) * (x - 6)
    domain = Interval(0, 10)
    benchmark(lambda: sign_regions(poly, "x", domain))
