"""E-MEM -- the cache-line counting model (section 2.3).

"The total number of cache line accesses is counted and the cost of
filling these cache lines is used to approximate the memory cost."

Validates the analytical line counts against the reference
set-associative cache simulator on stream, transpose, and matmul
nests, and reproduces the canonical blocking result: tiling the 2-D
sweep cuts the lines touched once the working set no longer fits.
"""

import repro
from repro.ir import SymbolTable
from repro.machine import MemoryGeometry, power_machine
from repro.memory import count_nest_lines, simulate_nest_misses
from repro.transform import Tile2D, loop_paths

from _report import emit_table

_SMALL_CACHE = MemoryGeometry(
    cache_size_bytes=4096, cache_line_bytes=64, cache_associativity=4
)


def _programs():
    stream = repro.parse_program(
        "program s\n  integer i\n  real a(4096), b(4096)\n"
        "  do i = 1, 4096\n    a(i) = b(i) + 1.0\n  end do\nend\n"
    )
    transpose = repro.parse_program(
        "program t\n  integer i, j\n  real a(128,128), b(128,128)\n"
        "  do j = 1, 128\n    do i = 1, 128\n      a(i,j) = b(j,i)\n"
        "    end do\n  end do\nend\n"
    )
    return [("stream", stream, {"a": (4096,), "b": (4096,)}),
            ("transpose", transpose, {"a": (128, 128), "b": (128, 128)})]


def test_memory_model_vs_simulator_table(benchmark):
    def run():
        rows = []
        for name, prog, dims in _programs():
            symtab = SymbolTable.from_program(prog)
            loop = prog.body[0]
            predicted = count_nest_lines(loop, symtab, _SMALL_CACHE)
            lines = float(predicted.total_lines().evaluate({}))
            misses, accesses = simulate_nest_misses(
                loop, symtab, _SMALL_CACHE, {}, dims
            )
            rows.append((
                name, accesses, int(lines), misses,
                f"{100 * (lines - misses) / misses:+.1f}%",
            ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-MEM",
        "Cache-line counting model vs reference cache simulator (4 KiB cache)",
        ["nest", "accesses", "predicted lines", "simulated misses", "error"],
        rows,
    )
    for _, _, predicted, misses, _ in rows:
        assert abs(predicted - misses) / misses <= 0.25


def test_memory_blocking_benefit(benchmark):
    """Tiling the transpose drops its line traffic (the blocking story).

    A high-associativity geometry is used because at 256x256 the
    power-of-two column stride maps a whole tile column into one set of
    a low-associativity cache -- conflict misses the counting model
    (like the paper's) does not capture.
    """
    assoc_cache = MemoryGeometry(
        cache_size_bytes=4096, cache_line_bytes=64, cache_associativity=64
    )

    def run():
        prog = repro.parse_program(
            "program t\n  integer i, j\n  real a(256,256), b(256,256)\n"
            "  do j = 1, 256\n    do i = 1, 256\n      a(i,j) = b(j,i)\n"
            "    end do\n  end do\nend\n"
        )
        symtab = SymbolTable.from_program(prog)
        untiled_lines = count_nest_lines(
            prog.body[0], symtab, assoc_cache
        ).total_lines().evaluate({})
        untiled_misses, _ = simulate_nest_misses(
            prog.body[0], symtab, assoc_cache, {},
            {"a": (256, 256), "b": (256, 256)},
        )
        tiler = Tile2D(tiles=(8,))
        site = tiler.sites(prog)[0]
        tiled = tiler.apply(prog, site)
        tiled_loop = next(loop for _, loop in loop_paths(tiled))
        tiled_misses, _ = simulate_nest_misses(
            tiled_loop, symtab, assoc_cache, {},
            {"a": (256, 256), "b": (256, 256)},
        )
        return float(untiled_lines), untiled_misses, tiled_misses

    untiled_lines, untiled_misses, tiled_misses = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit_table(
        "E-MEM-b",
        "Blocking benefit on a 256x256 transpose (4 KiB cache)",
        ["variant", "cache misses"],
        [
            ("untiled (model)", int(untiled_lines)),
            ("untiled (simulated)", untiled_misses),
            ("tiled 8x8 (simulated)", tiled_misses),
        ],
    )
    assert tiled_misses < untiled_misses / 2


def test_memory_model_throughput(benchmark):
    prog = repro.parse_program(
        "program t\n  integer n, i, j\n  real a(n,n), b(n,n)\n"
        "  do j = 1, n\n    do i = 1, n\n      a(i,j) = b(j,i)\n"
        "    end do\n  end do\nend\n"
    )
    symtab = SymbolTable.from_program(prog)
    machine = power_machine()
    benchmark(
        lambda: count_nest_lines(prog.body[0], symtab, machine.memory)
        .total_lines()
    )
