"""E-OPC -- the operation-count baseline (paper section 1.2).

"If not applied carefully, a conventional cost estimation model may be
off by a factor of ten or more!"

For every Figure 7 kernel and three machines, compares the op-count
estimate and the Tetris estimate against the reference schedule.  The
expected shape: on the scalar machine both models agree; on the
superscalar machines the op-count error grows with available
parallelism (largest on the wide machine and on FMA-rich kernels),
while the Tetris model stays tight.
"""

from repro.backend import simulate
from repro.baselines import OpCountEstimator
from repro.bench import kernel, kernel_names, kernel_stream
from repro.cost import StraightLineEstimator
from repro.machine import get_machine
from repro.translate.stream import InstrStream, reindex

from _report import emit_table


def _rows():
    rows = []
    worst_ratio = {}
    for machine_name in ("scalar", "power", "wide"):
        machine = get_machine(machine_name)
        tetris = StraightLineEstimator(machine)
        naive = OpCountEstimator(machine)
        for name in kernel_names():
            info = kernel_stream(kernel(name), machine)
            iterative = reindex([i for i in info.stream if not i.one_time])
            stream = InstrStream(machine_name=machine.name)
            for i in iterative:
                stream.append(i.atomic, i.deps, i.tag)
            reference = simulate(machine, stream, with_spills=False).cycles
            t = tetris.estimate(stream).cycles
            n = naive.estimate(stream).cycles
            ratio_naive = n / reference
            ratio_tetris = t / reference
            worst_ratio.setdefault(machine_name, 0)
            worst_ratio[machine_name] = max(worst_ratio[machine_name], ratio_naive)
            rows.append((
                machine_name, name, reference, t, n,
                f"{ratio_tetris:.2f}x", f"{ratio_naive:.2f}x",
            ))
    return rows, worst_ratio


def test_opcount_factor_table(benchmark):
    rows, worst = benchmark.pedantic(_rows, rounds=1, iterations=1)
    emit_table(
        "E-OPC",
        "Operation-count vs Tetris model vs reference (all kernels/machines)",
        ["machine", "kernel", "reference", "tetris", "op-count",
         "tetris/ref", "opcount/ref"],
        rows,
        notes="the op-count overestimate grows with machine parallelism; "
        "the Tetris model does not",
    )
    # Scalar machine: op counting is exact (everything blocks).
    scalar_rows = [r for r in rows if r[0] == "scalar"]
    for row in scalar_rows:
        assert float(row[6].rstrip("x")) <= 1.25
    # Superscalar machines: meaningful inflation, worst >= 2x on power
    # and growing on wide.
    assert worst["power"] >= 2.0
    assert worst["wide"] >= worst["power"]
    # Tetris stays within 30% everywhere.
    for row in rows:
        assert 0.7 <= float(row[5].rstrip("x")) <= 1.3


def test_opcount_gap_grows_with_block_parallelism(benchmark):
    """Wider independent blocks inflate the op-count error further."""
    from repro.translate.stream import Instr
    from repro.machine import power_machine

    def run():
        machine = power_machine()
        gaps = []
        for k in (2, 8, 32):
            instrs = [Instr(i, "fpu_arith") for i in range(k)]
            ref = simulate(machine, instrs, with_spills=False).cycles
            naive = OpCountEstimator(machine).estimate(_wrap(instrs)).cycles
            gaps.append(naive / ref)
        return gaps

    gaps = benchmark.pedantic(run, rounds=1, iterations=1)
    assert gaps[0] < gaps[1] < gaps[2]
    assert gaps[2] > 1.8


def _wrap(instrs):
    stream = InstrStream()
    for i in instrs:
        stream.append(i.atomic, i.deps, i.tag)
    return stream
