"""E-F4/5 -- Figures 4-5: the signed-block slot data structure.

The paper's claim: "By looking at blocks instead of individual array
elements, simultaneously searching for empty spaces in multiple bins
can be done much more efficiently with our data structure than regular
array or list representations."  This bench measures block-walking
``next_fit`` against a naive per-cell scan on identical occupancy
patterns, across fragmentation levels.
"""

import random

from repro.cost import SlotArray

from _report import emit_table


def _fragmented(num_blocks: int, seed: int = 7) -> tuple[SlotArray, list[bool]]:
    """An array with ``num_blocks`` filled runs and matching naive model."""
    rng = random.Random(seed)
    array = SlotArray(64)
    capacity = num_blocks * 12 + 64
    naive = [False] * (capacity + 64)
    position = 0
    for _ in range(num_blocks):
        gap = rng.randint(1, 3)           # small holes to skip
        run = rng.randint(2, 8)
        position += gap
        array.fill(position, run)
        for i in range(position, position + run):
            naive[i] = True
        position += run
    return array, naive


def _naive_next_fit(cells: list[bool], start: int, length: int) -> int:
    position = start
    while True:
        block = cells[position:position + length]
        if len(block) < length:
            block = block + [False] * (length - len(block))
        if not any(block):
            return position
        position += 1


def test_fig4_equivalence(benchmark):
    """Block search and naive scan agree everywhere."""

    def run():
        array, naive = _fragmented(200)
        for start in range(0, 2000, 37):
            for length in (1, 2, 5, 9):
                assert array.next_fit(start, length) == _naive_next_fit(
                    naive, start, length
                )
        return True

    assert benchmark.pedantic(run, rounds=1, iterations=1)


def test_fig4_speedup_table(benchmark):
    """Search cost vs fragmentation: blocks walk runs, cells walk slots."""
    import time

    def measure():
        rows = []
        for blocks in (50, 200, 800):
            array, naive = _fragmented(blocks)
            # Long runs force the naive scan to test many cells per
            # position; the block walk hops whole runs instead.
            queries = [(s, length) for s in range(0, 64, 13)
                       for length in (16, 48)]
            t0 = time.perf_counter()
            for start, length in queries:
                array.next_fit(start, length)
            block_time = time.perf_counter() - t0
            t0 = time.perf_counter()
            for start, length in queries:
                _naive_next_fit(naive, start, length)
            naive_time = time.perf_counter() - t0
            rows.append((
                blocks, len(queries),
                f"{block_time * 1e3:.2f}ms", f"{naive_time * 1e3:.2f}ms",
                f"{naive_time / block_time:.1f}x",
            ))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit_table(
        "E-F4",
        "Figures 4-5: signed-block search vs naive per-cell scan",
        ["filled blocks", "queries", "block-walk", "cell-scan", "speedup"],
        rows,
    )
    # The data structure should never lose, and win clearly when
    # fragmented.
    final_speedup = float(rows[-1][4].rstrip("x"))
    assert final_speedup > 1.0


def test_fig4_insert_throughput(benchmark):
    """Fills (with block merging) at benchmark speed."""

    def run():
        array = SlotArray(64)
        for i in range(500):
            array.fill(i * 3, 2)
        return array.filled_total

    assert benchmark(run) == 1000
