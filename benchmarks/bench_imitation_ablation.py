"""E-IMIT -- ablation of the imitated back-end optimizations (section 2.2.2).

The paper argues the cost model must *imitate* the back-end ("the cost
model needs to imitate these optimizations to get accurate estimates").
This bench quantifies that: for each imitated optimization, turn its
imitation OFF while the reference back-end (which stands for the real
compiler) keeps optimizing -- and measure how far the prediction
drifts from the reference on the Figure 7 kernels.

Expected shape: each disabled imitation inflates prediction error on
the kernels that exercise it (FMA fusion on matmul, registerized
reductions on f3, CSE on f1, invariant hoisting on f2/f5).
"""

from repro.backend import simulate
from repro.bench import kernel, kernel_names, kernel_stream
from repro.cost import StraightLineEstimator
from repro.machine import power_machine
from repro.translate import AGGRESSIVE_BACKEND

from _report import emit_table

_ABLATIONS = [
    ("full imitation", {}),
    ("no FMA fusion", {"fuse_fma": True}),
    ("no CSE", {"cse": True}),
    ("no invariant hoisting", {"licm": True}),
    ("no registerized scalars", {"registerize_scalars": True}),
    ("no addressing strength-red.", {"strength_reduce_addressing": True}),
]


def _mean_error(flags):
    """Mean relative prediction error vs the (optimizing) reference."""
    machine = power_machine()
    estimator = StraightLineEstimator(machine)
    errors = []
    for name in kernel_names():
        # The reference compiles with full optimization, always.
        ref_info = kernel_stream(kernel(name), machine, AGGRESSIVE_BACKEND)
        reference = simulate(
            machine, [i for i in ref_info.stream if not i.one_time]
        ).cycles
        # The predictor's imitation is (partially) disabled.
        info = kernel_stream(kernel(name), machine, flags)
        predicted = estimator.estimate(info.stream).cycles
        errors.append(abs(predicted - reference) / reference)
    return sum(errors) / len(errors)


def test_imitation_ablation_table(benchmark):
    def run():
        rows = []
        for label, off in _ABLATIONS:
            flags = AGGRESSIVE_BACKEND.without(**off) if off else AGGRESSIVE_BACKEND
            rows.append((label, f"{100 * _mean_error(flags):.1f}%"))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-IMIT",
        "Prediction error vs optimizing reference when one imitation is off",
        ["imitation disabled", "mean |error| over kernels"],
        rows,
        notes="the reference back-end always optimizes; a missing "
        "imitation makes the source-level estimate drift (section 2.2.2)",
    )
    baseline = float(rows[0][1].rstrip("%"))
    ablated = [float(r[1].rstrip("%")) for r in rows[1:]]
    # Full imitation is the most accurate configuration...
    assert all(a >= baseline for a in ablated)
    # ...and at least two imitations matter a lot individually.
    assert sum(1 for a in ablated if a > baseline + 10) >= 2


def test_fma_imitation_matters_most_on_matmul(benchmark):
    def run():
        machine = power_machine()
        estimator = StraightLineEstimator(machine)
        ref_info = kernel_stream(kernel("matmul"), machine)
        reference = simulate(
            machine, [i for i in ref_info.stream if not i.one_time]
        ).cycles
        no_fma = kernel_stream(
            kernel("matmul"), machine, AGGRESSIVE_BACKEND.without(fuse_fma=True)
        )
        predicted = estimator.estimate(no_fma.stream).cycles
        return predicted, reference

    predicted, reference = benchmark.pedantic(run, rounds=1, iterations=1)
    # Unfused: 16 muls + 16 adds on one FPU -> ~32+ cycles vs ~20 real.
    assert predicted >= 1.5 * reference
