"""E-SERVICE -- serving-layer throughput: cache and worker scaling.

The service subsystem amortizes work two ways: a content-addressed
result cache answers repeated requests without recomputation, and a
worker pool runs independent requests concurrently.  This benchmark
measures both on the Figure 7 kernel suite:

* cold single requests vs a warm-cache batch (the acceptance bar is
  warm batch throughput >= 5x cold single-request throughput);
* 1-worker vs N-worker batch execution of uncached requests.
"""

import time

from repro.bench.kernels import KERNELS
from repro.service import PredictRequest, PredictionEngine

from _report import emit_table

REPEAT_WARM = 20


def _requests():
    # Distinct evaluation points make every (program, point) pair a
    # distinct cache entry, like distinct clients would.
    return [
        PredictRequest(source=k.source, bindings={"n": 256})
        for k in KERNELS.values()
    ]


def test_service_cold_vs_warm_cache(benchmark):
    def run():
        # "Cold" means cold all the way down: earlier benchmarks in the
        # same process leave the shared predictor and placement memos
        # warm, which would flatter the cold phase.
        from repro.cost import reset_placement_cache
        from repro.transform.parallel import _predictors
        _predictors.clear()
        reset_placement_cache()

        requests = _requests()
        engine = PredictionEngine(workers=0, cache_size=256)

        # Cold: every request computed one at a time, empty cache.
        t0 = time.perf_counter()
        for request in requests:
            engine.predict(request)
        cold = time.perf_counter() - t0
        cold_rps = len(requests) / cold

        # Warm: the same batch over and over, all cache hits.
        t0 = time.perf_counter()
        for _ in range(REPEAT_WARM):
            engine.batch(requests)
        warm = time.perf_counter() - t0
        warm_rps = REPEAT_WARM * len(requests) / warm

        engine.close()
        return cold_rps, warm_rps, engine.cache.stats

    cold_rps, warm_rps, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = warm_rps / cold_rps
    emit_table(
        "E-SERVICE",
        f"Figure 7 suite over the service layer ({len(KERNELS)} kernels)",
        ["mode", "requests/s", "speedup", "cache hits", "cache misses"],
        [
            ("cold, single requests", f"{cold_rps:.0f}", "1.0x",
             "-", stats.misses),
            (f"warm batch x{REPEAT_WARM}", f"{warm_rps:.0f}",
             f"{speedup:.1f}x", stats.hits, "-"),
        ],
        notes=f"warm/cold throughput = {speedup:.1f}x (acceptance: >= 5x)",
    )
    assert speedup >= 5.0


def test_service_worker_scaling(benchmark):
    def run():
        requests = _requests()
        timings = {}
        for workers in (1, 4):
            engine = PredictionEngine(workers=workers, cache_size=256,
                                      executor="auto")
            t0 = time.perf_counter()
            engine.batch(requests)
            timings[workers] = time.perf_counter() - t0
            engine.close()
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"{workers} worker(s)", f"{seconds * 1e3:.1f}ms",
         f"{len(KERNELS) / seconds:.0f}")
        for workers, seconds in sorted(timings.items())
    ]
    emit_table(
        "E-SERVICE-WORKERS",
        "Uncached batch of the Figure 7 suite, 1 vs 4 workers",
        ["configuration", "batch time", "requests/s"],
        rows,
        notes="process-pool startup is amortized over a server's lifetime; "
              "small batches may not beat inline execution.",
    )
    # Both configurations must complete the whole batch correctly; the
    # scaling itself is informational (pool startup dominates tiny work).
    assert all(seconds > 0 for seconds in timings.values())


# ----------------------------------------------------------------------
# E-SERVICE-MIX -- batch-aware scheduling vs naive one-task-per-request


MATMUL = """
program mm
  integer n, i, j, k
  real a(n,n), b(n,n), c(n,n)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
"""

SAXPY = """
program saxpy
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""

TINY_PREDICTS = 32


def _mixed_items():
    from repro.service import RestructureRequest
    from repro.service.engine import _request_to_dict

    heavy = ("restructure", _request_to_dict(RestructureRequest(
        source=MATMUL, workload={"n": 16}, depth=3, max_nodes=120,
        beam_width=4)))
    tiny = [
        ("predict", _request_to_dict(
            PredictRequest(source=SAXPY, bindings={"n": n})))
        for n in range(1, TINY_PREDICTS + 1)
    ]
    # The heavy request arrives first: the worst case for FIFO scheduling.
    return [heavy] + tiny


def _p95(samples):
    ranked = sorted(samples)
    return ranked[min(len(ranked) - 1, int(0.95 * len(ranked)))]


def test_service_mixed_batch_scheduling(benchmark):
    """One depth-3 restructure + 32 tiny predicts: tiny-request p95.

    Under naive scheduling each request is one pool task awaited in
    FIFO order, so every tiny response queues behind the restructure.
    Weighted scheduling groups the tiny requests into chunks submitted
    ahead of the split restructure's round tasks, streaming them back
    (via ``on_result``) while the search is still running.
    """
    import os

    def run():
        # Untimed warm-up so the process-global predictor and placement
        # memos do not favor whichever scheduling mode runs second.
        with PredictionEngine(workers=0) as engine:
            engine.handle_batch(_mixed_items())

        out = {}
        for scheduling in ("naive", "weighted"):
            done = {}
            t0 = time.perf_counter()
            with PredictionEngine(workers=2, executor="thread",
                                  cache_size=1,
                                  scheduling=scheduling) as engine:
                results = engine.handle_batch(
                    _mixed_items(),
                    on_result=lambda i, r: done.setdefault(
                        i, time.perf_counter() - t0),
                )
            tiny = [done[i] for i in range(1, TINY_PREDICTS + 1)]
            out[scheduling] = (results, _p95(tiny), done[0])
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    naive, weighted = out["naive"], out["weighted"]

    # Correctness first: both modes return identical answers.
    assert weighted[0][0]["sequence"] == naive[0][0]["sequence"]
    assert weighted[0][0]["cost"] == naive[0][0]["cost"]
    for result in weighted[0][1:]:
        assert "error" not in result and result["cost"] == "3*n + 8"

    improvement = naive[1] / weighted[1]
    emit_table(
        "E-SERVICE-MIX",
        f"1 heavy restructure + {TINY_PREDICTS} tiny predicts, 2 workers",
        ["scheduling", "tiny p95", "restructure", "tiny p95 speedup"],
        [
            ("naive", f"{naive[1] * 1e3:.1f}ms", f"{naive[2] * 1e3:.0f}ms",
             "1.0x"),
            ("weighted", f"{weighted[1] * 1e3:.1f}ms",
             f"{weighted[2] * 1e3:.0f}ms", f"{improvement:.1f}x"),
        ],
        notes=f"tiny-request p95 improved {improvement:.1f}x on "
              f"{os.cpu_count()} core(s); acceptance >= 2x on >= 4 cores.",
    )
    if (os.cpu_count() or 1) >= 4:
        assert improvement >= 2.0
