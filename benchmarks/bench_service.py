"""E-SERVICE -- serving-layer throughput: cache and worker scaling.

The service subsystem amortizes work two ways: a content-addressed
result cache answers repeated requests without recomputation, and a
worker pool runs independent requests concurrently.  This benchmark
measures both on the Figure 7 kernel suite:

* cold single requests vs a warm-cache batch (the acceptance bar is
  warm batch throughput >= 5x cold single-request throughput);
* 1-worker vs N-worker batch execution of uncached requests.
"""

import time

from repro.bench.kernels import KERNELS
from repro.service import PredictRequest, PredictionEngine

from _report import emit_table

REPEAT_WARM = 20


def _requests():
    # Distinct evaluation points make every (program, point) pair a
    # distinct cache entry, like distinct clients would.
    return [
        PredictRequest(source=k.source, bindings={"n": 256})
        for k in KERNELS.values()
    ]


def test_service_cold_vs_warm_cache(benchmark):
    def run():
        requests = _requests()
        engine = PredictionEngine(workers=0, cache_size=256)

        # Cold: every request computed one at a time, empty cache.
        t0 = time.perf_counter()
        for request in requests:
            engine.predict(request)
        cold = time.perf_counter() - t0
        cold_rps = len(requests) / cold

        # Warm: the same batch over and over, all cache hits.
        t0 = time.perf_counter()
        for _ in range(REPEAT_WARM):
            engine.batch(requests)
        warm = time.perf_counter() - t0
        warm_rps = REPEAT_WARM * len(requests) / warm

        engine.close()
        return cold_rps, warm_rps, engine.cache.stats

    cold_rps, warm_rps, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = warm_rps / cold_rps
    emit_table(
        "E-SERVICE",
        f"Figure 7 suite over the service layer ({len(KERNELS)} kernels)",
        ["mode", "requests/s", "speedup", "cache hits", "cache misses"],
        [
            ("cold, single requests", f"{cold_rps:.0f}", "1.0x",
             "-", stats.misses),
            (f"warm batch x{REPEAT_WARM}", f"{warm_rps:.0f}",
             f"{speedup:.1f}x", stats.hits, "-"),
        ],
        notes=f"warm/cold throughput = {speedup:.1f}x (acceptance: >= 5x)",
    )
    assert speedup >= 5.0


def test_service_worker_scaling(benchmark):
    def run():
        requests = _requests()
        timings = {}
        for workers in (1, 4):
            engine = PredictionEngine(workers=workers, cache_size=256,
                                      executor="auto")
            t0 = time.perf_counter()
            engine.batch(requests)
            timings[workers] = time.perf_counter() - t0
            engine.close()
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"{workers} worker(s)", f"{seconds * 1e3:.1f}ms",
         f"{len(KERNELS) / seconds:.0f}")
        for workers, seconds in sorted(timings.items())
    ]
    emit_table(
        "E-SERVICE-WORKERS",
        "Uncached batch of the Figure 7 suite, 1 vs 4 workers",
        ["configuration", "batch time", "requests/s"],
        rows,
        notes="process-pool startup is amortized over a server's lifetime; "
              "small batches may not beat inline execution.",
    )
    # Both configurations must complete the whole batch correctly; the
    # scaling itself is informational (pool startup dominates tiny work).
    assert all(seconds > 0 for seconds in timings.values())
