"""E-ROUTER -- aggregate warm-cache throughput: 3 shards vs 1 backend.

The router's economic claim is *aggregate cache capacity with shard
affinity*: a working set that overflows one backend's LRU result cache
thrashes it (a cyclic scan over an LRU is the textbook worst case --
every request repeats the full parse/translate/place pipeline), while
the consistent-hash split hands each of three shards a stable ~1/3
slice that fits its cache, so steady-state traffic is all hits.

Topology is real: each backend is a separate ``python -m repro serve``
process and the router is a separate ``python -m repro route`` process,
all spawned here and torn down afterwards.  Traffic is JSON-array
batches through :class:`ReproClient`, the same wire path as production.
On multi-core hosts CPU parallelism across the backend processes adds
on top of the capacity win; the asserted floor does not depend on it.

Writes ``E-ROUTER.txt`` (table) and ``BENCH_ROUTER.json`` (the
machine-readable gate the ``router-smoke`` CI job checks): the full run
asserts the ISSUE acceptance floor, >= 2x items/s for 3 shards over a
single backend on the same working set.
"""

import json
import re
import subprocess
import sys
import time

from repro.service import ReproClient
from repro.service.cluster import LocalBackend, spawn_backend, spawn_backends

from _report import RESULTS_DIR, emit_table

WORKING_SET = 96      # distinct programs in flight
CACHE_SIZE = 64       # per-backend result cache: < WORKING_SET, > 1/3 of it
BATCH = 32
STATEMENTS = 12       # loop-body size: makes predict >> parse-only hit

_ROUTER_LISTENING = re.compile(r"listening on (http://[\d.]+:\d+)")


def _program(index: int) -> str:
    body = "\n".join(
        f"    y(i) = y(i) + alpha * x(i) + {index}.0 * {j}.0"
        for j in range(1, STATEMENTS + 1))
    return (f"program p{index}\n"
            f"  integer n, i\n"
            f"  real x(n), y(n), alpha\n"
            f"  do i = 1, n\n{body}\n  end do\nend\n")


def _spawn_router(backend_urls, startup_timeout=30.0) -> LocalBackend:
    command = [
        sys.executable, "-u", "-m", "repro", "route",
        "--host", "127.0.0.1", "--port", "0",
        "--backends", ",".join(backend_urls),
        "--probe-interval", "1.0",
    ]
    from repro.service.cluster import _repo_env, _wait_healthy

    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True, env=_repo_env(), start_new_session=True)
    deadline = time.monotonic() + startup_timeout
    url = None
    assert process.stdout is not None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        match = _ROUTER_LISTENING.search(line)
        if match:
            url = match.group(1)
            break
    if url is None:
        process.kill()
        process.wait()
        raise RuntimeError("router did not announce a listening port")
    _wait_healthy(url, deadline)
    return LocalBackend(process, url)


def _drive(url: str, sources, passes: int) -> float:
    """Wall seconds for ``passes`` cyclic sweeps in BATCH-sized arrays."""
    batches = [sources[i:i + BATCH] for i in range(0, len(sources), BATCH)]
    with ReproClient(url, timeout=120) as client:
        started = time.perf_counter()
        for _ in range(passes):
            for batch in batches:
                results = client.predict_batch(
                    [{"source": source} for source in batch])
                bad = [r for r in results if not hasattr(r, "cost")]
                if bad:
                    raise RuntimeError(f"client-visible errors: {bad[:3]}")
        return time.perf_counter() - started


def _measure_single(sources, passes: int) -> float:
    with spawn_backend(workers=0, cache_size=CACHE_SIZE) as backend:
        _drive(backend.url, sources, 1)          # reach steady state
        return _drive(backend.url, sources, passes)


def _measure_sharded(sources, passes: int) -> float:
    backends = spawn_backends(3, workers=0, cache_size=CACHE_SIZE)
    router = None
    try:
        router = _spawn_router([b.url for b in backends])
        _drive(router.url, sources, 1)           # warm every shard's slice
        return _drive(router.url, sources, passes)
    finally:
        if router is not None:
            router.terminate()
        for backend in backends:
            backend.terminate()


def _router_rows(passes: int):
    sources = [_program(index) for index in range(WORKING_SET)]
    items = WORKING_SET * passes
    single_s = _measure_single(sources, passes)
    sharded_s = _measure_sharded(sources, passes)
    speedup = (items / sharded_s) / (items / single_s)
    rows = [
        ("1 backend (thrashing)", f"{single_s:.2f}s",
         f"{items / single_s:,.0f}", "1.00x"),
        ("router + 3 shards", f"{sharded_s:.2f}s",
         f"{items / sharded_s:,.0f}", f"{speedup:.2f}x"),
    ]
    report = {
        "working_set": WORKING_SET,
        "cache_size_per_backend": CACHE_SIZE,
        "batch": BATCH,
        "passes": passes,
        "items": items,
        "single_seconds": single_s,
        "single_items_per_s": items / single_s,
        "sharded_seconds": sharded_s,
        "sharded_items_per_s": items / sharded_s,
        "speedup": speedup,
    }
    notes = (f"working set {WORKING_SET} programs, per-backend cache "
             f"{CACHE_SIZE}: one backend thrashes (cyclic LRU scan), "
             f"three shards each hold their ~1/3 slice warm")
    return rows, notes, report


def _emit(rows, notes, report, quick):
    report["quick"] = quick
    emit_table(
        "E-ROUTER",
        "Sharded serving throughput: 3 shards vs 1 backend, same traffic",
        ["topology", "wall", "items/s", "speedup"],
        rows, notes=notes,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_ROUTER.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out


def main(argv=None):
    """Standalone entry for the CI router-smoke gate: no pytest needed."""
    import argparse

    parser = argparse.ArgumentParser(description="E-ROUTER gate")
    parser.add_argument("--quick", action="store_true",
                        help="fewer passes and a 1.2x floor (CI runners "
                             "share cores; the 2x claim is the full run)")
    args = parser.parse_args(argv)
    passes = 2 if args.quick else 5
    rows, notes, report = _router_rows(passes)
    out = _emit(rows, notes, report, quick=args.quick)
    floor = 1.2 if args.quick else 2.0
    if report["speedup"] < floor:
        print(f"FAIL: sharded speedup {report['speedup']:.2f}x below "
              f"the {floor:.1f}x floor")
        return 1
    print(f"router ok: {report['speedup']:.2f}x aggregate throughput, "
          f"{report['sharded_items_per_s']:,.0f} items/s over 3 shards "
          f"({out})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
