"""E-BATCHKERNEL -- the batch placement arena vs per-stream columnar.

A beam round hands the cost model dozens of sibling candidates whose
straight-line streams share long prefixes (a transformation touches one
loop; everything before it re-translates identically).  The per-stream
fused kernel re-drops every shared prefix from scratch; the arena
(:mod:`repro.cost.arena`) sorts the batch into prefix-adjacency and
forks each stream from a bin-state snapshot of its neighbour's shared
prefix.  This bench answers two questions:

* is it *correct*: a differential oracle pushes randomized sibling
  batches on every preset machine through the arena and the legacy
  ``BinSet.place`` loop and compares cycles, per-op times/completions,
  and block summaries -- under both the numpy prefix lowering and the
  pure-``array`` fallback;
* is it *fast*: a 64-candidate beam-round batch (~200-instruction
  streams, ~150 shared prefix), timed as arena ``place_batch`` vs one
  per-stream fused ``_place_uncached`` pass.  Targets: >= 2x with
  numpy, >= 1.3x on the pure-python fallback.

Compilation and digests are precomputed for both sides and the memo is
disabled, so the timed region is placement work only -- the speedup is
prefix sharing, not cache hits.  Besides ``E-BATCHKERNEL.txt`` this
writes ``benchmarks/results/BENCH_BATCHKERNEL.json``, which the
``batch-kernel-perf`` CI job gates on.
"""

import json
import random
import time

from repro.cost import (
    HAVE_NUMPY,
    get_arena,
    reset_arenas,
    reset_columnar_cache,
    reset_placement_cache,
    set_arena_numpy,
)
from repro.cost.columnar import compile_stream
from repro.cost.placement import _place_uncached
from repro.machine.alpha import alpha_machine
from repro.machine.power import power_machine
from repro.machine.scalar import scalar_machine
from repro.machine.wide import wide_machine
from repro.translate.stream import Instr

from _report import RESULTS_DIR, emit_table

FOCUS_SPAN = 64
MACHINES = (power_machine, wide_machine, scalar_machine, alpha_machine)

#: The headline configuration: one beam round's worth of siblings.
CANDIDATES = 64
STREAM_SIZE = 200
PREFIX_LEN = 150

#: Both prefix-machinery lowerings; numpy only when installed.
MODES = ("fallback",) + (("numpy",) if HAVE_NUMPY else ())


def _placeable_ops(machine):
    return [
        name for name in machine.table.names()
        if all(machine.has_unit(c.unit)
               for c in machine.table[name].costs if c.noncoverable > 0)
    ]


def _rand_stream(rng, names, n, prefix=None):
    instrs = list(prefix or [])
    for i in range(len(instrs), n):
        instrs.append(Instr(
            i, rng.choice(names),
            deps=tuple(sorted(rng.sample(range(i),
                                         k=min(i, rng.randint(0, 3))))),
            one_time=rng.random() < 0.1))
    return instrs


def _sibling_batch(rng, names, candidates, size, prefix_len):
    """One beam round: distinct candidates forking off a shared prefix."""
    prefix = _rand_stream(rng, names, prefix_len)
    return [_rand_stream(rng, names, size, prefix=prefix)
            for _ in range(candidates)]


def _use_mode(mode):
    return set_arena_numpy(mode == "numpy")


def _differential(trials, seed=20260808):
    """Arena batches vs the legacy oracle, both lowerings; mismatches raise."""
    rng = random.Random(seed)
    machines = [factory() for factory in MACHINES]
    per_machine = max(1, trials // (len(machines) * len(MODES)))
    checked = 0
    for mode in MODES:
        previous = _use_mode(mode)
        try:
            for machine in machines:
                names = _placeable_ops(machine)
                for _ in range(per_machine):
                    reset_arenas()
                    batch = _sibling_batch(
                        rng, names,
                        candidates=rng.randint(2, 8),
                        size=rng.randint(8, 48),
                        prefix_len=rng.randint(0, 32))
                    # A couple of exact duplicates exercise the dedup lane.
                    batch.extend(rng.sample(batch, k=min(2, len(batch))))
                    focus = rng.choice([2, 8, 64])
                    arena = get_arena(machine, focus)
                    results = arena.place_batch(batch, use_memo=False)
                    for instrs, placed in zip(batch, results):
                        legacy = _place_uncached(
                            machine, instrs, focus, None, "legacy")
                        assert placed.cycles == legacy.cycles, machine.name
                        assert [(o.time, o.completion) for o in placed.ops] \
                            == [(o.time, o.completion) for o in legacy.ops], \
                            machine.name
                        assert placed.block == legacy.block, machine.name
                        checked += 1
        finally:
            set_arena_numpy(previous)
    return checked


def _throughput(candidates, size, prefix_len, reps, seed=7, rounds=3):
    """Per-mode ``(baseline s, arena s)`` for ``reps`` passes over a batch.

    Streams are compiled (and digested) up front so both sides time
    pure placement.  The arena runs with ``use_memo=False`` and fresh
    pools per round start -- its advantage must come from within-batch
    prefix sharing, not from remembering a previous rep.  Rounds
    interleave baseline and arena so scheduler noise hits both; the
    min is the honest figure.
    """
    machine = power_machine()
    rng = random.Random(seed)
    batch = _sibling_batch(rng, _placeable_ops(machine), candidates, size,
                           prefix_len)
    reset_placement_cache()
    reset_columnar_cache()
    compiled = [compile_stream(machine, instrs) for instrs in batch]

    def run_baseline():
        for stream in compiled:
            _place_uncached(machine, stream.instrs, FOCUS_SPAN, None,
                            "fused", stream, stream.digest)

    def run_arena():
        get_arena(machine, FOCUS_SPAN).place_batch(compiled, use_memo=False)

    out = {}
    for mode in MODES:
        previous = _use_mode(mode)
        try:
            reset_arenas()
            run_baseline()                      # warm compiled-op interning
            run_arena()                         # warm the token cache
            wall = {"baseline": None, "arena": None}
            for _ in range(rounds):
                for label, fn in (("baseline", run_baseline),
                                  ("arena", run_arena)):
                    t0 = time.perf_counter()
                    for _ in range(reps):
                        fn()
                    elapsed = time.perf_counter() - t0
                    if wall[label] is None or elapsed < wall[label]:
                        wall[label] = elapsed
            out[mode] = (wall["baseline"], wall["arena"])
        finally:
            set_arena_numpy(previous)
    return out


def _batch_rows(trials, reps):
    checked = _differential(trials)
    walls = _throughput(CANDIDATES, STREAM_SIZE, PREFIX_LEN, reps)
    ops = CANDIDATES * STREAM_SIZE * reps
    rows = []
    report = {"differential_trials": checked,
              "candidates": CANDIDATES, "stream_size": STREAM_SIZE,
              "prefix_len": PREFIX_LEN, "modes": {}}
    for mode in MODES:
        base_s, arena_s = walls[mode]
        speedup = base_s / arena_s
        rows.append((
            mode, f"{base_s:.3f}s", f"{arena_s:.3f}s",
            f"{ops / base_s:,.0f}", f"{ops / arena_s:,.0f}",
            f"{speedup:.2f}x",
        ))
        report["modes"][mode] = {
            "baseline_seconds": base_s,
            "arena_seconds": arena_s,
            "baseline_ops_per_s": ops / base_s,
            "arena_ops_per_s": ops / arena_s,
            "speedup": speedup,
        }
    report["fallback_speedup"] = report["modes"]["fallback"]["speedup"]
    report["numpy_speedup"] = (
        report["modes"]["numpy"]["speedup"] if HAVE_NUMPY else None)
    notes = (f"{CANDIDATES}-candidate beam-round batch, "
             f"{STREAM_SIZE}-instruction streams, {PREFIX_LEN} shared "
             f"prefix; baseline = per-stream fused kernel; differential "
             f"oracle: {checked} placements across {len(MACHINES)} machines "
             f"and {len(MODES)} lowerings; focus span {FOCUS_SPAN}")
    return rows, notes, report


def _emit(rows, notes, report, quick):
    report["quick"] = quick
    emit_table(
        "E-BATCHKERNEL",
        "Batch placement arena vs per-stream columnar kernel",
        ["mode", "per-stream", "arena", "per-stream ops/s", "arena ops/s",
         "speedup"],
        rows, notes=notes,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "BENCH_BATCHKERNEL.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    return out


def _check_floors(report):
    failures = []
    if report["fallback_speedup"] < 1.3:
        failures.append(f"fallback {report['fallback_speedup']:.2f}x < 1.3x")
    if HAVE_NUMPY and report["numpy_speedup"] < 2.0:
        failures.append(f"numpy {report['numpy_speedup']:.2f}x < 2.0x")
    return failures


def test_arena_matches_and_beats_per_stream(benchmark):
    rows, notes, report = benchmark.pedantic(
        lambda: _batch_rows(trials=240, reps=8),
        rounds=1, iterations=1,
    )
    _emit(rows, notes, report, quick=False)
    assert report["differential_trials"] >= 200
    assert not _check_floors(report), report


def main(argv=None):
    """Standalone entry for the CI batch-kernel-perf gate."""
    import argparse

    parser = argparse.ArgumentParser(description="E-BATCHKERNEL gate")
    parser.add_argument("--quick", action="store_true",
                        help="smaller differential and fewer reps; the "
                             "speedup floors stay the same")
    args = parser.parse_args(argv)
    if args.quick:
        rows, notes, report = _batch_rows(trials=80, reps=3)
    else:
        rows, notes, report = _batch_rows(trials=240, reps=8)
    out = _emit(rows, notes, report, quick=args.quick)
    failures = _check_floors(report)
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    numpy_part = (f"{report['numpy_speedup']:.2f}x numpy / "
                  if HAVE_NUMPY else "")
    print(f"batch kernel ok: {report['differential_trials']} differential "
          f"placements, {numpy_part}"
          f"{report['fallback_speedup']:.2f}x fallback on a "
          f"{CANDIDATES}x{STREAM_SIZE} batch ({out})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
