"""E-SYM -- delayed symbolic decisions vs premature guessing (section 3).

The paper's central argument: guessing unknowns makes comparison easy
("comparing two numbers") but unreliable; keeping them symbolic is both
precise and often decisive without any guess.

Setup: the paper's own loop family

    do i = 1, n
      if (i .le. k) then  <cheap branch>  else  <expensive branch>

transformed vs not (the candidate transformation makes the cheap branch
cheaper but adds per-loop overhead).  The oracle evaluates both cost
expressions at each true (n, k); the guessing compiler decides once
from fixed guesses; the symbolic compiler either proves a winner from
bounds or emits the exact crossover condition and always decides right.
"""

from fractions import Fraction

from repro.baselines import GuessPolicy, guess_all
from repro.compare import Verdict, compare
from repro.symbolic import Interval, PerfExpr, UnknownKind

from _report import emit_table


def _costs():
    """Two versions with k- and n-dependent costs (cycles)."""
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 200))
    k = PerfExpr.unknown("k", UnknownKind.SPLIT_POINT, Interval(0, 200))
    # Original: cheap branch 4 cycles, expensive 12 -> 4k + 12(n-k).
    original = 4 * k + 12 * (n - k)
    # Transformed: specialized loops, cheap branch 3, expensive 10,
    # plus 150 cycles of one-time splitting overhead.
    transformed = 3 * k + 10 * (n - k) + 150
    return original, transformed


def _oracle(original, transformed, n, k):
    env = {"n": n, "k": k}
    return "transformed" if transformed.evaluate(env) < original.evaluate(env) \
        else "original"


def test_symbolic_vs_guess_decision_grid(benchmark):
    def run():
        original, transformed = _costs()
        guess_choice = (
            "transformed"
            if guess_all(transformed, GuessPolicy()) < guess_all(original)
            else "original"
        )
        grid = [(n, k) for n in (10, 40, 80, 160) for k in (0, n // 4, n // 2, n)]
        guess_right = 0
        symbolic_right = 0
        rows = []
        result = compare(transformed, original)
        for n, k in grid:
            truth = _oracle(original, transformed, n, k)
            # The symbolic compiler evaluates its exact condition at the
            # (now known) point -- or had already proven a side.
            if result.verdict is Verdict.FIRST_ALWAYS:
                symbolic_choice = "transformed"
            elif result.verdict is Verdict.SECOND_ALWAYS:
                symbolic_choice = "original"
            else:
                value = result.difference.evaluate({"n": n, "k": k})
                symbolic_choice = "transformed" if value < 0 else "original"
            guess_right += guess_choice == truth
            symbolic_right += symbolic_choice == truth
            rows.append((n, k, truth, guess_choice, symbolic_choice))
        return rows, guess_right, symbolic_right, len(grid), result

    rows, guess_right, symbolic_right, total, result = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    emit_table(
        "E-SYM",
        "Transformation choice across the (n, k) space: guess vs symbolic",
        ["n", "k", "oracle", "guessed choice", "symbolic choice"],
        rows,
        notes=f"guess correct {guess_right}/{total}; "
        f"symbolic correct {symbolic_right}/{total}; "
        f"symbolic verdict: {result.verdict.value}",
    )
    assert symbolic_right == total       # symbolic never wrong
    assert guess_right < total           # the guess is wrong somewhere


def test_symbolic_proves_some_cases_without_any_guess(benchmark):
    """Bounds alone settle comparisons the guesser also gets, for free."""

    def run():
        n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 10 ** 6))
        return compare(2 * n, 3 * n + 10).verdict

    assert benchmark.pedantic(run, rounds=1, iterations=1) is Verdict.FIRST_ALWAYS


def test_index_split_vs_probability_guess(benchmark):
    """Aggregated loop costs keep k: the paper's 3.3.2 example end-to-end."""
    import repro

    def run():
        prog = repro.parse_program(
            "program t\n  integer n, i, k\n  real a(n), b(n)\n"
            "  do i = 1, n\n"
            "    if (i .le. k) then\n      a(i) = a(i) + 1.0\n"
            "    else\n      b(i) = b(i) / a(i)\n    end if\n  end do\nend\n"
        )
        return repro.predict(prog)

    cost = benchmark.pedantic(run, rounds=1, iterations=1)
    assert "k" in cost.poly.variables()
    # A 50% guess would be off by the full gap at the extremes:
    mid = cost.evaluate({"n": 100, "k": 50})
    all_cheap = cost.evaluate({"n": 100, "k": 100})
    all_dear = cost.evaluate({"n": 100, "k": 0})
    guessed_error = max(
        abs(mid - all_cheap), abs(mid - all_dear)
    ) / mid
    assert guessed_error > Fraction(1, 10)
