"""E-WHOLE -- end-to-end loop-nest prediction accuracy.

Beyond Figure 7's per-basic-block comparison: predict whole kernels
with ``repro.predict`` and compare the per-iteration steady-state
against the reference back-end executing dozens of replicated
iterations, on two machines.  This is the number a restructurer
actually consumes.  Also regenerates the headline restructuring result:
the search turns the naive matmul into the paper's 4x4 kernel.
"""

import repro
from repro.aggregate import CostAggregator
from repro.backend import simulate_loop
from repro.bench import kernel, kernel_names, kernel_stream
from repro.ir import SymbolTable
from repro.machine import get_machine

from _report import emit_table


def _steady_reference(name: str, machine, iters: int = 32) -> float:
    k = kernel(name)
    info = kernel_stream(k, machine)
    stream = info.stream
    agg = CostAggregator(machine, SymbolTable.from_program(k.program))
    overhead = agg.translator.loop_overhead()
    base = len(stream)
    for instr in overhead.stream:
        stream.append(instr.atomic, tuple(d + base for d in instr.deps))
    return simulate_loop(
        machine, stream, iters, carried_latency=info.carried_latency
    ).cycles / iters


def test_whole_program_accuracy_table(benchmark):
    def run():
        rows = []
        for machine_name in ("power", "alpha"):
            machine = get_machine(machine_name)
            for name in kernel_names():
                k = kernel(name)
                cost = repro.predict(k.program, machine=machine)
                degree = max(
                    cost.poly.degree(v) for v in cost.poly.variables()
                )
                predicted = float(
                    cost.poly.coeffs_by_var("n")[degree].constant_value()
                )
                # Convert the leading coefficient to cycles per *inner
                # iteration*: matmul's block covers 16 (i,j) pairs, and
                # rb's red sweep steps by 2.
                if name == "matmul":
                    predicted *= 16
                elif name == "rb":
                    predicted *= 2
                reference = _steady_reference(name, machine)
                rows.append((
                    machine_name, name, f"{predicted:.1f}",
                    f"{reference:.1f}",
                    f"{100 * (predicted - reference) / reference:+.0f}%",
                ))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-WHOLE",
        "Whole-kernel steady-state cycles/iteration: predict() vs reference",
        ["machine", "kernel", "predicted", "reference", "error"],
        rows,
        notes="leading-coefficient of the symbolic cost vs 32 simulated "
        "iterations",
    )
    errors = sorted(abs(float(r[4].rstrip("%"))) for r in rows)
    assert errors[len(errors) // 2] <= 15.0   # median
    assert errors[-1] <= 45.0                 # worst case


def test_search_reinvents_paper_matmul(benchmark):
    """A* with unroll-and-jam rediscovers the 16-FMA kernel."""
    from repro.transform import IncrementalPredictor, UnrollAndJam, astar_search

    def run():
        prog = repro.parse_program(
            "program mm\n  integer n, i, j, k\n"
            "  real a(n,n), b(n,n), c(n,n)\n"
            "  do i = 1, n\n    do j = 1, n\n      do k = 1, n\n"
            "        c(i,j) = c(i,j) + a(i,k) * b(k,j)\n"
            "      end do\n    end do\n  end do\nend\n"
        )
        machine = get_machine("power")
        predictor = IncrementalPredictor(
            CostAggregator(machine, SymbolTable.from_program(prog))
        )
        result = astar_search(
            prog, [UnrollAndJam(factors=(2, 4))], predictor,
            workload={"n": 256}, max_depth=2, max_nodes=80,
        )
        base = predictor.predict(prog)
        paper_kernel = repro.predict(kernel("matmul").program)
        return result, base, paper_kernel

    result, base, paper_kernel = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_table(
        "E-WHOLE-b",
        "A* rediscovers the paper's Matmul kernel from the naive nest",
        ["artifact", "value"],
        [
            ("naive cost", str(base)),
            ("searched cost", str(result.cost)),
            ("paper 4x4 kernel cost", str(paper_kernel)),
            ("sequence", result.sequence),
            ("nodes expanded", result.nodes_expanded),
        ],
    )
    # The search reaches (at least) the paper's hand-unrolled kernel:
    # same asymptotic FMA-bound n^3 coefficient, and no worse overall.
    # (In fact the model rates its i-x4 / j-x2 choice slightly cheaper:
    # same FPU saturation, fewer live accumulators.)
    lead_found = result.cost.poly.coeffs_by_var("n")[3]
    lead_paper = paper_kernel.poly.coeffs_by_var("n")[3]
    assert lead_found == lead_paper
    assert result.cost.evaluate({"n": 256}) <= paper_kernel.evaluate({"n": 256})
    assert any(s.transformation == "unroll-and-jam" for s in result.steps)
