"""Structured JSON logging and request-id propagation."""

import io
import json
import logging

from repro.obs import (
    JsonFormatter,
    configure_json_logging,
    get_request_id,
    new_request_id,
    set_request_id,
)


def _logger_with_buffer(name):
    stream = io.StringIO()
    logger = logging.getLogger(name)
    logger.setLevel(logging.INFO)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(JsonFormatter())
    logger.addHandler(handler)
    logger.propagate = False
    return logger, stream, handler


def test_one_json_object_per_line():
    logger, stream, handler = _logger_with_buffer("test.obs.json")
    try:
        logger.info("hello %s", "world")
        record = json.loads(stream.getvalue())
        assert record["message"] == "hello world"
        assert record["level"] == "info"
        assert record["logger"] == "test.obs.json"
        assert "ts" in record
    finally:
        logger.removeHandler(handler)


def test_extra_fields_merge_into_record():
    logger, stream, handler = _logger_with_buffer("test.obs.fields")
    try:
        logger.info("slow request", extra={"fields": {
            "endpoint": "/predict", "seconds": 2.5}})
        record = json.loads(stream.getvalue())
        assert record["endpoint"] == "/predict"
        assert record["seconds"] == 2.5
    finally:
        logger.removeHandler(handler)


def test_request_id_rides_along():
    logger, stream, handler = _logger_with_buffer("test.obs.reqid")
    token = set_request_id("abc123def456")
    try:
        assert get_request_id() == "abc123def456"
        logger.info("traced line")
        record = json.loads(stream.getvalue())
        assert record["request_id"] == "abc123def456"
    finally:
        token.var.reset(token)
        logger.removeHandler(handler)
    assert get_request_id() is None


def test_new_request_ids_are_short_and_distinct():
    first, second = new_request_id(), new_request_id()
    assert first != second
    assert len(first) == 12
    int(first, 16)  # hex


def test_exception_rendering():
    logger, stream, handler = _logger_with_buffer("test.obs.exc")
    try:
        try:
            raise ValueError("kaput")
        except ValueError:
            logger.exception("operation failed")
        record = json.loads(stream.getvalue())
        assert record["level"] == "error"
        assert "kaput" in record["exception"]
    finally:
        logger.removeHandler(handler)


def test_configure_json_logging_idempotent():
    stream = io.StringIO()
    logger = configure_json_logging("test.obs.configure", stream=stream)
    again = configure_json_logging("test.obs.configure", stream=stream)
    assert logger is again
    json_handlers = [h for h in logger.handlers
                     if isinstance(h.formatter, JsonFormatter)]
    assert len(json_handlers) == 1
    logger.handlers.clear()
