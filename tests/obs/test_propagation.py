"""W3C traceparent carry, trace buffers, and exemplar retention."""

from __future__ import annotations

import pytest

from repro.obs import (
    ExemplarRing,
    TraceBuffer,
    TraceContext,
    Tracer,
    current_context,
    format_traceparent,
    parse_traceparent,
    trace_span,
)


class TestTraceparent:
    def test_round_trip(self):
        context = TraceContext("ab" * 16, "cd" * 8)
        header = format_traceparent(context)
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
        parsed = parse_traceparent(header)
        assert parsed.trace_id == context.trace_id
        assert parsed.span_id == context.span_id
        assert parsed.sampled is True

    def test_unsampled_flag_round_trips(self):
        context = TraceContext("ab" * 16, "cd" * 8, sampled=False)
        parsed = parse_traceparent(format_traceparent(context))
        assert parsed.sampled is False

    def test_no_span_id_means_no_header(self):
        assert format_traceparent(TraceContext("ab" * 16, None)) is None

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-short-cdcdcdcdcdcdcdcd-01",
        f"00-{'AB' * 16}-{'cd' * 8}-01",          # uppercase hex
        f"ff-{'ab' * 16}-{'cd' * 8}-01",          # reserved version
        f"00-{'0' * 32}-{'cd' * 8}-01",           # all-zero trace id
        f"00-{'ab' * 16}-{'0' * 16}-01",          # all-zero span id
        f"00-{'ab' * 16}-{'cd' * 8}-01-extra",
    ])
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_parse_tolerates_surrounding_whitespace(self):
        header = f"  00-{'ab' * 16}-{'cd' * 8}-01  "
        assert parse_traceparent(header) is not None


class TestCurrentContext:
    def test_none_without_tracer(self):
        assert current_context() is None

    def test_reflects_innermost_open_span(self):
        tracer = Tracer()
        with tracer.activate():
            with trace_span("outer"):
                with trace_span("inner") as inner:
                    context = current_context()
                    assert context.trace_id == tracer.trace_id
                    assert context.span_id == inner.span_id

    def test_falls_back_to_remote_parent(self):
        tracer = Tracer(trace_id="ab" * 16, remote_parent_id="cd" * 8)
        with tracer.activate():
            context = current_context()
        assert context == TraceContext("ab" * 16, "cd" * 8)

    def test_seeded_root_span_parents_under_remote(self):
        tracer = Tracer(trace_id="ab" * 16, remote_parent_id="cd" * 8)
        with tracer.activate():
            with trace_span("root"):
                pass
        [span] = tracer.export()
        assert span["trace_id"] == "ab" * 16
        assert span["parent_id"] == "cd" * 8


class TestTraceBuffer:
    def test_put_get(self):
        buffer = TraceBuffer(capacity=4)
        buffer.put("r1", [{"name": "a"}])
        assert buffer.get("r1") == [{"name": "a"}]
        assert buffer.get("missing") is None

    def test_repeat_put_extends_the_same_trace(self):
        buffer = TraceBuffer(capacity=4)
        buffer.put("r1", [{"name": "submit"}])
        buffer.put("r1", [{"name": "job.run"}])
        assert [s["name"] for s in buffer.get("r1")] == ["submit", "job.run"]
        assert len(buffer) == 1

    def test_eviction_is_oldest_first(self):
        buffer = TraceBuffer(capacity=2)
        for rid in ("r1", "r2", "r3"):
            buffer.put(rid, [{"name": rid}])
        assert buffer.get("r1") is None
        assert buffer.request_ids() == ["r2", "r3"]

    def test_empty_ids_and_spans_are_ignored(self):
        buffer = TraceBuffer(capacity=2)
        buffer.put("", [{"name": "a"}])
        buffer.put("r1", [])
        assert len(buffer) == 0


class TestExemplarRing:
    def test_failed_requests_always_admitted(self):
        ring = ExemplarRing(capacity=2)
        for index in range(4):
            ring.offer(f"f{index}", [{"name": "x"}], 0.001, failed=True)
        assert ring.get("f0") is None          # oldest evicted
        assert ring.get("f3") is not None

    def test_slow_compartment_keeps_the_slowest(self):
        ring = ExemplarRing(capacity=2)
        ring.offer("fast", [{"name": "x"}], 0.01)
        ring.offer("slow", [{"name": "x"}], 1.0)
        ring.offer("slower", [{"name": "x"}], 2.0)   # evicts "fast"
        ring.offer("fastest", [{"name": "x"}], 0.001)  # not admitted
        assert ring.get("fast") is None
        assert ring.get("fastest") is None
        assert ring.get("slow") is not None
        assert ring.get("slower") is not None

    def test_snapshot_sorted_slowest_first(self):
        ring = ExemplarRing(capacity=4)
        ring.offer("a", [{"name": "x"}], 0.5)
        ring.offer("b", [{"name": "x"}], 2.0)
        ring.offer("c", [{"name": "x"}], 0.1, failed=True)
        summaries = ring.snapshot()
        assert [s["request_id"] for s in summaries] == ["b", "a", "c"]
        assert summaries[2]["failed"] is True

    def test_duplicate_request_id_keeps_first_trace(self):
        ring = ExemplarRing(capacity=4)
        ring.offer("r", [{"name": "first"}], 0.5)
        ring.offer("r", [{"name": "second"}], 3.0)
        assert [s["name"] for s in ring.get("r")] == ["first"]
