"""The span model: nesting, no-op mode, ingestion, and exporters."""

import contextvars
import json
import threading

from repro.obs import (
    NOOP_SPAN,
    PIPELINE_PHASES,
    Tracer,
    chrome_trace,
    current_span,
    current_tracer,
    render_tree,
    trace_span,
    write_chrome_trace,
)
from repro.service.metrics import MetricsRegistry


def _by_name(spans, name):
    return [s for s in spans if s["name"] == name]


# ----------------------------------------------------------------------
# basic lifecycle


def test_spans_nest_under_the_current_span():
    tracer = Tracer()
    with tracer.activate():
        with trace_span("outer") as outer:
            with trace_span("inner"):
                pass
        with trace_span("sibling"):
            pass
    spans = tracer.export()
    assert [s["name"] for s in spans] == ["outer", "inner", "sibling"]
    inner = _by_name(spans, "inner")[0]
    assert inner["parent_id"] == outer.span_id
    assert _by_name(spans, "outer")[0]["parent_id"] is None
    assert _by_name(spans, "sibling")[0]["parent_id"] is None


def test_span_records_duration_and_attrs():
    tracer = Tracer()
    with tracer.activate():
        with trace_span("work", machine="power") as span:
            assert span.recording
            span.set(ops=7)
    (record,) = tracer.export()
    assert record["duration"] >= 0.0
    assert record["attrs"] == {"machine": "power", "ops": 7}


def test_exception_marks_span_and_propagates():
    tracer = Tracer()
    try:
        with tracer.activate():
            with trace_span("boom"):
                raise RuntimeError("no")
    except RuntimeError:
        pass
    (record,) = tracer.export()
    assert record["attrs"]["error"] == "RuntimeError"


def test_current_span_restored_after_exit():
    tracer = Tracer()
    with tracer.activate():
        with trace_span("outer") as outer:
            with trace_span("inner"):
                assert current_span().name == "inner"
            assert current_span() is outer
        assert current_span() is None


def test_span_ids_unique_across_tracers():
    # Two tracers in one process (a request tracer plus a worker-local
    # collection tracer) must never hand out colliding span ids, or the
    # ingested tree grows cycles.
    ids = set()
    for _ in range(3):
        tracer = Tracer()
        with tracer.activate():
            with trace_span("a"), trace_span("b"):
                pass
        ids.update(s["span_id"] for s in tracer.export())
    assert len(ids) == 6


# ----------------------------------------------------------------------
# disabled mode


def test_no_active_tracer_returns_noop_span():
    assert current_tracer() is None
    span = trace_span("anything")
    assert span is NOOP_SPAN
    assert not span.recording
    with span as inner:
        inner.set(ignored=True).set_attribute("also", "ignored")


def test_noop_span_costs_no_storage():
    tracer = Tracer()
    with trace_span("outside-any-tracer"):
        pass
    assert len(tracer) == 0


# ----------------------------------------------------------------------
# threads


def test_explicit_parent_links_across_threads():
    tracer = Tracer()
    with tracer.activate():
        with trace_span("parent") as parent:
            def work():
                # A fresh thread has no ambient context; the parent (and
                # tracer) travel explicitly via tracer.span(parent=...).
                with tracer.span("child", parent=parent):
                    pass
            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
    spans = tracer.export()
    child = _by_name(spans, "child")[0]
    assert child["parent_id"] == parent.span_id


def test_copy_context_carries_tracer_into_thread():
    tracer = Tracer()
    with tracer.activate():
        with trace_span("parent") as parent:
            ctx = contextvars.copy_context()
            thread = threading.Thread(
                target=ctx.run, args=(lambda: trace_span("child").__enter__().__exit__(None, None, None),))
            thread.start()
            thread.join()
    child = _by_name(tracer.export(), "child")[0]
    assert child["parent_id"] == parent.span_id


# ----------------------------------------------------------------------
# bounding and ingestion


def test_max_spans_drops_instead_of_growing():
    tracer = Tracer(max_spans=2)
    with tracer.activate():
        for _ in range(5):
            with trace_span("s"):
                pass
    assert len(tracer) == 2
    assert tracer.dropped == 3


def test_ingest_adopts_worker_spans():
    worker = Tracer()
    with worker.activate():
        with trace_span("predict"):
            with trace_span("cost.place"):
                pass
    server = Tracer()
    server.ingest(worker.export())
    names = [s["name"] for s in server.export()]
    assert names == ["predict", "cost.place"]


def test_ingest_feeds_phase_metrics():
    registry = MetricsRegistry()
    worker = Tracer()
    with worker.activate():
        with trace_span("cost.place"):
            pass
        with trace_span("not-a-phase"):
            pass
    server = Tracer(metrics=registry)
    server.ingest(worker.export())
    histogram = registry.histogram("repro_phase_seconds")
    assert histogram.count(phase="cost.place") == 1
    assert histogram.count(phase="not-a-phase") == 0


def test_finished_phase_spans_observe_histogram():
    registry = MetricsRegistry()
    tracer = Tracer(metrics=registry)
    with tracer.activate():
        with trace_span("aggregate.loop"):
            pass
    assert registry.histogram("repro_phase_seconds").count(
        phase="aggregate.loop") == 1
    assert "aggregate.loop" in PIPELINE_PHASES


# ----------------------------------------------------------------------
# exporters


def test_chrome_trace_schema(tmp_path):
    tracer = Tracer()
    with tracer.activate():
        with trace_span("outer", machine="power"):
            with trace_span("inner"):
                pass
    path = tmp_path / "trace.json"
    write_chrome_trace(tracer.export(), str(path))
    document = json.loads(path.read_text())
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert len(metadata) == 1  # one process -> one process_name record
    assert [e["name"] for e in complete] == ["outer", "inner"]
    for event in complete:
        assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
        assert event["ts"] >= 0 and event["dur"] >= 0
    outer, inner = complete
    assert outer["args"]["machine"] == "power"
    assert inner["args"]["parent_id"] == outer["args"]["span_id"]


def test_chrome_trace_separates_worker_pids():
    spans = [
        {"name": "a", "span_id": "1-1", "parent_id": None,
         "start": 0.0, "duration": 0.1, "pid": 100, "tid": 1, "attrs": {}},
        {"name": "b", "span_id": "2-1", "parent_id": None,
         "start": 0.0, "duration": 0.1, "pid": 200, "tid": 1, "attrs": {}},
    ]
    events = chrome_trace(spans)["traceEvents"]
    metadata = [e for e in events if e["ph"] == "M"]
    assert {e["pid"] for e in metadata} == {100, 200}


def test_render_tree_indents_children():
    tracer = Tracer()
    with tracer.activate():
        with trace_span("root"):
            with trace_span("child", ops=3):
                pass
    tree = render_tree(tracer.export())
    lines = tree.splitlines()
    assert lines[0].startswith("root ")
    assert lines[1].startswith("  child ")
    assert "ops=3" in lines[1]


def test_render_tree_orphans_become_roots():
    spans = [
        {"name": "lost-child", "span_id": "x-2", "parent_id": "x-1",
         "start": 1.0, "duration": 0.1, "pid": 1, "tid": 1, "attrs": {}},
    ]
    tree = render_tree(spans)
    assert tree.startswith("lost-child ")


def test_render_tree_survives_a_parent_cycle():
    spans = [
        {"name": "a", "span_id": "1", "parent_id": "2",
         "start": 0.0, "duration": 0.1, "pid": 1, "tid": 1, "attrs": {}},
        {"name": "b", "span_id": "2", "parent_id": "1",
         "start": 0.1, "duration": 0.1, "pid": 1, "tid": 1, "attrs": {}},
    ]
    tree = render_tree(spans)  # must terminate
    assert "a" in tree and "b" in tree
