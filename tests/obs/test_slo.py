"""Sliding-window SLO tracking: quantiles, burn rates, config parsing."""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.slo import (
    DEFAULT_WINDOW_SECONDS,
    Objective,
    SloTracker,
    load_slo_config,
    parse_slo_config,
)
from repro.service.metrics import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_tracker(objectives=None, **kwargs):
    clock = FakeClock()
    tracker = SloTracker(objectives, clock=clock, **kwargs)
    return tracker, clock


class TestSnapshot:
    def test_quantiles_and_error_ratio(self):
        tracker, _ = make_tracker()
        for ms in range(1, 101):                      # 1ms .. 100ms
            tracker.observe("predict", ms / 1000.0)
        tracker.observe("predict", 0.5, error=True)
        entry = tracker.snapshot()["predict"]
        assert entry["count"] == 101
        assert entry["error_ratio"] == pytest.approx(1 / 101)
        assert entry["p50"] == pytest.approx(0.0505, abs=0.005)
        assert entry["p99"] <= 0.5

    def test_window_pruning(self):
        tracker, clock = make_tracker(window=10.0)
        tracker.observe("predict", 1.0)
        clock.advance(11.0)
        tracker.observe("predict", 0.001)
        entry = tracker.snapshot()["predict"]
        assert entry["count"] == 1
        assert entry["p99"] == pytest.approx(0.001)

    def test_max_samples_bounds_memory(self):
        tracker, _ = make_tracker(max_samples=8)
        for _ in range(100):
            tracker.observe("predict", 0.001)
        assert tracker.snapshot()["predict"]["count"] == 8

    def test_empty_endpoint_absent(self):
        tracker, _ = make_tracker()
        assert tracker.snapshot() == {}


class TestBurnRates:
    def test_latency_burn_is_observed_over_objective(self):
        tracker, _ = make_tracker(
            {"predict": Objective(p95=0.1, error_ratio=0.1)})
        for _ in range(10):
            tracker.observe("predict", 0.2)
        burn = tracker.snapshot()["predict"]["burn"]
        assert burn["p95"] == pytest.approx(2.0)
        assert burn["error_ratio"] == 0.0

    def test_wildcard_objective_is_the_fallback(self):
        tracker, _ = make_tracker({"*": Objective(p99=1.0)})
        tracker.observe("compare", 0.5)
        assert tracker.snapshot()["compare"]["burn"]["p99"] == \
            pytest.approx(0.5)
        assert tracker.objective_for("compare") is tracker.objectives["*"]

    def test_zero_error_objective_burns_infinitely(self):
        tracker, _ = make_tracker({"predict": Objective(error_ratio=0.0)})
        tracker.observe("predict", 0.001)
        assert tracker.snapshot()["predict"]["burn"]["error_ratio"] == 0.0
        tracker.observe("predict", 0.001, error=True)
        assert math.isinf(
            tracker.snapshot()["predict"]["burn"]["error_ratio"])

    def test_no_objective_means_no_burn(self):
        tracker, _ = make_tracker()
        tracker.observe("predict", 0.5)
        assert tracker.snapshot()["predict"]["burn"] == {}


class TestExport:
    def test_gauges_written_to_registry(self):
        tracker, _ = make_tracker(
            {"predict": Objective(p95=0.1, error_ratio=0.01)})
        for _ in range(4):
            tracker.observe("predict", 0.2)
        registry = MetricsRegistry()
        tracker.export(registry)
        text = registry.render()
        assert ('repro_slo_requests{endpoint="predict"} 4' in text)
        assert ('repro_slo_latency_burn_rate{endpoint="predict",'
                'quantile="p95"} 2' in text)
        assert ('repro_slo_error_burn_rate{endpoint="predict"} 0' in text)
        assert "repro_slo_window_seconds" in text


class TestConfig:
    def test_parse_full_config(self):
        tracker = parse_slo_config({
            "window_seconds": 60,
            "endpoints": {
                "predict": {"p95": 0.05, "error_ratio": 0.01},
                "*": {"p99": 1.0},
            },
        })
        assert tracker.window == 60.0
        assert tracker.objectives["predict"].p95 == 0.05
        assert tracker.objective_for("anything").p99 == 1.0

    def test_defaults(self):
        tracker = parse_slo_config({})
        assert tracker.window == DEFAULT_WINDOW_SECONDS
        assert tracker.objectives == {}

    @pytest.mark.parametrize("data", [
        [],
        {"window_seconds": 0},
        {"window_seconds": -5},
        {"endpoints": "predict"},
        {"endpoints": {"predict": "fast"}},
        {"endpoints": {"predict": {"p97": 0.1}}},
    ])
    def test_invalid_configs_raise(self, data):
        with pytest.raises(ValueError):
            parse_slo_config(data)

    def test_load_from_disk(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({
            "window_seconds": 30,
            "endpoints": {"predict": {"p50": 0.01}},
        }))
        tracker = load_slo_config(str(path))
        assert tracker.window == 30.0
        assert tracker.objectives["predict"].p50 == 0.01
