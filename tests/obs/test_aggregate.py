"""Cluster metrics merging and the ``repro top`` summary pipeline."""

from __future__ import annotations

import math

from repro.obs.aggregate import (
    format_top,
    histogram_quantile,
    merge_expositions,
    slo_rows_from_exposition,
    summarize_cluster,
    surrogate_rows_from_exposition,
)
from repro.service.metrics import MetricsRegistry, parse_exposition


def shard_text(endpoint_count: int, *, gauge: float = 1.0) -> str:
    registry = MetricsRegistry()
    counter = registry.counter("repro_http_requests_total", "Requests.")
    counter.inc(endpoint_count, endpoint="predict", status="200")
    registry.gauge("repro_cache_entries", "Cache size.").set(gauge)
    histogram = registry.histogram("repro_http_request_seconds", "Latency.")
    for _ in range(endpoint_count):
        histogram.observe(0.01, endpoint="predict")
    return registry.render()


class TestMergeExpositions:
    def test_sum_over_shard_label_equals_sum_of_scrapes(self):
        merged = merge_expositions({
            "http://a:1": shard_text(3),
            "http://b:2": shard_text(5),
        })
        families = parse_exposition(merged)
        samples = families["repro_http_requests_total"].samples
        by_shard = {dict(s.labels)["shard"]: s.value for s in samples}
        assert by_shard == {"http://a:1": 3.0, "http://b:2": 5.0}
        assert sum(by_shard.values()) == 8.0

    def test_histogram_series_keep_per_shard_values(self):
        merged = merge_expositions({
            "http://a:1": shard_text(2),
            "http://b:2": shard_text(4),
        })
        families = parse_exposition(merged)
        counts = [
            s.value
            for s in families["repro_http_request_seconds"].samples
            if s.name.endswith("_count")
        ]
        assert sorted(counts) == [2.0, 4.0]

    def test_gauges_gain_synthetic_max_min(self):
        merged = merge_expositions({
            "http://a:1": shard_text(1, gauge=10.0),
            "http://b:2": shard_text(1, gauge=40.0),
        })
        families = parse_exposition(merged)
        by_shard = {dict(s.labels)["shard"]: s.value
                    for s in families["repro_cache_entries"].samples}
        assert by_shard["max"] == 40.0
        assert by_shard["min"] == 10.0

    def test_gauge_minmax_can_be_disabled(self):
        merged = merge_expositions(
            {"http://a:1": shard_text(1)}, gauge_minmax=False)
        families = parse_exposition(merged)
        shards = {dict(s.labels)["shard"]
                  for s in families["repro_cache_entries"].samples}
        assert shards == {"http://a:1"}

    def test_kind_conflict_coerces_to_untyped(self):
        merged = merge_expositions({
            "a": "# TYPE m counter\nm 1\n",
            "b": "# TYPE m gauge\nm 2\n",
        })
        assert parse_exposition(merged)["m"].kind == "untyped"

    def test_existing_shard_label_is_replaced(self):
        merged = merge_expositions(
            {"router": 'm{shard="stale"} 7\n'})
        [sample] = parse_exposition(merged)["m"].samples
        assert dict(sample.labels)["shard"] == "router"


class TestHistogramQuantile:
    def test_interpolates_within_bucket(self):
        buckets = [(0.1, 50.0), (1.0, 100.0), (math.inf, 100.0)]
        assert histogram_quantile(0.5, buckets) == 0.1
        assert histogram_quantile(0.75, buckets) == \
            0.1 + (1.0 - 0.1) * 0.5

    def test_inf_bucket_answers_previous_bound(self):
        buckets = [(0.1, 0.0), (math.inf, 10.0)]
        assert histogram_quantile(0.99, buckets) == 0.1

    def test_empty_is_nan(self):
        assert math.isnan(histogram_quantile(0.5, []))
        assert math.isnan(histogram_quantile(0.5, [(1.0, 0.0)]))


class TestSummarize:
    def test_rows_per_shard_endpoint(self):
        merged = merge_expositions({
            "http://a:1": shard_text(3),
            "http://b:2": shard_text(5),
        })
        rows = summarize_cluster(merged)
        real = [r for r in rows if r["shard"].startswith("http")]
        assert {(r["shard"], r["requests"]) for r in real} == {
            ("http://a:1", 3.0), ("http://b:2", 5.0)}
        for row in real:
            assert not math.isnan(row["p50"])

    def test_single_server_scrape_maps_to_local(self):
        rows = summarize_cluster(shard_text(2))
        assert rows[0]["shard"] == "local"
        assert rows[0]["requests"] == 2.0

    def test_errors_counted_from_5xx_status(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_http_requests_total", "Requests.")
        counter.inc(3, endpoint="predict", status="200")
        counter.inc(2, endpoint="predict", status="503")
        [row] = summarize_cluster(registry.render())
        assert row["requests"] == 5.0
        assert row["errors"] == 2.0

    def test_format_top_skips_synthetic_shards(self):
        merged = merge_expositions({
            "http://a:1": shard_text(1, gauge=2.0),
            "http://b:2": shard_text(1, gauge=3.0),
        })
        table = format_top(summarize_cluster(merged))
        assert "http://a:1" in table
        assert "SHARD" in table

    def test_slo_rows_flag_violations(self):
        registry = MetricsRegistry()
        registry.gauge("repro_slo_latency_burn_rate", "Burn.").set(
            2.5, endpoint="predict", quantile="p95")
        registry.gauge("repro_slo_error_burn_rate", "Burn.").set(
            0.1, endpoint="predict")
        rows = slo_rows_from_exposition(registry.render())
        assert rows[0]["burn"] == 2.5           # sorted worst first
        table = format_top([], slo_rows=rows)
        assert "!!" in table


class TestSurrogateRows:
    def _shard(self, served, fallthrough, version):
        registry = MetricsRegistry()
        registry.counter("repro_surrogate_served_total", "Fast.").inc(
            served, fidelity="fast")
        registry.counter("repro_surrogate_fallthrough_total", "Slow.").inc(
            fallthrough, fidelity="fast", reason="cold_features")
        registry.counter("repro_surrogate_retrains_total", "Fits.").inc(
            1, trigger="samples", machine="power")
        registry.gauge("repro_surrogate_model_version", "Version.").set(
            version, machine="power")
        return registry.render()

    def test_rows_from_cluster_scrape(self):
        merged = merge_expositions({
            "http://a:1": self._shard(10, 2, 3),
            "http://b:2": self._shard(4, 1, 1),
        })
        rows = surrogate_rows_from_exposition(merged)
        assert [r["shard"] for r in rows] == ["http://a:1", "http://b:2"]
        assert rows[0]["served"] == 10.0
        assert rows[0]["fallthrough"] == 2.0
        assert rows[0]["versions"] == {"power": 3}
        assert rows[1]["versions"] == {"power": 1}

    def test_no_surrogate_shards_yields_no_rows(self):
        merged = merge_expositions({"http://a:1": shard_text(2)})
        assert surrogate_rows_from_exposition(merged) == []

    def test_format_top_renders_surrogate_pane(self):
        rows = surrogate_rows_from_exposition(self._shard(7, 3, 2))
        table = format_top([], surrogate_rows=rows)
        assert "SURROGATE SHARD" in table
        assert "power:v2" in table
        table = format_top([], surrogate_rows=None)
        assert "SURROGATE" not in table
