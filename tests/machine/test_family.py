"""Width-parameterized machine family and the mechanistic model."""

import pytest

from repro.machine import (
    DEFAULT_WIDTH_LADDER,
    UnitKind,
    family_machine,
    family_width_ladder,
    mechanistic_cycles,
    penalty_branch_miss,
    penalty_cache_miss,
    power_machine,
)


def test_width_scales_pipes_but_not_branch_units():
    member = family_machine(8)
    assert member.dispatch_width == 8
    assert member.name == "power-w8"
    by_kind = {unit.kind: unit.count for unit in member.units}
    assert by_kind[UnitKind.FXU] == 4
    assert by_kind[UnitKind.FPU] == 4
    assert by_kind[UnitKind.LSU] == 4
    assert by_kind[UnitKind.BRANCH] == 1
    assert by_kind[UnitKind.CRLOGIC] == 1


def test_width_one_keeps_single_pipes():
    member = family_machine(1)
    assert all(unit.count == 1 for unit in member.units)
    assert member.dispatch_width == 1


def test_family_shares_table_and_mapping():
    base = power_machine()
    member = family_machine(4, base=base)
    assert member.table is base.table
    assert member.atomic_mapping is base.atomic_mapping
    assert member.supports_fma == base.supports_fma


def test_family_members_are_memoized():
    assert family_machine(4) is family_machine(4)
    # Pinned pipe counts bypass the memo (a custom config each time).
    pinned = family_machine(4, pipe_counts={UnitKind.FPU: 3})
    assert pinned is not family_machine(4)
    assert pinned.unit(UnitKind.FPU).count == 3


def test_fingerprints_unique_across_ladder():
    prints = {family_machine(w).fingerprint() for w in range(1, 17)}
    assert len(prints) == 16
    assert power_machine().fingerprint() not in prints


def test_width_validation():
    for bad in (0, -1, 65, 2.0, True, "4"):
        with pytest.raises(ValueError):
            family_machine(bad)


def test_pipe_count_validation():
    with pytest.raises(ValueError):
        family_machine(4, pipe_counts={UnitKind.FPU: 0})


def test_width_ladder_normalises():
    assert family_width_ladder(None) == DEFAULT_WIDTH_LADDER
    assert family_width_ladder([8, 2, 2, 1]) == (1, 2, 8)
    with pytest.raises(ValueError):
        family_width_ladder([4, 0])
    with pytest.raises(ValueError):
        family_width_ladder([True])


def test_branch_penalty_formula():
    # D + (W-1)/(2W): scalar pays just the redirect depth.
    assert penalty_branch_miss(1) == 5.0
    assert penalty_branch_miss(4) == 5.0 + 3 / 8
    assert penalty_branch_miss(2, depth=10) == 10.25


def test_cache_penalty_clamps_at_zero():
    assert penalty_cache_miss(1, 12) == 12.0
    assert penalty_cache_miss(4, 12) == 12 - 3 / 8
    assert penalty_cache_miss(8, 0) == 0.0


def test_mechanistic_terms_compose():
    member = family_machine(4)
    terms = mechanistic_cycles(member, 1000.0, 250.0,
                               branch_miss_rate=0.01,
                               cache_miss_rate=0.02)
    assert terms.base == 250.0
    assert terms.branch_penalty == pytest.approx(
        1000 * 0.01 * penalty_branch_miss(4))
    assert terms.miss_penalty == pytest.approx(
        1000 * 0.02 * penalty_cache_miss(
            4, member.memory.cache_miss_cycles))
    assert terms.total == pytest.approx(
        terms.base + terms.branch_penalty + terms.miss_penalty)


def test_zero_rates_add_nothing():
    member = family_machine(2)
    terms = mechanistic_cycles(member, 500.0, 300.0)
    assert terms.total == 300.0
