"""Tests for machine descriptions, units, and cost tables."""

import pytest

from repro.machine import (
    AtomicCostTable,
    AtomicOp,
    FunctionalUnit,
    Machine,
    UnitCost,
    UnitKind,
    get_machine,
    machine_names,
    power_machine,
    register_machine,
    scalar_machine,
    wide_machine,
)
from repro.translate.basic_ops import ALL_BASIC_OPS, FALLBACKS


def test_unit_cost_validation():
    cost = UnitCost(UnitKind.FPU, 1, 1)
    assert cost.total == 2
    with pytest.raises(ValueError):
        UnitCost(UnitKind.FPU, 0, 0)
    with pytest.raises(ValueError):
        UnitCost(UnitKind.FPU, -1)


def test_functional_unit_validation():
    assert FunctionalUnit(UnitKind.FPU, 2).count == 2
    with pytest.raises(ValueError):
        FunctionalUnit(UnitKind.FPU, 0)


def test_atomic_op_properties():
    op = AtomicOp(
        "fpu_store",
        (UnitCost(UnitKind.FPU, 1, 1), UnitCost(UnitKind.FXU, 1)),
    )
    assert op.result_latency == 2
    assert op.units == (UnitKind.FPU, UnitKind.FXU)
    assert op.cost_on(UnitKind.FXU).noncoverable == 1
    assert op.cost_on(UnitKind.LSU) is None


def test_atomic_op_rejects_duplicate_units():
    with pytest.raises(ValueError):
        AtomicOp("bad", (UnitCost(UnitKind.FPU, 1), UnitCost(UnitKind.FPU, 1)))
    with pytest.raises(ValueError):
        AtomicOp("empty", ())


def test_cost_table_lookup_and_errors():
    table = AtomicCostTable()
    op = AtomicOp("x", (UnitCost(UnitKind.ALU, 1),))
    table.define(op)
    assert "x" in table and table["x"] is op
    with pytest.raises(ValueError):
        table.define(op)
    with pytest.raises(KeyError):
        table["missing"]


def test_power_machine_paper_numbers():
    """The costs the paper states verbatim must be encoded exactly."""
    machine = power_machine()
    fadd = machine.atomic("fpu_arith")
    fpu = fadd.cost_on(UnitKind.FPU)
    assert fpu.noncoverable == 1 and fpu.coverable == 1
    store = machine.atomic("fpu_store")
    assert store.cost_on(UnitKind.FPU).total == 2
    assert store.cost_on(UnitKind.FPU).coverable == 1
    assert store.cost_on(UnitKind.FXU).noncoverable == 1
    assert machine.atomic("fxu_mul3").cost_on(UnitKind.FXU).noncoverable == 3
    assert machine.atomic("fxu_mul5").cost_on(UnitKind.FXU).noncoverable == 5
    assert machine.supports_fma
    # FMA is a single FPU operation on POWER.
    assert machine.atomic_mapping["fma"] == ("fpu_arith",)


def test_power_has_figure3_bins():
    machine = power_machine()
    for kind in (UnitKind.FXU, UnitKind.FPU, UnitKind.BRANCH,
                 UnitKind.CRLOGIC, UnitKind.LSU):
        assert machine.has_unit(kind)
    assert len(machine.bins()) == 5


def test_scalar_machine_is_single_issue():
    machine = scalar_machine()
    assert machine.units == (FunctionalUnit(UnitKind.ALU, 1),)
    assert not machine.supports_fma
    assert machine.dispatch_width == 1
    # Everything is blocking: no coverable cost anywhere.
    for name in machine.table.names():
        for cost in machine.atomic(name).costs:
            assert cost.coverable == 0


def test_wide_machine_has_double_pipes():
    machine = wide_machine()
    assert machine.unit(UnitKind.FPU).count == 2
    assert machine.unit(UnitKind.FXU).count == 2
    assert len(machine.bins()) == 8


def test_all_machines_cover_basic_ops_via_fallbacks():
    """Every basic op must resolve on every machine, possibly by fallback."""
    for name in machine_names():
        machine = get_machine(name)

        def resolves(op: str, depth: int = 0) -> bool:
            if depth > 6:
                return False
            if op in machine.atomic_mapping:
                return True
            expansion = FALLBACKS.get(op)
            if expansion is None:
                return False
            return all(resolves(sub, depth + 1) for sub in expansion)

        missing = [op for op in sorted(ALL_BASIC_OPS) if not resolves(op)]
        assert not missing, f"{name} cannot resolve {missing}"


def test_machine_validates_mapping_against_units():
    table = AtomicCostTable()
    table.define(AtomicOp("fp", (UnitCost(UnitKind.FPU, 1),)))
    with pytest.raises(ValueError):
        Machine(
            name="broken",
            units=(FunctionalUnit(UnitKind.ALU, 1),),  # no FPU!
            table=table,
            atomic_mapping={"fadd": ("fp",)},
        )


def test_machine_rejects_duplicate_unit_kinds():
    table = AtomicCostTable()
    with pytest.raises(ValueError):
        Machine(
            name="dup",
            units=(FunctionalUnit(UnitKind.FPU, 1), FunctionalUnit(UnitKind.FPU, 1)),
            table=table,
            atomic_mapping={},
        )


def test_registry():
    assert set(machine_names()) >= {"power", "scalar", "wide"}
    with pytest.raises(KeyError):
        get_machine("vax")
    with pytest.raises(ValueError):
        register_machine("power", power_machine)


def test_unit_lookup():
    machine = power_machine()
    assert machine.unit(UnitKind.FPU).count == 1
    with pytest.raises(KeyError):
        scalar_machine().unit(UnitKind.FPU)


def test_memory_geometry_defaults():
    machine = power_machine()
    assert machine.memory.cache_line_bytes == 64
    assert machine.memory.cache_size_bytes > 0


# ---------------------------------------------------------------------------
# registry memoization (serving hot path)


def test_cached_machine_reuses_one_instance():
    from repro.machine.registry import _MACHINE_MEMO, cached_machine

    _MACHINE_MEMO.pop("power", None)
    first = cached_machine("power")
    assert cached_machine("power") is first
    fresh = get_machine("power")
    assert fresh is not first               # get_machine always rebuilds
    assert fresh.fingerprint() == first.fingerprint()


def test_machine_fingerprint_memoized_and_correct():
    from repro.machine.registry import _FINGERPRINT_MEMO, machine_fingerprint

    _FINGERPRINT_MEMO.pop("wide", None)
    fingerprint = machine_fingerprint("wide")
    assert fingerprint == wide_machine().fingerprint()
    assert "wide" in _FINGERPRINT_MEMO
    assert machine_fingerprint("wide") == fingerprint


def test_registry_memo_raises_uniform_keyerror():
    from repro.machine import cached_machine, machine_fingerprint

    with pytest.raises(KeyError, match="unknown machine"):
        cached_machine("vax")
    with pytest.raises(KeyError, match="unknown machine"):
        machine_fingerprint("vax")


def test_memo_invalidates_on_factory_change(monkeypatch):
    from repro.machine import registry as registry_mod

    registry_mod._MACHINE_MEMO.pop("power", None)
    registry_mod._FINGERPRINT_MEMO.pop("power", None)
    before = registry_mod.machine_fingerprint("power")
    # Recalibration swaps the factory object under the same name; the
    # memo must notice by identity and rebuild.
    retrained = lambda: power_machine()  # noqa: E731
    monkeypatch.setitem(registry_mod._FACTORIES, "power", retrained)
    after = registry_mod.machine_fingerprint("power")
    assert after == before                  # same table, same answer
    assert registry_mod._FINGERPRINT_MEMO["power"][0] is retrained
    registry_mod._MACHINE_MEMO.pop("power", None)
    registry_mod._FINGERPRINT_MEMO.pop("power", None)
