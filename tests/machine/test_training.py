"""Tests for training-set calibration (paper section 2.2.1)."""

from repro.backend import simulate
from repro.machine import (
    AtomicCostTable,
    AtomicOp,
    Machine,
    FunctionalUnit,
    UnitCost,
    UnitKind,
    calibrate,
    make_probes,
    power_machine,
)
from repro.machine.training import TrainingProbe


def _oracle_for(machine):
    """The reference simulator plays the role of the stopwatch."""

    def oracle(chain):
        return simulate(machine, chain, with_spills=False).cycles

    return oracle


def test_probes_cover_all_ops():
    machine = power_machine()
    probes = make_probes(machine)
    probed_ops = {op for probe in probes for op in probe.ops}
    assert probed_ops == set(machine.table.names())


def test_probe_chain_is_serial():
    probe = TrainingProbe("t", ("fpu_arith",) * 4)
    chain = probe.chain()
    for instr in chain[1:]:
        assert instr.deps == (instr.index - 1,)


def test_calibration_recovers_true_latencies():
    """Calibrating against the machine's own simulator is a fixpoint."""
    machine = power_machine()
    ops = ["fpu_arith", "fxu_add", "fxu_mul3", "lsu_load"]
    fitted = calibrate(machine, _oracle_for(machine), ops=ops)
    for name in ops:
        assert fitted[name].result_latency == machine.atomic(name).result_latency


def test_calibration_detects_doctored_latency():
    """If the 'hardware' is slower than the table says, the fit sees it."""
    machine = power_machine()

    # An oracle for a machine whose FP unit is secretly 3x slower.
    slow_table = AtomicCostTable()
    for name in machine.table.names():
        op = machine.atomic(name)
        if name == "fpu_arith":
            slow_table.define(AtomicOp(
                name, (UnitCost(UnitKind.FPU, 3, 3),), op.description
            ))
        else:
            slow_table.define(op)
    slow_machine = Machine(
        name="slowfp",
        units=machine.units,
        table=slow_table,
        atomic_mapping=dict(machine.atomic_mapping),
        supports_fma=True,
    )
    fitted = calibrate(
        machine, _oracle_for(slow_machine), ops=["fpu_arith", "fxu_add"]
    )
    assert fitted["fpu_arith"].result_latency == 6
    # Coverable share preserved proportionally (was 1/2 -> now 3/6).
    cost = fitted["fpu_arith"].cost_on(UnitKind.FPU)
    assert cost.coverable == 3 and cost.noncoverable == 3
    # Untouched op unchanged.
    assert fitted["fxu_add"].result_latency == 1


def test_calibrated_table_keeps_secondary_unit_costs():
    """The FP store's FXU cycle survives rescaling of its FPU cost."""
    machine = power_machine()
    fitted = calibrate(machine, _oracle_for(machine), ops=["fpu_store"])
    store = fitted["fpu_store"]
    assert store.cost_on(UnitKind.FXU) is not None
    assert store.cost_on(UnitKind.FXU).noncoverable == 1


def test_uncalibrated_ops_pass_through():
    machine = power_machine()
    fitted = calibrate(machine, _oracle_for(machine), ops=["fxu_add"])
    assert fitted["fpu_div"].result_latency == machine.atomic(
        "fpu_div"
    ).result_latency
    assert len(fitted) == len(machine.table)


def test_rescale_zero_total_cost_does_not_divide_by_zero():
    """A hand-built zero-cycle cost must rescale, not crash.

    ``UnitCost`` validation forbids 0+0 costs, so the only way such a
    component reaches ``_rescale`` is a table built around validation
    -- which external tooling (deserializers, fuzzers) can do.  The
    fit should assign the whole measured latency as noncoverable.
    """
    from repro.machine.training import _rescale

    zero = object.__new__(UnitCost)
    object.__setattr__(zero, "unit", UnitKind.FPU)
    object.__setattr__(zero, "noncoverable", 0)
    object.__setattr__(zero, "coverable", 0)
    op = AtomicOp.__new__(AtomicOp)
    object.__setattr__(op, "name", "ghost")
    object.__setattr__(op, "costs", (zero,))
    object.__setattr__(op, "description", "zero-cost op")
    assert op.result_latency == 0

    rescaled = _rescale(op, 3)
    cost = rescaled.cost_on(UnitKind.FPU)
    assert cost.noncoverable == 3 and cost.coverable == 0
    assert rescaled.result_latency == 3
