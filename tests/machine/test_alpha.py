"""Tests for the Alpha-like machine description."""

from repro.backend import simulate
from repro.cost import StraightLineEstimator, place_stream
from repro.machine import UnitKind, alpha_machine, get_machine
from repro.translate import Translator, resolve_basic_op
from repro.translate.stream import Instr


def test_registered():
    assert get_machine("alpha").name == "alpha"


def test_no_fma_decomposition():
    machine = alpha_machine()
    assert not machine.supports_fma
    assert resolve_basic_op(machine, "fma") == ("fbox_op", "fbox_op")


def test_fp_latency_six_pipelined():
    machine = alpha_machine()
    op = machine.atomic("fbox_op")
    assert op.result_latency == 6
    cost = op.cost_on(UnitKind.FPU)
    assert cost.noncoverable == 1  # fully pipelined


def test_independent_fp_ops_pipeline():
    machine = alpha_machine()
    placed = place_stream(machine, [Instr(i, "fbox_op") for i in range(8)])
    # 8 issue slots + 5 trailing coverable cycles.
    assert placed.cycles == 13


def test_dependent_chain_pays_full_latency():
    machine = alpha_machine()
    instrs = [
        Instr(i, "fbox_op", deps=(i - 1,) if i else ()) for i in range(4)
    ]
    placed = place_stream(machine, instrs)
    assert placed.cycles == 24


def test_translator_emits_separate_mul_add():
    from repro.ir import SymbolTable, parse_fragment, parse_program

    prog = parse_program(
        "program t\n  integer n, i\n  real x(n), y(n), alpha\n"
        "  y(1) = y(1) + alpha * x(1)\nend\n"
    )
    translator = Translator(alpha_machine(), SymbolTable.from_program(prog))
    info = translator.translate_block(
        parse_fragment("y(i) = y(i) + alpha * x(i)\n"), ("i",)
    )
    atomics = [i.atomic for i in info.stream]
    assert atomics.count("fbox_op") == 2  # mul then add, no fma


def test_estimator_tracks_reference_on_alpha():
    from repro.bench import kernel, kernel_names, kernel_stream

    machine = alpha_machine()
    estimator = StraightLineEstimator(machine)
    for name in kernel_names():
        info = kernel_stream(kernel(name), machine)
        predicted = estimator.estimate(info.stream).cycles
        reference = simulate(
            machine, [i for i in info.stream if not i.one_time]
        ).cycles
        assert abs(predicted - reference) / reference <= 0.10, name


def test_alpha_slower_than_power_on_fp_chains():
    """Deeper FP latency: dependence-heavy kernels cost more than POWER."""
    import repro
    from repro.bench import kernel

    program = kernel("f3").program  # reduction: chain-bound
    alpha_cost = repro.predict(program, machine="alpha")
    power_cost = repro.predict(program, machine="power")
    assert alpha_cost.evaluate({"n": 100}) > power_cost.evaluate({"n": 100})
