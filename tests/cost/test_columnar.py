"""The fused columnar kernel: compilation, lowering, and equivalence."""

import random

import pytest

from repro.cost import (
    BinSet,
    COLUMNAR_CACHE_LIMIT,
    columnar_cache_stats,
    compile_stream,
    place_stream,
    placement_kernel,
    reset_columnar_cache,
    reset_placement_cache,
    set_placement_kernel,
)
from repro.cost.columnar import CompiledStream, drop_columns
from repro.cost.placement import _place_uncached
from repro.machine import compile_ops, power_machine, reset_compiled_ops
from repro.machine.alpha import alpha_machine
from repro.machine.scalar import scalar_machine
from repro.machine.wide import wide_machine
from repro.translate.stream import Instr, InstrStream


def setup_function(_):
    reset_placement_cache()
    reset_columnar_cache()


# ---------------------------------------------------------------------------
# Per-machine op compilation


def test_compiled_ops_mirror_the_cost_table():
    machine = power_machine()
    ops = compile_ops(machine)
    assert ops.fingerprint == machine.fingerprint()
    assert ops.names == tuple(machine.table.names())
    for name in ops.names:
        oid = ops.index_of[name]
        op = machine.table[name]
        assert ops.latency[oid] == op.result_latency
        comps = ops.components[oid]
        needed = [c for c in op.costs if c.noncoverable > 0]
        if comps is None:
            assert any(not machine.has_unit(c.unit) for c in needed)
        else:
            assert len(comps) == len(needed)
            for (slot, length), cost in zip(comps, needed):
                assert ops.kinds[slot] is cost.unit
                assert length == cost.noncoverable


def test_compiled_ops_are_memoized_by_fingerprint():
    reset_compiled_ops()
    first = compile_ops(power_machine())
    second = compile_ops(power_machine())
    assert second is first  # same fingerprint -> same compilation object


def test_pipes_follow_machine_order():
    machine = wide_machine()
    ops = compile_ops(machine)
    for slot, unit in enumerate(machine.units):
        assert ops.pipes[slot] == tuple(
            (unit.kind, i) for i in range(unit.count))


# ---------------------------------------------------------------------------
# Stream lowering


def test_lowered_columns_match_the_stream():
    machine = power_machine()
    instrs = [
        Instr(0, "fpu_arith"),
        Instr(1, "fxu_add", deps=(0,), one_time=True),
        Instr(2, "fpu_arith", deps=(0, 1)),
    ]
    stream = compile_stream(machine, instrs)
    ops = compile_ops(machine)
    assert len(stream) == 3
    assert list(stream.op_ids) == [
        ops.index_of["fpu_arith"], ops.index_of["fxu_add"],
        ops.index_of["fpu_arith"]]
    assert list(stream.one_time) == [0, 1, 0]
    assert list(stream.dep_ptr) == [0, 0, 1, 3]
    assert list(stream.deps) == [0, 0, 1]  # stream positions


def test_deps_resolve_to_latest_earlier_position():
    """Duplicate indices: a dep binds to the *latest* earlier producer."""
    machine = power_machine()
    instrs = [
        Instr(5, "fpu_arith"),
        Instr(5, "fpu_div"),        # shadows position 0 for index 5
        Instr(6, "fpu_arith", deps=(5,)),
    ]
    stream = compile_stream(machine, instrs)
    assert list(stream.deps) == [1]


def test_unresolvable_deps_are_dropped():
    """Legacy reads completions.get(dep, 0): unknown deps contribute 0."""
    machine = power_machine()
    instrs = [
        Instr(5, "fpu_arith"),
        Instr(7, "fpu_div", deps=(6,)),      # index 6 never appears
    ]
    stream = compile_stream(machine, instrs)
    assert list(stream.deps) == []
    legacy = _place_uncached(machine, instrs, 64, None, "legacy")
    fused = _place_uncached(machine, instrs, 64, None, "fused")
    assert [op.time for op in fused.ops] == [op.time for op in legacy.ops]


def test_compiled_stream_memo_hits_and_evicts():
    machine = power_machine()
    instrs = [Instr(0, "fpu_arith")]
    compile_stream(machine, instrs)
    hit = compile_stream(machine, instrs)
    stats = columnar_cache_stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert compile_stream(machine, instrs) is hit
    for k in range(COLUMNAR_CACHE_LIMIT + 4):
        compile_stream(machine, [Instr(0, "fpu_arith"),
                                 Instr(1 + k, "fxu_add")])
    stats = columnar_cache_stats()
    assert stats["entries"] == COLUMNAR_CACHE_LIMIT
    assert stats["evictions"] >= 4


def test_place_stream_accepts_compiled_and_instr_streams():
    machine = power_machine()
    instrs = [Instr(0, "fpu_arith"), Instr(1, "fpu_arith", deps=(0,))]
    via_list = place_stream(machine, instrs)
    reset_placement_cache()
    via_compiled = place_stream(machine, compile_stream(machine, instrs))
    reset_placement_cache()
    stream = InstrStream()
    for i in instrs:
        stream.append(i.atomic, deps=i.deps)
    via_stream = place_stream(machine, stream)
    assert via_compiled.cycles == via_list.cycles == via_stream.cycles
    assert [op.time for op in via_compiled.ops] == [op.time for op in via_list.ops]


# ---------------------------------------------------------------------------
# Kernel equivalence and selection


def _bin_grids(bins):
    return {bin_id: arr.as_bools() for bin_id, arr in bins.arrays.items()}


@pytest.mark.parametrize("factory", [
    power_machine, wide_machine, scalar_machine, alpha_machine,
])
def test_fused_matches_legacy_bit_for_bit(factory):
    machine = factory()
    names = [
        name for name in machine.table.names()
        if all(machine.has_unit(c.unit)
               for c in machine.table[name].costs if c.noncoverable > 0)
    ]
    rng = random.Random(42)
    for trial in range(40):
        n = rng.randint(1, 48)
        instrs = [
            Instr(i, rng.choice(names),
                  deps=tuple(rng.sample(range(i), k=min(i, rng.randint(0, 3)))))
            for i in range(n)
        ]
        focus = rng.choice([2, 8, 64])
        legacy_bins = BinSet(machine)
        fused_bins = BinSet(machine)
        legacy = _place_uncached(machine, instrs, focus, legacy_bins, "legacy")
        fused = _place_uncached(machine, instrs, focus, fused_bins, "fused")
        assert fused.cycles == legacy.cycles
        assert [(o.time, o.completion) for o in fused.ops] == \
               [(o.time, o.completion) for o in legacy.ops]
        assert fused.block == legacy.block
        assert _bin_grids(fused_bins) == _bin_grids(legacy_bins)
        assert fused_bins._top == legacy_bins._top


def test_missing_unit_raises_on_both_kernels():
    """An op whose noncoverable cost names an absent unit fails at
    placement time (not at compile time), matching the legacy path."""
    from repro.machine.atomic import AtomicCostTable, AtomicOp
    from repro.machine.machine import Machine
    from repro.machine.units import FunctionalUnit, UnitCost, UnitKind

    table = AtomicCostTable()
    table.define(AtomicOp("alu_op", (UnitCost(UnitKind.ALU, 1),)))
    table.define(AtomicOp("fp_op", (UnitCost(UnitKind.FPU, 2),)))
    machine = Machine("one-alu", (FunctionalUnit(UnitKind.ALU, 1),), table, {})
    ops = compile_ops(machine)
    assert ops.components[ops.index_of["fp_op"]] is None
    # The supported op still places fine...
    placed = _place_uncached(machine, [Instr(0, "alu_op")], 64, None, "fused")
    assert placed.ops[0].time == 0
    # ... and the unsupported one raises on both kernels.
    instrs = [Instr(0, "fp_op")]
    with pytest.raises(KeyError):
        _place_uncached(machine, instrs, 64, None, "legacy")
    with pytest.raises(KeyError):
        _place_uncached(machine, instrs, 64, None, "fused")


def test_kernel_selection_round_trip():
    previous = set_placement_kernel("legacy")
    try:
        assert placement_kernel() == "legacy"
        machine = power_machine()
        placed = place_stream(machine, [Instr(0, "fpu_arith")])
        assert placed.cycles == 2
    finally:
        set_placement_kernel(previous)
    with pytest.raises(ValueError):
        set_placement_kernel("vectorized")
    with pytest.raises(ValueError):
        place_stream(power_machine(), [Instr(0, "fpu_arith")],
                     kernel="vectorized")


def test_drop_columns_advances_the_running_top():
    machine = power_machine()
    bins = BinSet(machine)
    stream = compile_stream(machine, [Instr(i, "fpu_arith") for i in range(4)])
    times, completions = drop_columns(stream, compile_ops(machine), bins, 64)
    assert times == [0, 1, 2, 3]
    assert completions == [2, 3, 4, 5]
    assert bins.top() == bins._scan_top() == 4


def test_empty_stream_places_to_nothing():
    machine = power_machine()
    placed = place_stream(machine, [])
    assert placed.cycles == 0
    assert placed.ops == ()

# ---------------------------------------------------------------------------
# summary columns (the learned surrogate's feature basis)


def test_summary_aggregates_match_columns():
    machine = power_machine()
    instrs = [
        Instr(0, "fpu_arith"),
        Instr(1, "fxu_add", deps=(0,), one_time=True),
        Instr(2, "fpu_arith", deps=(0, 1)),
    ]
    stream = compile_stream(machine, instrs)
    ops = compile_ops(machine)
    summary = stream.summary
    assert summary.length == 3
    assert len(summary.op_counts) == len(ops.names)
    assert summary.op_counts[ops.index_of["fpu_arith"]] == 2
    assert summary.op_counts[ops.index_of["fxu_add"]] == 1
    assert sum(summary.op_counts) == 3
    assert summary.dep_edges == len(stream.deps) == 3
    # distances: 1->0 is 1, 2->0 is 2, 2->1 is 1
    assert summary.dep_dist_sum == 4
    assert summary.dep_dist_max == 2
    assert summary.one_time == 1
    assert summary.latency_sum == sum(
        ops.latency[oid] for oid in stream.op_ids)


def test_summary_of_empty_stream_is_zero():
    summary = compile_stream(power_machine(), []).summary
    assert summary.length == 0
    assert summary.dep_edges == 0
    assert summary.dep_dist_max == 0
    assert sum(summary.op_counts) == 0


def test_summary_is_kernel_independent():
    """The summary is built at lowering, before any placement kernel
    runs -- the same stream compiles to the same aggregates."""
    machine = power_machine()
    instrs = [Instr(i, "fpu_arith", deps=(i - 1,) if i else ())
              for i in range(8)]
    reset_columnar_cache()
    first = compile_stream(machine, instrs).summary
    reset_columnar_cache()
    second = compile_stream(machine, instrs).summary
    assert first == second
