"""Differential tests: calibrated machines across placement kernels.

A calibrated cost table must be a drop-in machine: every placement
kernel (legacy, fused, arena batch path) must produce *bit-identical*
placements for it, and swapping a recalibrated table under the same
machine name must invalidate -- not corrupt -- the placement memo and
the service result cache.
"""

import pytest

from repro.calib import (
    SimulatorOracle,
    calibrate_machine,
    register_calibrated,
    result_to_payload,
)
from repro.cost import (
    place_batch,
    place_stream,
    reset_arenas,
    reset_columnar_cache,
    reset_placement_cache,
    set_placement_kernel,
)
from repro.machine import power_machine
from repro.machine.registry import _FACTORIES
from repro.translate.stream import Instr, InstrStream

FOCUS = 64


def setup_function(_):
    reset_placement_cache()
    reset_columnar_cache()
    reset_arenas()


@pytest.fixture(scope="module")
def calibrated():
    machine = power_machine()
    return calibrate_machine(machine, SimulatorOracle(machine),
                             name="power-diff-test").machine


def _streams(machine):
    """A few structurally different streams over the calibrated table."""
    ops = [n for n in machine.table.names()
           if machine.atomic(n).result_latency > 0]
    serial = [
        Instr(index=i, atomic=ops[i % len(ops)],
              deps=(i - 1,) if i else (), tag=f"s{i}")
        for i in range(24)
    ]
    burst = [
        Instr(index=i, atomic="fpu_arith", deps=(), tag=f"b{i}")
        for i in range(16)
    ]
    diamond = [
        Instr(index=0, atomic="lsu_load", deps=(), tag="d0"),
        Instr(index=1, atomic="fpu_arith", deps=(0,), tag="d1"),
        Instr(index=2, atomic="fxu_add", deps=(0,), tag="d2"),
        Instr(index=3, atomic="fpu_store", deps=(1, 2), tag="d3"),
    ]
    return [InstrStream(serial), InstrStream(burst), InstrStream(diamond)]


def _snapshot(placed):
    block = placed.block
    return (placed.cycles, block.lo, block.occupied_hi, block.completion,
            tuple(sorted(block.bin_profiles.items(), key=lambda kv: str(kv))),
            tuple(sorted(block.bin_occupancy.items(), key=lambda kv: str(kv))))


def test_kernels_bit_identical_on_calibrated_machine(calibrated):
    streams = _streams(calibrated)
    results = {}
    for kernel in ("legacy", "fused", "arena"):
        previous = set_placement_kernel(kernel)
        try:
            reset_placement_cache()
            reset_arenas()
            results[kernel] = [
                _snapshot(place_stream(calibrated, stream, FOCUS))
                for stream in streams
            ]
        finally:
            set_placement_kernel(previous)
    assert results["legacy"] == results["fused"] == results["arena"]


def test_arena_batch_matches_single_placements(calibrated):
    streams = _streams(calibrated)
    single = [_snapshot(place_stream(calibrated, s, FOCUS)) for s in streams]
    reset_placement_cache()
    reset_arenas()
    batched = [_snapshot(p) for p in place_batch(calibrated, streams, FOCUS)]
    assert batched == single


def test_placement_memo_safe_across_recalibration(calibrated):
    """Same stream, different table: the memo must not serve stale."""
    base = power_machine()
    stream = _streams(base)[0]
    before = place_stream(base, stream, FOCUS).cycles
    # The calibrated fixture machine is a self-calibration fixpoint, so
    # build a genuinely different table: double fpu_arith.
    import dataclasses

    from repro.machine import AtomicCostTable, AtomicOp, UnitCost

    table = AtomicCostTable()
    for name in base.table.names():
        op = base.atomic(name)
        if name == "fpu_arith":
            primary = op.costs[0]
            table.define(AtomicOp(name, (UnitCost(
                primary.unit, primary.noncoverable * 2,
                primary.coverable * 2),), op.description))
        else:
            table.define(op)
    slower = dataclasses.replace(base, table=table)
    assert slower.fingerprint() != base.fingerprint()
    after = place_stream(slower, stream, FOCUS).cycles
    assert after > before
    # And the original keys still hit correctly.
    assert place_stream(base, stream, FOCUS).cycles == before


def test_result_cache_invalidated_by_fingerprint_swap(calibrated):
    """Recalibrating under the same name must stop old cache entries."""
    from repro.service.engine import PredictionEngine

    SRC = ("program t\n  integer n, i\n  real a, x(n), y(n)\n"
           "  do i = 1, n\n    y(i) = a * x(i) + y(i)\n  end do\nend\n")
    payload = result_to_payload(
        calibrate_machine(power_machine(), SimulatorOracle(power_machine()),
                          name="power-recal"))
    name = register_calibrated(payload)
    try:
        engine = PredictionEngine(workers=0, cache_size=32)
        first = engine.handle("predict", {"source": SRC, "machine": name})
        assert "error" not in first
        again = engine.handle("predict", {"source": SRC, "machine": name})
        assert again["cached"] is True

        # Retrain: fpu ops get slower, same machine name.
        retrained = dict(payload)
        retrained["table"] = {
            op: ({**spec, "costs": [
                {**c, "noncoverable": c["noncoverable"] + 2}
                for c in spec["costs"]
            ]} if op.startswith("fpu") else spec)
            for op, spec in payload["table"].items()
        }
        register_calibrated(retrained)
        fresh = engine.handle("predict", {"source": SRC, "machine": name})
        assert fresh["cached"] is False
        assert fresh["cost"] != first["cost"]
    finally:
        _FACTORIES.pop(name, None)
