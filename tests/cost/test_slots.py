"""Tests for the signed-block slot array (paper Figures 4-5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import SlotArray


def test_initial_state():
    array = SlotArray(8)
    assert array.capacity == 8
    assert array.first_filled() is None
    assert array.last_filled() is None
    assert array.is_free(0, 8)
    assert list(array.blocks()) == [(0, 8, False)]


def test_fill_middle_splits_block():
    array = SlotArray(8)
    array.fill(2, 3)
    assert list(array.blocks()) == [(0, 2, False), (2, 3, True), (5, 3, False)]
    assert array.first_filled() == 2
    assert array.last_filled() == 4
    assert array.filled_total == 3


def test_fill_at_origin():
    array = SlotArray(8)
    array.fill(0, 2)
    assert list(array.blocks()) == [(0, 2, True), (2, 6, False)]


def test_merge_with_predecessor():
    array = SlotArray(16)
    array.fill(0, 2)
    array.fill(2, 3)
    assert list(array.blocks()) == [(0, 5, True), (5, 11, False)]


def test_merge_with_successor():
    array = SlotArray(16)
    array.fill(5, 2)
    array.fill(3, 2)
    assert (3, 4, True) in list(array.blocks())


def test_merge_both_sides():
    array = SlotArray(16)
    array.fill(0, 2)
    array.fill(4, 2)
    array.fill(2, 2)
    assert list(array.blocks())[0] == (0, 6, True)


def test_double_fill_rejected():
    array = SlotArray(8)
    array.fill(2, 2)
    with pytest.raises(ValueError):
        array.fill(3, 1)
    with pytest.raises(ValueError):
        array.fill(1, 2)


def test_zero_length_fill_is_noop():
    array = SlotArray(8)
    array.fill(3, 0)
    assert array.first_filled() is None


def test_negative_slot_rejected():
    array = SlotArray(8)
    with pytest.raises(ValueError):
        array.fill(-1, 2)
    with pytest.raises(ValueError):
        array.is_free(-1, 1)
    with pytest.raises(ValueError):
        array.next_fit(-1, 1)


def test_growth_beyond_capacity():
    array = SlotArray(4)
    array.fill(10, 3)
    assert array.capacity >= 13
    assert array.last_filled() == 12
    assert array.is_free(0, 10)


def test_growth_is_exact_not_one_past_the_fill():
    """Regression pin: fill grows to start+length, doubling from there.

    The fill used to request ``start + length + 1`` slots -- one past
    what it touches -- which made a fill ending exactly at capacity
    double the allocation for a sentinel cell nothing ever read.
    """
    array = SlotArray(64)
    array.fill(0, 64)               # exactly fills existing capacity ...
    assert array.capacity == 64     # ... and must not grow at all
    array.fill(64, 1)               # first slot past the end ...
    assert array.capacity == 128    # ... doubles (max(needed, 2*old))
    big = SlotArray(4)
    big.fill(100, 8)                # far jump: grows to exactly needed
    assert big.capacity == 108


def test_growth_when_tail_filled():
    array = SlotArray(4)
    array.fill(0, 4)
    array.fill(4, 2)  # forces growth with a filled tail
    assert array.first_filled() == 0
    assert array.last_filled() == 5
    assert list(array.blocks())[0] == (0, 6, True)


def test_next_fit_simple():
    array = SlotArray(16)
    array.fill(0, 4)
    assert array.next_fit(0, 2) == 4
    assert array.next_fit(2, 2) == 4
    assert array.next_fit(6, 2) == 6


def test_next_fit_skips_small_holes():
    array = SlotArray(32)
    array.fill(0, 2)
    array.fill(3, 2)   # hole of size 1 at slot 2
    array.fill(8, 2)   # hole of size 3 at slots 5..7
    assert array.next_fit(0, 1) == 2
    assert array.next_fit(0, 2) == 5
    assert array.next_fit(0, 3) == 5
    assert array.next_fit(0, 4) == 10


def test_next_fit_beyond_capacity():
    array = SlotArray(4)
    array.fill(0, 4)
    assert array.next_fit(0, 10) == 4  # implicit empty tail


def test_next_fit_zero_length():
    array = SlotArray(4)
    array.fill(0, 4)
    assert array.next_fit(2, 0) == 2


def test_is_free_tail():
    array = SlotArray(4)
    assert array.is_free(100, 50)
    array.fill(2, 2)
    assert array.is_free(4, 100)


def test_occupancy_in():
    array = SlotArray(16)
    array.fill(2, 4)
    array.fill(10, 2)
    assert array.occupancy_in(0, 16) == 6
    assert array.occupancy_in(3, 11) == 4
    assert array.occupancy_in(6, 10) == 0


def test_as_bools_and_str():
    array = SlotArray(6)
    array.fill(1, 2)
    assert array.as_bools() == [False, True, True, False, False, False]
    assert "#" in str(array)


# ---------------------------------------------------------------------------
# Property test: the block representation vs a naive boolean-array model.
# ---------------------------------------------------------------------------

@st.composite
def fill_sequences(draw):
    ops = []
    for _ in range(draw(st.integers(1, 20))):
        start = draw(st.integers(0, 40))
        length = draw(st.integers(1, 8))
        ops.append((start, length))
    return ops


@given(fill_sequences())
@settings(max_examples=120)
def test_matches_naive_model(ops):
    array = SlotArray(8)
    model = [False] * 128
    for start, length in ops:
        free_in_model = not any(model[start:start + length])
        if free_in_model:
            array.fill(start, length)
            for i in range(start, start + length):
                model[i] = True
        else:
            with pytest.raises(ValueError):
                array.fill(start, length)
    # Dense state agrees.
    dense = array.as_bools()
    for i, value in enumerate(model):
        got = dense[i] if i < len(dense) else False
        assert got == value, f"slot {i}"
    # Extremes agree.
    filled_indices = [i for i, v in enumerate(model) if v]
    if filled_indices:
        assert array.first_filled() == filled_indices[0]
        assert array.last_filled() == filled_indices[-1]
        assert array.filled_total == len(filled_indices)
    # Alternation invariant: no two adjacent blocks share filledness.
    blocks = list(array.blocks())
    for (s1, z1, f1), (s2, z2, f2) in zip(blocks, blocks[1:]):
        assert s1 + z1 == s2
        assert f1 != f2


@given(fill_sequences(), st.integers(0, 50), st.integers(1, 6))
@settings(max_examples=120)
def test_next_fit_matches_naive_search(ops, query_start, query_len):
    array = SlotArray(8)
    model = [False] * 256
    for start, length in ops:
        if not any(model[start:start + length]):
            array.fill(start, length)
            for i in range(start, start + length):
                model[i] = True
    got = array.next_fit(query_start, query_len)
    expected = query_start
    while any(model[expected:expected + query_len]):
        expected += 1
    assert got == expected
