"""Tests for bin placement and the paper's worked examples."""

import pytest

from repro.cost import BinSet, place_stream
from repro.machine import UnitKind, get_machine, power_machine
from repro.translate.stream import Instr, InstrStream


def _power():
    return power_machine()


def test_single_fadd_costs_two_cycles():
    """Paper: one cycle noncoverable + one coverable; alone, it costs 2."""
    machine = _power()
    placed = place_stream(machine, [Instr(0, "fpu_arith")])
    assert placed.cycles == 2


def test_two_independent_fadds_pipeline():
    """Two independent FP adds issue back to back: 3 cycles total."""
    machine = _power()
    placed = place_stream(machine, [
        Instr(0, "fpu_arith"),
        Instr(1, "fpu_arith"),
    ])
    assert placed.ops[0].time == 0
    assert placed.ops[1].time == 1
    assert placed.cycles == 3


def test_dependent_fadds_serialize():
    """A dependent FP add waits out the coverable cycle: starts at t=2."""
    machine = _power()
    placed = place_stream(machine, [
        Instr(0, "fpu_arith"),
        Instr(1, "fpu_arith", deps=(0,)),
    ])
    assert placed.ops[1].time == 2
    assert placed.cycles == 4


def test_chain_of_n_dependent_fadds():
    machine = _power()
    n = 6
    instrs = [Instr(i, "fpu_arith", deps=(i - 1,) if i else ()) for i in range(n)]
    placed = place_stream(machine, instrs)
    assert placed.cycles == 2 * n


def test_independent_fadds_throughput():
    """k independent fadds: k issue slots + 1 trailing coverable cycle."""
    machine = _power()
    k = 10
    instrs = [Instr(i, "fpu_arith") for i in range(k)]
    placed = place_stream(machine, instrs)
    assert placed.cycles == k + 1


def test_load_and_fadd_overlap_across_units():
    """A load (LSU) and an independent fadd (FPU) share time slots."""
    machine = _power()
    placed = place_stream(machine, [
        Instr(0, "lsu_load"),
        Instr(1, "fpu_arith"),
    ])
    assert placed.ops[0].time == 0
    assert placed.ops[1].time == 0
    assert placed.cycles == 2


def test_store_occupies_fpu_and_fxu():
    """Paper: FP store = FPU 2 cycles (1 coverable) + FXU 1 cycle."""
    machine = _power()
    bins = BinSet(machine)
    placed = place_stream(machine, [Instr(0, "fpu_store")], bins=bins)
    assert bins.arrays[(UnitKind.FPU, 0)].filled_total == 1
    assert bins.arrays[(UnitKind.FXU, 0)].filled_total == 1
    assert placed.cycles == 2


def test_multi_unit_simultaneous_fit():
    """An op needing FPU+FXU at the same slot must skip a busy slot."""
    machine = _power()
    placed = place_stream(machine, [
        Instr(0, "fxu_add"),     # occupies FXU slot 0
        Instr(1, "fpu_store"),   # needs FPU and FXU at the same t -> t=1
    ])
    assert placed.ops[1].time == 1


def test_figure3_fma_loop_body():
    """The paper's Figure 3 body: c(1) = c(1) + a(1) * b(1).

    load a, load b, load c, fma(dep loads), store c(dep fma), branch.
    Loads pipeline through the single LSU; the FMA waits on its inputs;
    the branch hides in the Branch unit.
    """
    machine = _power()
    instrs = [
        Instr(0, "lsu_load", tag="load a(1)"),
        Instr(1, "lsu_load", tag="load b(1)"),
        Instr(2, "lsu_load", tag="load c(1)"),
        Instr(3, "fpu_arith", deps=(0, 1, 2), tag="fma"),
        Instr(4, "fpu_store", deps=(3,), tag="store c(1)"),
        Instr(5, "branch", tag="loop branch"),
    ]
    placed = place_stream(machine, instrs)
    times = {i.instr.tag: i.time for i in placed.ops}
    assert times["load a(1)"] == 0
    assert times["load b(1)"] == 1
    assert times["load c(1)"] == 2
    # last load result at 4; fma at 4, result at 6; store at 6.
    assert times["fma"] == 4
    assert times["store c(1)"] == 6
    # The branch drops to slot 0 of the branch unit: fully covered.
    assert times["loop branch"] == 0
    assert placed.cycles == 8


def test_sixteen_independent_fmas():
    """Matmul's 4x4-unrolled block: 16 FMAs stream at 1/cycle."""
    machine = _power()
    instrs = [Instr(i, "fpu_arith", tag=f"fma{i}") for i in range(16)]
    placed = place_stream(machine, instrs)
    assert placed.cycles == 17


def test_wide_machine_doubles_fma_throughput():
    machine = get_machine("wide")
    instrs = [Instr(i, "fpu_arith") for i in range(16)]
    placed = place_stream(machine, instrs)
    assert placed.cycles == 8 + 1


def test_scalar_machine_serializes_everything():
    machine = get_machine("scalar")
    instrs = [
        Instr(0, "alu_load"),
        Instr(1, "alu_load"),
        Instr(2, "alu_fadd", deps=(0, 1)),
    ]
    placed = place_stream(machine, instrs)
    # 2 + 2 blocking loads, then the fadd: no overlap at all.
    assert placed.cycles == 6


def test_focus_span_limits_backfill():
    """A deep early hole is invisible once the top has moved far past it."""
    machine = _power()
    instrs = (
        # A long FXU chain raises the top while leaving the FPU empty
        # at the bottom.
        [Instr(i, "fxu_mul5", deps=(i - 1,) if i else ()) for i in range(8)]
        + [Instr(8, "fpu_arith")]
    )
    wide = place_stream(machine, instrs, focus_span=1 << 20)
    narrow = place_stream(machine, instrs, focus_span=4)
    fpu_wide = wide.ops[8].time
    fpu_narrow = narrow.ops[8].time
    assert fpu_wide == 0                      # backfills to the bottom
    assert fpu_narrow >= 40 - 4               # held within the span window
    assert narrow.cycles >= wide.cycles


def test_focus_span_validation():
    machine = _power()
    with pytest.raises(ValueError):
        place_stream(machine, [], focus_span=0)


def test_empty_stream():
    machine = _power()
    placed = place_stream(machine, [])
    assert placed.cycles == 0
    assert placed.block.is_empty


def test_stream_object_accepted():
    machine = _power()
    stream = InstrStream(machine_name="power", label="t")
    stream.append("fpu_arith")
    stream.append("fpu_arith", deps=(0,))
    placed = place_stream(machine, stream)
    assert placed.cycles == 4


def test_binset_render():
    machine = _power()
    bins = BinSet(machine)
    place_stream(machine, [Instr(0, "lsu_load"), Instr(1, "fxu_add")], bins=bins)
    art = bins.render()
    assert "fxu" in art and "lsu" in art and "#" in art
