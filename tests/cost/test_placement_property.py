"""Differential property tests for the placement drop.

Three implementations must agree on every random machine and stream:

* the legacy reference (``BinSet.place``, one call per instruction),
* the fused columnar kernel (:func:`repro.cost.columnar.drop_columns`),
* a brute-force oracle that scans a dense boolean grid one time slot
  at a time -- no signed blocks, no hints, no restart loop.

The oracle encodes the *specification*: drop at the smallest
``t >= earliest`` where every nonzero-noncoverable component has a
pipe with enough consecutive free slots, choosing the first such pipe
in machine order.  Random machines (unit inventories, pipe counts,
cost tables) and random streams push all three through block merges,
growth boundaries, multi-component restarts, and pipe tie-breaks.
"""

from hypothesis import given, settings, strategies as st

from repro.cost import BinSet
from repro.cost.placement import _place_uncached
from repro.machine.atomic import AtomicCostTable, AtomicOp
from repro.machine.machine import Machine
from repro.machine.units import FunctionalUnit, UnitCost, UnitKind
from repro.translate.stream import Instr

_KINDS = tuple(UnitKind)

#: Plenty for any stream these strategies generate (fills are bounded
#: by instructions * max noncoverable + max earliest).
_GRID = 1024


@st.composite
def _machines(draw):
    n_units = draw(st.integers(1, 3))
    kinds = draw(st.permutations(_KINDS))[:n_units]
    units = tuple(
        FunctionalUnit(kind, draw(st.integers(1, 3))) for kind in kinds
    )
    table = AtomicCostTable()
    for i in range(draw(st.integers(1, 5))):
        n_costs = draw(st.integers(1, n_units))
        cost_kinds = draw(st.permutations(kinds))[:n_costs]
        costs = []
        for kind in cost_kinds:
            noncoverable = draw(st.integers(0, 4))
            coverable = draw(st.integers(0, 2))
            if noncoverable == 0 and coverable == 0:
                coverable = 1
            costs.append(UnitCost(kind, noncoverable, coverable))
        table.define(AtomicOp(f"op{i}", tuple(costs)))
    return Machine("hypo", units, table, {})


@st.composite
def _machine_and_stream(draw):
    machine = draw(_machines())
    names = machine.table.names()
    n = draw(st.integers(1, 24))
    instrs = []
    for i in range(n):
        n_deps = draw(st.integers(0, min(i, 3)))
        deps = tuple(sorted(draw(
            st.sets(st.integers(0, i - 1), min_size=n_deps, max_size=n_deps)
        ))) if i else ()
        instrs.append(Instr(i, draw(st.sampled_from(names)), deps=deps))
    focus_span = draw(st.sampled_from([1, 3, 16, 64]))
    return machine, instrs, focus_span


class _DenseOracle:
    """Boolean-grid model of a BinSet: linear scan, first-fit pipes."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.grids = {bin_id: [False] * _GRID for bin_id in machine.bins()}
        self.pipes_of: dict[UnitKind, list] = {}
        for bin_id in machine.bins():
            self.pipes_of.setdefault(bin_id[0], []).append(bin_id)
        self.top = 0

    def _free_pipe(self, kind, t, length):
        for bin_id in self.pipes_of[kind]:
            if not any(self.grids[bin_id][t:t + length]):
                return bin_id
        return None

    def place(self, costs, earliest):
        """Smallest simultaneously-feasible t; returns (t, chosen pipes)."""
        needed = [c for c in costs if c.noncoverable > 0]
        if not needed:
            return earliest, ()
        t = earliest
        while True:
            chosen = [
                self._free_pipe(c.unit, t, c.noncoverable) for c in needed
            ]
            if all(pipe is not None for pipe in chosen):
                for cost, pipe in zip(needed, chosen):
                    grid = self.grids[pipe]
                    for slot in range(t, t + cost.noncoverable):
                        grid[slot] = True
                    if t + cost.noncoverable > self.top:
                        self.top = t + cost.noncoverable
                return t, tuple(chosen)
            t += 1

    def drop_stream(self, instrs, focus_span):
        """The full placement loop over the dense model."""
        completions: dict[int, int] = {}
        times = []
        for instr in instrs:
            op = self.machine.atomic(instr.atomic)
            ready = max((completions.get(d, 0) for d in instr.deps), default=0)
            earliest = max(ready, self.top - focus_span, 0)
            t, _ = self.place(op.costs, earliest)
            completions[instr.index] = t + op.result_latency
            times.append((t, completions[instr.index]))
        return times


def _grids_of(bins: BinSet):
    out = {}
    for bin_id, arr in bins.arrays.items():
        bools = arr.as_bools()
        out[bin_id] = bools + [False] * (_GRID - len(bools))
    return out


@settings(max_examples=120, deadline=None)
@given(_machines(), st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 12)), min_size=1, max_size=30,
))
def test_bin_set_place_matches_dense_oracle(machine, calls):
    """Each BinSet.place lands where a slot-by-slot scan says it must."""
    names = machine.table.names()
    bins = BinSet(machine)
    oracle = _DenseOracle(machine)
    for op_pick, earliest in calls:
        op = machine.table[names[op_pick % len(names)]]
        got = bins.place(op.costs, earliest)
        want_t, want_pipes = oracle.place(op.costs, earliest)
        assert got.time == want_t
        assert got.pipes == want_pipes
        assert bins.top() == oracle.top
    assert _grids_of(bins) == oracle.grids


@settings(max_examples=120, deadline=None)
@given(_machine_and_stream())
def test_kernels_and_oracle_agree_on_streams(case):
    """Fused kernel == legacy loop == dense oracle, bin state included."""
    machine, instrs, focus_span = case
    legacy_bins = BinSet(machine)
    fused_bins = BinSet(machine)
    legacy = _place_uncached(machine, instrs, focus_span, legacy_bins, "legacy")
    fused = _place_uncached(machine, instrs, focus_span, fused_bins, "fused")
    want = _DenseOracle(machine).drop_stream(instrs, focus_span)
    got_legacy = [(op.time, op.completion) for op in legacy.ops]
    got_fused = [(op.time, op.completion) for op in fused.ops]
    assert got_legacy == want
    assert got_fused == want
    assert fused.cycles == legacy.cycles
    assert fused.block == legacy.block
    assert _grids_of(fused_bins) == _grids_of(legacy_bins)
    assert fused_bins._top == legacy_bins._top == fused_bins._scan_top()
