"""Randomized properties of the signed-block slot array and bin top.

The slot array is the cost model's innermost data structure; these
tests drive random fill / query sequences against a naive boolean-list
oracle (``as_bools``) so block-merge and implicit-tail edge cases get
exercised far beyond the hand-written examples.
"""

from hypothesis import given, settings, strategies as st

from repro.cost import BinSet, SlotArray
from repro.machine import power_machine

#: (start, length) fill operations, biased around the growth boundary.
_fills = st.lists(
    st.tuples(st.integers(0, 200), st.integers(1, 24)),
    min_size=1, max_size=30,
)


def _oracle(bools, start, length):
    """Naive next_fit over an explicit boolean grid."""
    padded = list(bools) + [False] * (start + length + 1)
    s = start
    while True:
        if not any(padded[s:s + length]):
            return s
        s += 1
        if s + length > len(padded):
            return s


@settings(max_examples=60, deadline=None)
@given(_fills)
def test_fill_and_next_fit_match_boolean_oracle(ops):
    """Each op lands at next_fit(start); the grid must agree at every step."""
    array = SlotArray(capacity=8)      # tiny, so growth paths run
    grid: list[bool] = []
    for start, length in ops:
        landing = array.next_fit(start, length)
        assert landing == _oracle(grid, start, length)
        assert array.is_free(landing, length)
        array.fill(landing, length)
        if len(grid) < landing + length:
            grid.extend([False] * (landing + length - len(grid)))
        for i in range(landing, landing + length):
            grid[i] = True
    bools = array.as_bools()
    padded = grid + [False] * (len(bools) - len(grid))
    assert bools == padded
    filled = [i for i, b in enumerate(grid) if b]
    assert array.first_filled() == (filled[0] if filled else None)
    assert array.last_filled() == (filled[-1] if filled else None)
    assert array.filled_total == len(filled)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["fpu_arith", "fxu_add", "lsu_load",
                               "fpu_div", "fxu_store"]),
              st.integers(0, 40)),
    min_size=1, max_size=25,
))
def test_binset_running_top_matches_scan(ops):
    """The incrementally maintained top equals the O(bins) rescan."""
    machine = power_machine()
    bins = BinSet(machine)
    for atomic, earliest in ops:
        op = machine.atomic(atomic)
        bins.place(op.costs, earliest)
        assert bins.top() == bins._scan_top()
