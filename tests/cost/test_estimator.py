"""Tests for the straight-line estimator facade."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import StraightLineEstimator, place_stream, recommended_span
from repro.cost.focus import DEFAULT_SPAN, EXHAUSTIVE_SPAN, FAST_SPAN
from repro.machine import get_machine, power_machine
from repro.translate.stream import Instr, InstrStream


def _stream(specs, label="t"):
    stream = InstrStream(machine_name="power", label=label)
    for atomic, deps, one_time in specs:
        stream.append(atomic, deps, one_time=one_time)
    return stream


def test_estimate_basic():
    est = StraightLineEstimator(power_machine())
    stream = _stream([
        ("lsu_load", (), False),
        ("fpu_arith", (0,), False),
    ])
    cost = est.estimate(stream)
    assert cost.cycles == 4       # load 0..1, fadd at 2, result at 4
    assert cost.one_time_cycles == 0
    assert cost.total_first_iteration == 4
    assert cost.steady_cycles <= cost.cycles


def test_one_time_split():
    """Loop-invariant instructions go into their own bins (section 2.2.2)."""
    est = StraightLineEstimator(power_machine())
    stream = _stream([
        ("lsu_load", (), True),          # invariant load, hoisted
        ("fpu_arith", (0,), False),      # uses the hoisted value
        ("fpu_store", (1,), False),
    ])
    cost = est.estimate(stream)
    assert cost.one_time_cycles == 2
    # Iterative part: fadd (dep dropped: value in register) + store.
    assert cost.cycles == 4
    assert not cost.one_time_block.is_empty


def test_estimate_unrolled_factor_one_matches_estimate():
    est = StraightLineEstimator(power_machine())
    stream = _stream([
        ("lsu_load", (), False),
        ("fpu_arith", (0,), False),
    ])
    assert est.estimate_unrolled(stream, 1).cycles == est.estimate(stream).cycles


def test_estimate_unrolled_improves_sparse_body():
    """A latency-bound body gains from unrolling; per-iteration cost drops."""
    est = StraightLineEstimator(power_machine())
    stream = _stream([
        ("lsu_load", (), False),
        ("fpu_arith", (0,), False),
        ("fpu_store", (1,), False),
    ])
    base = est.estimate(stream).cycles
    unrolled4 = est.estimate_unrolled(stream, 4).cycles
    assert unrolled4 < 4 * base
    with pytest.raises(ValueError):
        est.estimate_unrolled(stream, 0)


def test_recommend_unroll_prefers_larger_for_latency_bound():
    est = StraightLineEstimator(power_machine())
    stream = _stream([
        ("lsu_load", (), False),
        ("fpu_arith", (0,), False),
        ("fpu_store", (1,), False),
    ])
    assert est.recommend_unroll(stream) > 1


def test_recommend_unroll_skips_saturated_body():
    """16 independent FMAs saturate the FPU: unrolling gains ~nothing."""
    est = StraightLineEstimator(power_machine())
    stream = _stream([("fpu_arith", (), False) for _ in range(16)])
    assert est.recommend_unroll(stream) == 1


def test_empty_stream():
    est = StraightLineEstimator(power_machine())
    cost = est.estimate(InstrStream())
    assert cost.cycles == 0 and cost.one_time_cycles == 0


def test_focus_span_constants():
    assert FAST_SPAN < DEFAULT_SPAN < EXHAUSTIVE_SPAN
    assert recommended_span(4) == FAST_SPAN
    assert recommended_span(1000) == DEFAULT_SPAN
    assert FAST_SPAN <= recommended_span(40) <= DEFAULT_SPAN


# ---------------------------------------------------------------------------
# Property tests: structural invariants of placement on random DAG streams.
# ---------------------------------------------------------------------------

_ATOMICS = ["fxu_add", "fpu_arith", "lsu_load", "fpu_store", "fxu_mul3"]


@st.composite
def random_streams(draw):
    n = draw(st.integers(1, 24))
    instrs = []
    for i in range(n):
        deps = ()
        if i and draw(st.booleans()):
            k = draw(st.integers(1, min(2, i)))
            deps = tuple(sorted(draw(
                st.sets(st.integers(0, i - 1), min_size=k, max_size=k)
            )))
        instrs.append(Instr(i, draw(st.sampled_from(_ATOMICS)), deps))
    return instrs


@given(random_streams())
@settings(max_examples=60, deadline=None)
def test_placement_respects_dependences(instrs):
    machine = power_machine()
    placed = place_stream(machine, instrs)
    for op in placed.ops:
        for dep in op.instr.deps:
            assert op.time >= placed.ops[dep].completion


@given(random_streams())
@settings(max_examples=60, deadline=None)
def test_cycles_bounded_by_serial_sum(instrs):
    """The overlap model never exceeds fully-serial execution."""
    machine = power_machine()
    placed = place_stream(machine, instrs)
    serial = sum(machine.atomic(i.atomic).result_latency for i in instrs)
    assert 0 < placed.cycles <= serial
    # And never beats the best single-unit occupancy bound.
    occupancy = {}
    for instr in instrs:
        for cost in machine.atomic(instr.atomic).costs:
            occupancy[cost.unit] = occupancy.get(cost.unit, 0) + cost.noncoverable
    assert placed.cycles >= max(occupancy.values(), default=0)


@given(random_streams(), st.integers(2, 8))
@settings(max_examples=40, deadline=None)
def test_narrow_focus_never_beats_wide(instrs, span):
    machine = power_machine()
    narrow = place_stream(machine, instrs, focus_span=span)
    wide = place_stream(machine, instrs, focus_span=EXHAUSTIVE_SPAN)
    assert narrow.cycles >= wide.cycles


@given(random_streams())
@settings(max_examples=40, deadline=None)
def test_wide_machine_never_slower(instrs):
    power = place_stream(get_machine("power"), instrs)
    wide = place_stream(get_machine("wide"), instrs)
    assert wide.cycles <= power.cycles
