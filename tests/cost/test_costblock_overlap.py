"""Tests for cost-block shapes and inter-block overlap (Figures 8-9)."""

from repro.cost import (
    CostBlock,
    combined_cycles,
    max_overlap,
    place_stream,
    steady_state_cycles,
)
from repro.machine import UnitKind, power_machine
from repro.translate.stream import Instr

FPU = (UnitKind.FPU, 0)
FXU = (UnitKind.FXU, 0)
LSU = (UnitKind.LSU, 0)


def _block(instrs):
    return place_stream(power_machine(), instrs).block


def test_empty_block():
    block = CostBlock.empty()
    assert block.is_empty
    assert block.cycles == 0
    assert max_overlap(block, block) == 0
    assert steady_state_cycles(block) == 0


def test_profiles_and_gaps():
    block = _block([
        Instr(0, "fxu_add"),
        Instr(1, "fxu_add"),
        Instr(2, "fpu_arith"),
    ])
    assert block.lo == 0
    assert block.occupied_hi == 2     # FXU slots 0..1
    assert block.completion == 2      # fpu result at 2 as well
    assert block.bottom_gap(FPU) == 0
    assert block.top_gap(FPU) == 1    # FPU used only at slot 0
    assert block.top_gap(FXU) == 0
    assert block.bottom_gap(LSU) is None


def test_critical_bins_and_density():
    block = _block([
        Instr(0, "fxu_add"),
        Instr(1, "fxu_add"),
        Instr(2, "fpu_arith"),
    ])
    assert block.critical_bins() == [FXU]
    assert block.density(FXU) == 1.0
    assert block.density(FPU) == 0.5


def test_unroll_headroom():
    dense = _block([Instr(i, "fpu_arith") for i in range(8)])
    assert dense.unroll_headroom() < 0.2
    sparse = _block([
        Instr(0, "fpu_arith"),
        Instr(1, "fpu_arith", deps=(0,)),
        Instr(2, "fpu_arith", deps=(1,)),
    ])
    # Dependent chain: FPU occupied 3 of 6 slots.
    assert sparse.unroll_headroom() >= 0.4


def test_overlap_complementary_shapes():
    """FXU-heavy block followed by FPU-heavy block: they interlock."""
    fxu_block = _block([Instr(i, "fxu_add") for i in range(4)])
    fpu_block = _block([Instr(i, "fpu_arith") for i in range(4)])
    overlap = max_overlap(fxu_block, fpu_block)
    # No shared bins: full overlap up to the smaller occupied span.
    assert overlap == min(fxu_block.occupied_cycles, fpu_block.occupied_cycles)


def test_overlap_same_unit_blocks():
    """Two FPU-saturated blocks cannot overlap at all."""
    a = _block([Instr(i, "fpu_arith") for i in range(4)])
    b = _block([Instr(i, "fpu_arith") for i in range(4)])
    assert max_overlap(a, b) == 0


def test_overlap_partial():
    """A block that tails off in FXU + one that ramps up in FXU."""
    a = _block([
        Instr(0, "fxu_add"),
        Instr(1, "fpu_arith", deps=(0,)),   # FPU at 1..2
        Instr(2, "fpu_arith", deps=(1,)),   # FPU slot 3
    ])
    b = _block([
        Instr(0, "fxu_add"),
        Instr(1, "fpu_arith", deps=(0,)),
    ])
    # a: FXU busy only at slot 0, FPU busy up to its top.
    # b: FXU busy at its bottom, FPU starts one slot up.
    # FXU allows 3 slots of overlap, FPU allows 1 -> overlap is 1.
    overlap = max_overlap(a, b)
    assert overlap == 1


def test_combined_cycles_never_worse_than_sum():
    a = _block([Instr(0, "fxu_add"), Instr(1, "fxu_add")])
    b = _block([Instr(0, "fpu_arith"), Instr(1, "fpu_arith")])
    assert combined_cycles(a, b) <= a.cycles + b.cycles
    assert combined_cycles(a, CostBlock.empty()) == a.cycles
    assert combined_cycles(CostBlock.empty(), b) == b.cycles


def test_steady_state_cycles_floor_is_critical_occupancy():
    """A saturated FPU body iterates at its occupancy, not lower."""
    block = _block([Instr(i, "fpu_arith") for i in range(4)])
    assert steady_state_cycles(block) == 4


def test_steady_state_cycles_sparse_body():
    """A body with one FP op per iteration can almost fully overlap."""
    block = _block([
        Instr(0, "lsu_load"),
        Instr(1, "fpu_arith", deps=(0,)),
    ])
    steady = steady_state_cycles(block)
    assert steady <= block.occupied_cycles
    assert steady >= 1


def test_str_rendering():
    block = _block([Instr(0, "fpu_arith")])
    assert "CostBlock" in str(block)
    assert "fpu" in str(block)
