"""The batch placement arena: dedup, prefix resume, and bit-identity.

Every assertion here is differential: whatever path a stream takes
through the arena (batch SoA drop, memo hit, digest dedup, prefix-
snapshot resume, sequential pool fork), the result must be the one the
legacy ``BinSet.place`` loop produces over fresh bins.  Both the numpy
lowering and the pure-``array`` fallback are exercised for each case.
"""

import random

import pytest

from repro.cost import (
    HAVE_NUMPY,
    PlacementArena,
    arena_cache_stats,
    arena_numpy_enabled,
    get_arena,
    place_batch,
    place_stream,
    reset_arenas,
    reset_columnar_cache,
    reset_placement_cache,
    set_arena_numpy,
    set_placement_kernel,
)
from repro.cost import arena as arena_mod
from repro.cost.columnar import compile_stream
from repro.cost.placement import _place_uncached
from repro.machine import power_machine
from repro.machine.wide import wide_machine
from repro.translate.stream import Instr, InstrStream

FOCUS = 64

#: Both lowerings of the prefix machinery, numpy one only if installed.
MODES = [False] + ([True] if HAVE_NUMPY else [])


def setup_function(_):
    reset_placement_cache()
    reset_columnar_cache()
    reset_arenas()


@pytest.fixture(params=MODES, ids=lambda on: "numpy" if on else "fallback")
def numpy_mode(request):
    previous = set_arena_numpy(request.param)
    yield request.param
    set_arena_numpy(previous)


def _ops(machine):
    return [
        name for name in machine.table.names()
        if all(machine.has_unit(c.unit)
               for c in machine.table[name].costs if c.noncoverable > 0)
    ]


def _stream(machine, n, seed, prefix=None):
    """A random stream; with ``prefix``, its first len(prefix) instrs."""
    rng = random.Random(seed)
    names = _ops(machine)
    instrs = list(prefix or [])
    for i in range(len(instrs), n):
        deps = tuple(rng.sample(range(i), k=min(i, rng.randint(0, 3))))
        instrs.append(Instr(i, rng.choice(names), deps=deps))
    return instrs


def _legacy(machine, instrs):
    return _place_uncached(machine, instrs, FOCUS, None, "legacy")


def _same_placement(got, want):
    assert [(o.time, o.completion) for o in got.ops] == \
           [(o.time, o.completion) for o in want.ops]
    assert got.cycles == want.cycles
    assert got.block == want.block


# ---------------------------------------------------------------------------
# Batch path


def test_batch_matches_legacy_per_stream(numpy_mode):
    machine = power_machine()
    shared = _stream(machine, 40, seed=7)
    streams = [_stream(machine, 60, seed=100 + k, prefix=shared)
               for k in range(8)]
    results = place_batch(machine, streams, FOCUS, use_memo=False)
    for instrs, placed in zip(streams, results):
        _same_placement(placed, _legacy(machine, instrs))
    stats = arena_cache_stats()
    assert stats["batches"] == 1 and stats["streams"] == 8
    assert stats["prefix_reuses"] >= 6          # siblings fork, not replay
    assert stats["prefix_ops_saved"] >= 6 * 16  # at least the first cut each


def test_batch_dedups_identical_streams(numpy_mode):
    machine = power_machine()
    base = _stream(machine, 30, seed=3)
    other = _stream(machine, 30, seed=4)
    results = place_batch(machine, [base, other, base, base], FOCUS,
                          use_memo=False)
    _same_placement(results[0], _legacy(machine, base))
    _same_placement(results[1], _legacy(machine, other))
    assert [(o.time, o.completion) for o in results[2].ops] == \
           [(o.time, o.completion) for o in results[0].ops]
    stats = arena_cache_stats()
    assert stats["dedup"] == 2
    assert stats["placed"] == 2                 # only the unique pair dropped


def test_batch_probes_and_feeds_the_placement_memo(numpy_mode):
    machine = power_machine()
    instrs = _stream(machine, 24, seed=11)
    warm = place_stream(machine, instrs, FOCUS)      # seeds the memo
    results = place_batch(machine, [instrs], FOCUS)
    _same_placement(results[0], warm)
    assert arena_cache_stats()["memo_hits"] == 1
    assert arena_cache_stats()["placed"] == 0
    # A fresh batch stream lands in the memo for later place_stream calls.
    fresh = _stream(machine, 24, seed=12)
    place_batch(machine, [fresh], FOCUS)
    before = arena_cache_stats()["placed"]
    _same_placement(place_stream(machine, fresh, FOCUS),
                    _legacy(machine, fresh))
    assert arena_cache_stats()["placed"] == before   # served by the memo


def test_batch_accepts_mixed_stream_types(numpy_mode):
    machine = power_machine()
    instrs = _stream(machine, 12, seed=5)
    stream = InstrStream()
    for i in instrs:
        stream.append(i.atomic, deps=i.deps)
    compiled = compile_stream(machine, instrs)
    results = place_batch(machine, [instrs, stream, compiled], FOCUS,
                          use_memo=False)
    want = _legacy(machine, instrs)
    _same_placement(results[0], want)
    _same_placement(results[2], want)
    assert results[1].cycles == want.cycles


def test_empty_batch_and_empty_stream(numpy_mode):
    machine = power_machine()
    assert place_batch(machine, [], FOCUS) == []
    results = place_batch(machine, [[]], FOCUS, use_memo=False)
    assert results[0].cycles == 0 and results[0].ops == ()


def test_foreign_compiled_stream_rejected():
    compiled = compile_stream(power_machine(), [Instr(0, "fpu_arith")])
    with pytest.raises(ValueError):
        get_arena(wide_machine()).place_batch([compiled])


# ---------------------------------------------------------------------------
# Sequential path (kernel="arena")


def test_arena_kernel_matches_legacy_and_pools_prefixes(numpy_mode):
    machine = power_machine()
    shared = _stream(machine, 80, seed=21)
    previous = set_placement_kernel("arena")
    try:
        for k in range(6):
            instrs = _stream(machine, 120, seed=300 + k, prefix=shared)
            placed = place_stream(machine, instrs, FOCUS)
            _same_placement(placed, _legacy(machine, instrs))
    finally:
        set_placement_kernel(previous)
    stats = arena_cache_stats()
    assert stats["prefix_reuses"] >= 5
    # Resumes happen at snapshot cuts <= the 80-instr shared prefix.
    assert stats["prefix_ops_saved"] >= 5 * 64


def test_arena_kernel_with_explicit_bins_downgrades_to_fused():
    """Pre-filled shared bins break the empty-start snapshot premise."""
    from repro.cost import BinSet

    machine = power_machine()
    instrs = _stream(machine, 16, seed=9)
    arena_bins = BinSet(machine)
    fused_bins = BinSet(machine)
    via_arena = _place_uncached(machine, instrs, FOCUS, arena_bins, "arena")
    via_fused = _place_uncached(machine, instrs, FOCUS, fused_bins, "fused")
    _same_placement(via_arena, via_fused)
    assert arena_cache_stats()["streams"] == 0   # the arena never saw it


def test_drop_pool_is_bounded():
    machine = power_machine()
    arena = get_arena(machine, FOCUS)
    for k in range(arena_mod.ARENA_POOL_LIMIT + 5):
        arena.drop(compile_stream(machine, _stream(machine, 20, seed=k)))
    assert len(arena._pool) == arena_mod.ARENA_POOL_LIMIT
    assert arena_cache_stats()["pool_entries"] == arena_mod.ARENA_POOL_LIMIT


# ---------------------------------------------------------------------------
# Toggles and registry


def test_set_arena_numpy_requires_numpy(monkeypatch):
    monkeypatch.setattr(arena_mod, "HAVE_NUMPY", False)
    with pytest.raises(RuntimeError):
        set_arena_numpy(True)


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
def test_numpy_toggle_round_trips():
    previous = set_arena_numpy(True)
    try:
        assert arena_numpy_enabled()
        assert set_arena_numpy(False) is True
        assert not arena_numpy_enabled()
    finally:
        set_arena_numpy(previous)


def test_lcp_agrees_across_lowerings():
    from array import array

    rng = random.Random(0)
    for _ in range(50):
        n = rng.randint(0, 300)
        a = array("q", [rng.randint(0, 5) for _ in range(n)])
        b = array("q", a)
        if n and rng.random() < 0.8:
            cut = rng.randrange(n)
            b[cut] = a[cut] + 1
        limit = min(len(a), len(b))
        previous = set_arena_numpy(False)
        try:
            fallback = arena_mod._lcp(a, b, limit)
            if HAVE_NUMPY:
                set_arena_numpy(True)
                assert arena_mod._lcp(a, b, limit) == fallback
        finally:
            set_arena_numpy(previous)
        want = limit
        for k in range(limit):
            if a[k] != b[k]:
                want = k
                break
        assert fallback == want


def test_get_arena_is_shared_and_keyed():
    machine = power_machine()
    assert get_arena(machine, 64) is get_arena(machine, 64)
    assert get_arena(machine, 64) is not get_arena(machine, 8)
    with pytest.raises(ValueError):
        PlacementArena(machine, focus_span=0)


def test_unknown_kernel_still_rejected():
    with pytest.raises(ValueError):
        set_placement_kernel("vectorized")
