"""The placement memo: keying, sharing, and bypass semantics."""

from repro.cost import (
    BinSet,
    PLACEMENT_CACHE_LIMIT,
    place_stream,
    placement_cache_stats,
    reset_placement_cache,
    stream_digest,
)
from repro.machine import power_machine
from repro.translate.stream import Instr


def _stream(k=4):
    return [Instr(i, "fpu_arith", deps=(i - 1,) if i else ()) for i in range(k)]


def setup_function(_):
    reset_placement_cache()


def test_repeat_stream_hits():
    machine = power_machine()
    first = place_stream(machine, _stream())
    second = place_stream(machine, _stream())
    stats = placement_cache_stats()
    assert stats == {"hits": 1, "misses": 1, "evictions": 0, "entries": 1}
    assert second.cycles == first.cycles
    assert [op.time for op in second.ops] == [op.time for op in first.ops]


def test_focus_span_is_part_of_the_key():
    machine = power_machine()
    place_stream(machine, _stream(), focus_span=64)
    place_stream(machine, _stream(), focus_span=8)
    assert placement_cache_stats()["misses"] == 2


def test_recalibrated_machine_misses(monkeypatch):
    """Same stream, retrained cost table -> the old entry must not match."""
    from repro.cost import placement as placement_mod

    machine = power_machine()
    place_stream(machine, _stream())
    assert placement_cache_stats()["misses"] == 1

    placement_mod._fingerprints.clear()
    monkeypatch.setattr(type(machine), "fingerprint",
                        lambda self: "deadbeefdeadbeef")
    try:
        place_stream(machine, _stream())
    finally:
        placement_mod._fingerprints.clear()
    stats = placement_cache_stats()
    assert stats["misses"] == 2 and stats["hits"] == 0


def test_explicit_bins_bypass_the_memo():
    """Shared pre-filled bins make placement stateful -- never memoized."""
    machine = power_machine()
    bins = BinSet(machine)
    place_stream(machine, _stream(), bins=bins)
    place_stream(machine, _stream(), bins=BinSet(machine))
    stats = placement_cache_stats()
    assert stats["hits"] == 0 and stats["misses"] == 0 and stats["entries"] == 0


def test_cached_result_is_mutation_safe():
    """The ops tuple is shared between hits; the type forbids mutation."""
    import pytest

    machine = power_machine()
    first = place_stream(machine, _stream())
    again = place_stream(machine, _stream())
    assert isinstance(first.ops, tuple)
    assert again.ops is first.ops          # shared, not copied per hit
    with pytest.raises(AttributeError):
        first.ops.append("garbage")
    # Reassigning a hit's *fields* must not corrupt the memo's master.
    first.ops = ()
    final = place_stream(machine, _stream())
    assert len(final.ops) == len(_stream())


def test_stream_digest_covers_deps_not_tags():
    plain = [Instr(0, "fpu_arith"), Instr(1, "fpu_arith")]
    chained = [Instr(0, "fpu_arith"), Instr(1, "fpu_arith", deps=(0,))]
    tagged = [Instr(0, "fpu_arith", tag="x"), Instr(1, "fpu_arith", tag="y")]
    assert stream_digest(plain) != stream_digest(chained)
    assert stream_digest(plain) == stream_digest(tagged)


def test_eviction_keeps_the_memo_bounded():
    machine = power_machine()
    for k in range(PLACEMENT_CACHE_LIMIT + 8):
        place_stream(machine, [Instr(i, "fpu_arith") for i in range(1 + k % 7)],
                     focus_span=16 + k)
    stats = placement_cache_stats()
    assert stats["entries"] == PLACEMENT_CACHE_LIMIT
    assert stats["evictions"] == 8
