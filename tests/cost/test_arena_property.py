"""Property test: arena placement is bit-identical to both oracles.

Random machines and random *batches* of streams -- biased so that many
share prefixes or are outright identical, the regime the arena's dedup
and snapshot machinery actually exercises -- must place element-wise
identically to the fused columnar kernel and the legacy ``BinSet.place``
loop: landing times, completions, pipe choices (via the bin grids the
sequential path returns), and the summary block.  Both the numpy and
pure-``array`` prefix lowerings run on every example.
"""

from hypothesis import given, settings, strategies as st

from repro.cost import (
    HAVE_NUMPY,
    get_arena,
    reset_arenas,
    reset_columnar_cache,
    reset_placement_cache,
    set_arena_numpy,
)
from repro.cost.columnar import compile_stream
from repro.cost.placement import _place_uncached
from repro.cost.bins import BinSet
from repro.machine.atomic import AtomicCostTable, AtomicOp
from repro.machine.machine import Machine
from repro.machine.units import FunctionalUnit, UnitCost, UnitKind
from repro.translate.stream import Instr

_KINDS = tuple(UnitKind)

_MODES = [False] + ([True] if HAVE_NUMPY else [])


@st.composite
def _machines(draw):
    n_units = draw(st.integers(1, 3))
    kinds = draw(st.permutations(_KINDS))[:n_units]
    units = tuple(
        FunctionalUnit(kind, draw(st.integers(1, 3))) for kind in kinds
    )
    table = AtomicCostTable()
    for i in range(draw(st.integers(1, 5))):
        n_costs = draw(st.integers(1, n_units))
        cost_kinds = draw(st.permutations(kinds))[:n_costs]
        costs = []
        for kind in cost_kinds:
            noncoverable = draw(st.integers(0, 4))
            coverable = draw(st.integers(0, 2))
            if noncoverable == 0 and coverable == 0:
                coverable = 1
            costs.append(UnitCost(kind, noncoverable, coverable))
        table.define(AtomicOp(f"op{i}", tuple(costs)))
    return Machine("hypo", units, table, {})


def _instrs(draw, names, n, start=0, base=()):
    instrs = list(base)
    for i in range(start, n):
        n_deps = draw(st.integers(0, min(i, 3)))
        deps = tuple(sorted(draw(
            st.sets(st.integers(0, i - 1), min_size=n_deps, max_size=n_deps)
        ))) if i else ()
        instrs.append(Instr(i, draw(st.sampled_from(names)), deps=deps))
    return instrs


@st.composite
def _machine_and_batch(draw):
    machine = draw(_machines())
    names = machine.table.names()
    shared_len = draw(st.integers(0, 20))
    shared = _instrs(draw, names, shared_len)
    batch = []
    for _ in range(draw(st.integers(1, 6))):
        kind = draw(st.integers(0, 3))
        if kind == 0 and batch:
            batch.append(list(draw(st.sampled_from(batch))))  # exact dup
        elif kind == 1:
            n = draw(st.integers(shared_len, shared_len + 12))
            batch.append(_instrs(draw, names, n, start=shared_len,
                                 base=shared))                # shared prefix
        else:
            batch.append(_instrs(draw, names, draw(st.integers(1, 24))))
    focus_span = draw(st.sampled_from([1, 3, 16, 64]))
    return machine, batch, focus_span


def _grids(bins: BinSet):
    return {bin_id: arr.as_bools() for bin_id, arr in bins.arrays.items()}


def _oracle(machine, instrs, focus_span):
    bins = BinSet(machine)
    placed = _place_uncached(machine, instrs, focus_span, bins, "legacy")
    return placed, bins


@settings(max_examples=60, deadline=None)
@given(_machine_and_batch())
def test_batch_path_matches_both_oracles(case):
    machine, batch, focus_span = case
    for mode in _MODES:
        reset_arenas()
        reset_placement_cache()
        reset_columnar_cache()
        previous = set_arena_numpy(mode)
        try:
            arena = get_arena(machine, focus_span)
            results = arena.place_batch(batch, use_memo=False)
            for instrs, placed in zip(batch, results):
                legacy, _ = _oracle(machine, instrs, focus_span)
                fused = _place_uncached(machine, instrs, focus_span,
                                        None, "fused")
                got = [(o.time, o.completion) for o in placed.ops]
                assert got == [(o.time, o.completion) for o in legacy.ops]
                assert got == [(o.time, o.completion) for o in fused.ops]
                assert placed.cycles == legacy.cycles
                assert placed.block == legacy.block == fused.block
        finally:
            set_arena_numpy(previous)


@settings(max_examples=60, deadline=None)
@given(_machine_and_batch())
def test_sequential_path_matches_both_oracles(case):
    """kernel="arena" drops, fed one at a time so the pool forks kick in."""
    machine, batch, focus_span = case
    for mode in _MODES:
        reset_arenas()
        reset_columnar_cache()
        previous = set_arena_numpy(mode)
        try:
            arena = get_arena(machine, focus_span)
            for instrs in batch:
                compiled = compile_stream(machine, instrs)
                times, completions, bins = arena.drop(compiled)
                legacy, legacy_bins = _oracle(machine, instrs, focus_span)
                assert times == [o.time for o in legacy.ops]
                assert completions == [o.completion for o in legacy.ops]
                assert _grids(bins) == _grids(legacy_bins)
                assert bins._top == legacy_bins._top == bins._scan_top()
        finally:
            set_arena_numpy(previous)
