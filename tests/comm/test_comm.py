"""Tests for the communication cost model."""

from fractions import Fraction

import pytest

from repro.comm import (
    CommunicationCostModel,
    NetworkParameters,
    broadcast_cost,
    ethernet_cluster,
    exchange_cost,
    reduce_cost,
    send_cost,
    shift_cost,
    sp1_network,
)
from repro.ir import parse_fragment
from repro.symbolic import PerfExpr, UnknownKind


def test_network_validation():
    with pytest.raises(ValueError):
        NetworkParameters("bad", 0, 10, Fraction(1))
    with pytest.raises(ValueError):
        NetworkParameters("bad", 4, -1, Fraction(1))


def test_send_cost_linear_in_bytes():
    net = sp1_network()
    small = send_cost(net, 100).constant_value()
    large = send_cost(net, 1000).constant_value()
    assert large > small
    # alpha dominates small messages.
    assert small > net.startup_cycles
    assert large - small == Fraction(900) * net.cycles_per_byte


def test_send_cost_symbolic_size():
    net = sp1_network()
    msg = PerfExpr.unknown("m", UnknownKind.PARAMETER)
    cost = send_cost(net, msg)
    assert "m" in cost.poly.variables()
    assert cost.poly.degree("m") == 1


def test_broadcast_log_steps():
    net16 = sp1_network(16)
    net4 = sp1_network(4)
    c16 = broadcast_cost(net16, 1000).constant_value()
    c4 = broadcast_cost(net4, 1000).constant_value()
    assert c16 == 2 * c4  # log2(16)=4 vs log2(4)=2


def test_reduce_more_expensive_than_send():
    net = sp1_network()
    assert reduce_cost(net, 4096).constant_value() > send_cost(net, 4096).constant_value()


def test_exchange_scales_with_processors():
    small = exchange_cost(sp1_network(4), 100).constant_value()
    big = exchange_cost(sp1_network(32), 100).constant_value()
    assert big > small


def test_ethernet_contention_penalty():
    eth = ethernet_cluster()
    sp = sp1_network(eth.processors)
    assert shift_cost(eth, 1000).constant_value() > shift_cost(sp, 1000).constant_value()


def test_model_prices_recognized_calls():
    model = CommunicationCostModel(sp1_network())
    (stmt,) = parse_fragment("call broadcast(n)\n")
    assert model.recognizes("broadcast")
    cost = model.call_cost(stmt)
    assert "n" in cost.poly.variables()
    assert not model.recognizes("dgemm")


def test_block_distribution_cost():
    model = CommunicationCostModel(sp1_network(), element_bytes=8)
    n = PerfExpr.unknown("n", UnknownKind.PARAMETER)
    cost = model.block_distribution_cost(n)
    assert cost.poly.degree("n") == 1
    # Two shifts pay two startups.
    const_term = cost.poly.coeffs_by_var("n").get(0)
    assert const_term.constant_value() >= 2 * sp1_network().startup_cycles


def test_processors_unknown():
    model = CommunicationCostModel(sp1_network(16))
    p = model.processors_unknown()
    assert p.bounds["nproc"].hi == 16
