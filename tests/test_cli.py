"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_bindings, _parse_domain, main

SAXPY = """
program saxpy
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""

SAXPY_UNROLLED = """
program saxpy2
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n, 2
    y(i) = y(i) + alpha * x(i)
    y(i+1) = y(i+1) + alpha * x(i+1)
  end do
end
"""


@pytest.fixture
def saxpy_file(tmp_path):
    path = tmp_path / "saxpy.f"
    path.write_text(SAXPY)
    return str(path)


@pytest.fixture
def unrolled_file(tmp_path):
    path = tmp_path / "saxpy2.f"
    path.write_text(SAXPY_UNROLLED)
    return str(path)


def test_parse_bindings():
    assert _parse_bindings("n=100,m=50") == {"n": 100, "m": 50}
    assert _parse_bindings(None) == {}
    with pytest.raises(SystemExit):
        _parse_bindings("n")


def test_parse_domain():
    domain = _parse_domain("n=1:1000")
    assert domain["n"].lo == 1 and domain["n"].hi == 1000
    assert _parse_domain(None) == {}
    with pytest.raises(SystemExit):
        _parse_domain("n=5")


def test_predict_command(saxpy_file, capsys):
    assert main(["predict", saxpy_file, "--at", "n=100"]) == 0
    out = capsys.readouterr().out
    assert "cost[power]" in out
    assert "308 cycles" in out


def test_predict_with_memory_and_machine(saxpy_file, capsys):
    assert main(["predict", saxpy_file, "--machine", "scalar",
                 "--memory"]) == 0
    out = capsys.readouterr().out
    assert "cost[scalar]" in out


def test_predict_naive_backend_higher(saxpy_file, capsys):
    main(["predict", saxpy_file, "--at", "n=100"])
    aggressive = capsys.readouterr().out
    main(["predict", saxpy_file, "--backend", "naive", "--at", "n=100"])
    naive = capsys.readouterr().out

    def cycles(text):
        return int(text.split("at n=100:")[1].split("cycles")[0].strip())

    assert cycles(naive) > cycles(aggressive)


def test_compare_command(saxpy_file, unrolled_file, capsys):
    assert main(["compare", unrolled_file, saxpy_file,
                 "--domain", "n=1:100000"]) == 0
    out = capsys.readouterr().out
    assert "verdict:" in out


def test_restructure_command(saxpy_file, capsys):
    assert main(["restructure", saxpy_file, "--workload", "n=1000",
                 "--depth", "1"]) == 0
    out = capsys.readouterr().out
    assert "sequence:" in out
    assert "cost:" in out


def test_kernels_command(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "matmul" in out and "jacobi" in out


def test_machines_command(capsys):
    assert main(["machines"]) == 0
    out = capsys.readouterr().out
    assert "power" in out and "scalar" in out and "wide" in out


def test_predict_json(saxpy_file, capsys):
    assert main(["predict", saxpy_file, "--at", "n=100", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["cost"] == "3*n + 8"
    assert data["cycles"] == "308"
    assert len(data["digest"]) == 64


def test_predict_json_without_bindings(saxpy_file, capsys):
    assert main(["predict", saxpy_file, "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["cycles"] is None
    assert data["variables"] == ["n"]


def test_compare_json(saxpy_file, unrolled_file, capsys):
    assert main(["compare", unrolled_file, saxpy_file,
                 "--domain", "n=1:100000", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "verdict" in data
    assert data["digest_first"] != data["digest_second"]


def test_kernels_json(capsys):
    assert main(["kernels", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    names = {row["kernel"] for row in data["rows"]}
    assert {"matmul", "jacobi", "rb"} <= names
    for row in data["rows"]:
        assert set(row) == {"kernel", "predicted", "reference", "error_pct"}


def test_predict_json_parse_error(tmp_path, capsys):
    bad = tmp_path / "bad.f"
    bad.write_text("program broken\n  do i =\nend\n")
    assert main(["predict", str(bad), "--json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["status"] == 400


def test_serve_subcommand_registered():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--port", "0", "--workers", "2", "--cache-size", "64"])
    assert args.port == 0 and args.workers == 2 and args.cache_size == 64


def test_missing_file():
    with pytest.raises(SystemExit):
        main(["predict", "/nonexistent/prog.f"])


def test_bad_command():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_predict_trace_writes_chrome_json(saxpy_file, tmp_path, capsys):
    # Start cold: a warm placement memo would answer without running
    # the cost.place span this test asserts on.
    from repro.cost import reset_placement_cache
    reset_placement_cache()

    trace_path = tmp_path / "trace.json"
    assert main(["predict", saxpy_file, "--trace", str(trace_path)]) == 0
    assert "cost[power]" in capsys.readouterr().out
    document = json.loads(trace_path.read_text())
    events = [e for e in document["traceEvents"] if e.get("ph") == "X"]
    names = {e["name"] for e in events}
    assert "cli.predict" in names
    assert {"translate.specialize", "cost.place", "aggregate.loop"} <= names
    for event in events:
        assert event["dur"] >= 0 and event["ts"] > 0


def test_compare_trace_flag(saxpy_file, unrolled_file, tmp_path, capsys):
    trace_path = tmp_path / "cmp.json"
    assert main(["compare", saxpy_file, unrolled_file,
                 "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    names = {e["name"]
             for e in json.loads(trace_path.read_text())["traceEvents"]
             if e.get("ph") == "X"}
    assert "cli.compare" in names


def test_restructure_trace_has_search_span(saxpy_file, tmp_path, capsys):
    trace_path = tmp_path / "rs.json"
    assert main(["restructure", saxpy_file, "--workload", "n=64",
                 "--depth", "1", "--trace", str(trace_path)]) == 0
    capsys.readouterr()
    names = {e["name"]
             for e in json.loads(trace_path.read_text())["traceEvents"]
             if e.get("ph") == "X"}
    assert "transform.search" in names


def test_untraced_run_writes_nothing(saxpy_file, tmp_path, capsys):
    assert main(["predict", saxpy_file]) == 0
    capsys.readouterr()
    assert not list(tmp_path.glob("*.json"))


# ----------------------------------------------------------------------
# tiered fidelity: surrogate train + predict --fidelity


def _build_training_cache(path, sizes=range(1, 31)):
    from repro.service import PredictionEngine

    with PredictionEngine(workers=0, cache_size=256,
                          cache_path=str(path)) as engine:
        for n in sizes:
            result = engine.handle(
                "predict", {"source": SAXPY, "bindings": {"n": n}})
            assert "error" not in result


def test_surrogate_train_bootstraps_models(tmp_path, capsys):
    cache = tmp_path / "cache.jsonl"
    _build_training_cache(cache)
    store = tmp_path / "models.json"
    assert main(["surrogate", "train", "--cache", str(cache),
                 "--store", str(store)]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["samples"] == 30
    assert "power" in summary["models"]
    assert store.exists()


def test_surrogate_train_empty_cache_fails(tmp_path, capsys):
    cache = tmp_path / "cache.jsonl"
    cache.write_text("")
    assert main(["surrogate", "train", "--cache", str(cache)]) == 1
    assert json.loads(capsys.readouterr().out)["models"] == {}


def test_predict_fast_fidelity_from_store(tmp_path, saxpy_file, capsys):
    cache = tmp_path / "cache.jsonl"
    _build_training_cache(cache)
    store = tmp_path / "models.json"
    assert main(["surrogate", "train", "--cache", str(cache),
                 "--store", str(store)]) == 0
    capsys.readouterr()
    assert main(["predict", saxpy_file, "--at", "n=50",
                 "--fidelity", "fast", "--surrogate-store", str(store)]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["fidelity"] == "fast"
    lo, hi = data["interval"]
    assert lo <= float(data["cycles"]) <= hi
    # truth is 3n+8 = 158; the surrogate trained on exact labels
    assert abs(float(data["cycles"]) - 158.0) < 5.0


def test_predict_fast_without_model_falls_through(saxpy_file, tmp_path,
                                                  capsys):
    missing = tmp_path / "nope.json"
    assert main(["predict", saxpy_file, "--at", "n=100",
                 "--fidelity", "fast",
                 "--surrogate-store", str(missing)]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "fidelity" not in data          # exact tier answered
    assert data["cycles"] == "308"


def test_predict_auto_fidelity_tolerance(tmp_path, saxpy_file, capsys):
    cache = tmp_path / "cache.jsonl"
    _build_training_cache(cache)
    store = tmp_path / "models.json"
    main(["surrogate", "train", "--cache", str(cache),
          "--store", str(store)])
    capsys.readouterr()
    assert main(["predict", saxpy_file, "--at", "n=50",
                 "--fidelity", "auto", "--tolerance", "1e-12",
                 "--surrogate-store", str(store)]) == 0
    data = json.loads(capsys.readouterr().out)
    assert "fidelity" not in data          # interval too wide: exact
    assert data["cycles"] == "158"


def test_calibrate_command(tmp_path, capsys):
    out_path = tmp_path / "power-calib.json"
    assert main(["calibrate", "--machine", "power",
                 "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "mean rel error" in out
    payload = json.loads(out_path.read_text())
    assert payload["format"] == "repro-cost-table-v1"
    assert "fpu_arith" in payload["table"]


def test_calibrate_json_output(capsys):
    assert main(["calibrate", "--machine", "power", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["format"] == "repro-cost-table-v1"


def test_sweep_command(saxpy_file, capsys):
    assert main(["sweep", saxpy_file, "--at", "n=100",
                 "--widths", "1,2,4"]) == 0
    out = capsys.readouterr().out
    assert "saturates at width" in out
    # Width 1 is fetch-bound at exactly one instruction per cycle.
    assert " 1 " in out or out.lstrip().startswith("1")


def test_sweep_json_output(saxpy_file, capsys):
    assert main(["sweep", saxpy_file, "--at", "n=100", "--widths", "1,8",
                 "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["widths"] == [1, 8]
    assert data["points"][0]["ipc"] == 1.0


def test_sweep_over_calibrated_table(saxpy_file, tmp_path, capsys):
    table = tmp_path / "table.json"
    main(["calibrate", "--machine", "power", "--out", str(table)])
    capsys.readouterr()
    assert main(["sweep", saxpy_file, "--at", "n=100",
                 "--table", str(table), "--widths", "2,4", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data["points"]) == 2
