"""Tests for the op-count and guessing baselines."""

from fractions import Fraction

import pytest

from repro.baselines import (
    GuessPolicy,
    OpCountEstimator,
    guess_all,
    guessed_comparison,
    opcount_cycles,
)
from repro.cost import StraightLineEstimator
from repro.machine import power_machine, scalar_machine
from repro.symbolic import Interval, PerfExpr, UnknownKind
from repro.translate.stream import Instr, InstrStream


def _fma_stream(k):
    stream = InstrStream(machine_name="power")
    for _ in range(k):
        stream.append("fpu_arith")
    return stream


def test_opcount_overestimates_overlapped_code():
    """The paper's 'factor of ten' gap on overlap-rich code."""
    machine = power_machine()
    stream = _fma_stream(16)
    naive = OpCountEstimator(machine).estimate(stream).cycles
    tetris = StraightLineEstimator(machine).estimate(stream).cycles
    assert naive == 32          # 16 ops * 2 cycles
    assert tetris == 17
    assert naive / tetris > 1.8


def test_opcount_close_on_scalar_machine():
    """On a non-overlapping machine the baseline is nearly right."""
    machine = scalar_machine()
    stream = InstrStream(machine_name="scalar")
    a = stream.append("alu_load").index
    b = stream.append("alu_load").index
    stream.append("alu_fadd", (a, b))
    naive = OpCountEstimator(machine).estimate(stream).cycles
    tetris = StraightLineEstimator(machine).estimate(stream).cycles
    assert naive == tetris


def test_opcount_cycles_function():
    machine = power_machine()
    instrs = [Instr(0, "fpu_arith"), Instr(1, "lsu_load")]
    assert opcount_cycles(machine, instrs) == 4


def test_opcount_one_time_split_respected():
    machine = power_machine()
    stream = InstrStream()
    stream.append("lsu_load", one_time=True)
    stream.append("fpu_arith")
    cost = OpCountEstimator(machine).estimate(stream)
    assert cost.one_time_cycles == 2
    assert cost.cycles == 2
    assert cost.steady_cycles == cost.cycles  # no overlap credit


def test_opcount_never_recommends_unroll():
    machine = power_machine()
    est = OpCountEstimator(machine)
    stream = _fma_stream(2)
    assert est.recommend_unroll(stream) == 1
    assert est.estimate_unrolled(stream, 4).cycles == 4 * est.estimate(stream).cycles
    with pytest.raises(ValueError):
        est.estimate_unrolled(stream, 0)


def test_opcount_in_aggregator():
    """Swapping the estimator into the aggregator inflates loop costs."""
    from repro.aggregate import CostAggregator
    from repro.ir import SymbolTable, parse_program
    from repro.translate import AGGRESSIVE_BACKEND

    prog = parse_program(
        "program t\n  integer n, i\n  real a(n), b(n), c(n)\n"
        "  do i = 1, n\n    c(i) = a(i) + b(i)\n  end do\nend\n"
    )
    table = SymbolTable.from_program(prog)
    machine = power_machine()
    precise = CostAggregator(machine, table)
    naive = CostAggregator(
        machine, table, flags=AGGRESSIVE_BACKEND.without(overlap_iterations=True)
    )
    naive.estimator = OpCountEstimator(machine)
    p = precise.cost_program(prog).evaluate({"n": 1000})
    q = naive.cost_program(prog).evaluate({"n": 1000})
    assert q >= 1.9 * p


def test_guess_policy_defaults():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT)
    pt = PerfExpr.unknown("pt", UnknownKind.BRANCH_PROB)
    expr = 3 * n + 10 * pt
    value = guess_all(expr)
    assert value == 3 * 100 + 10 * Fraction(1, 2)


def test_guess_policy_custom():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT)
    assert guess_all(2 * n, GuessPolicy(trip_count=Fraction(7))) == 14


def test_guessed_comparison_can_be_wrong():
    """The canonical failure: the guess picks f, reality prefers g."""
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 10 ** 6))
    cost_f = 2 * n + 50          # cheap per-iteration, big setup? no: 
    cost_g = 3 * n               # cheaper below n=50, pricier above
    verdict = guessed_comparison(cost_f, cost_g)   # at n=100: f=250,g=300
    assert verdict == -1  # guess says f wins
    # But for small n (the actual workload, say n=10) g wins:
    assert cost_g.evaluate({"n": 10}) < cost_f.evaluate({"n": 10})


def test_guess_unknown_without_metadata():
    expr = PerfExpr(PerfExpr.unknown("q").poly)  # no unknown table entry
    assert guess_all(expr) == 100  # parameter default
