"""Property-based round-trip tests for the mini-Fortran front-end.

Random programs are synthesized with the builder API, printed, and
reparsed; the result must be structurally identical.  This pins the
printer/parser pair against each other across a much wider space than
the hand-written cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import builder as b
from repro.ir import parse_program, print_program
from repro.ir.nodes import Expr, Stmt
from repro.ir.types import ScalarType

_SCALARS = ["x", "y", "z"]
_ARRAYS = ["aa", "bb"]
_INDICES = ["i", "j"]


@st.composite
def expressions(draw, depth: int = 0) -> Expr:
    if depth >= 3:
        choice = draw(st.integers(0, 2))
    else:
        choice = draw(st.integers(0, 5))
    if choice == 0:
        return b.lit(draw(st.integers(0, 99)))
    if choice == 1:
        return b.var(draw(st.sampled_from(_SCALARS + _INDICES)))
    if choice == 2:
        index = b.add(b.var(draw(st.sampled_from(_INDICES))),
                      b.lit(draw(st.integers(0, 3))))
        return b.aref(draw(st.sampled_from(_ARRAYS)), index)
    if choice == 3:
        op = draw(st.sampled_from([b.add, b.sub, b.mul, b.div]))
        return op(draw(expressions(depth + 1)), draw(expressions(depth + 1)))
    if choice == 4:
        return b.neg(draw(expressions(depth + 1)))
    return b.pow_(draw(expressions(depth + 1)), b.lit(draw(st.integers(2, 3))))


@st.composite
def statements(draw, depth: int = 0) -> Stmt:
    choice = draw(st.integers(0, 3 if depth < 2 else 1))
    if choice <= 1:
        target = draw(st.one_of(
            st.sampled_from(_SCALARS).map(b.var),
            st.builds(
                lambda name, idx: b.aref(name, b.var(idx)),
                st.sampled_from(_ARRAYS), st.sampled_from(_INDICES),
            ),
        ))
        return b.assign(target, draw(expressions()))
    if choice == 2:
        body = draw(st.lists(statements(depth + 1), min_size=1, max_size=3))
        index = draw(st.sampled_from(_INDICES))
        return b.do_(index, 1, draw(expressions(2)), body,
                     step=draw(st.sampled_from([1, 2])))
    cond = b.le(draw(expressions(2)), draw(expressions(2)))
    then_body = draw(st.lists(statements(depth + 1), min_size=1, max_size=2))
    else_body = draw(st.lists(statements(depth + 1), min_size=0, max_size=2))
    return b.if_(cond, then_body, else_body)


@st.composite
def programs(draw):
    decls = [b.decl(name) for name in _SCALARS]
    decls += [b.array_decl(name, "n+8") for name in _ARRAYS]
    decls += [b.decl(name, scalar=ScalarType.INTEGER)
              for name in _INDICES + ["n"]]
    body = draw(st.lists(statements(), min_size=1, max_size=4))
    return b.program("proptest", decls, body)


@given(programs())
@settings(max_examples=60, deadline=None)
def test_print_parse_roundtrip(program):
    text = print_program(program)
    assert parse_program(text) == program


@given(programs())
@settings(max_examples=30, deadline=None)
def test_random_programs_predict_without_error(program):
    """Every syntactically valid program gets *some* cost expression."""
    import repro

    cost = repro.predict(program)
    # Costs are polynomials with rational coefficients; evaluating at a
    # harmless point must not fail.  (The value itself may be negative
    # when the random program has loops like `do i = 1, -x`: symbolic
    # trip counts are the signed polynomial extension, and points where
    # they dip below zero represent zero-trip loops -- outside the
    # modeled regime, as in the paper.)
    from fractions import Fraction

    env = {name: 7 for name in cost.poly.variables()}
    value = cost.evaluate(env)
    assert isinstance(value, Fraction)
