"""Canonical content hashing of programs."""

from repro.ir import parse_program, program_digest, source_digest

BASE = """
program saxpy
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""

# The same program with noisy formatting and split declarations.
REFORMATTED = """
program saxpy
  integer n
  integer i
  real x(n)
  real y(n)
  real alpha

  do i = 1, n
      y(i)   = y(i) + alpha*x(i)
  end do
end
"""

RENAMED_INDEX = """
program saxpy
  integer n, j
  real x(n), y(n), alpha
  do j = 1, n
    y(j) = y(j) + alpha * x(j)
  end do
end
"""

EXTRA_STATEMENT = """
program saxpy
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
    x(i) = y(i)
  end do
end
"""


def test_digest_is_stable():
    program = parse_program(BASE)
    assert program_digest(program) == program_digest(program)
    assert program_digest(program) == program_digest(parse_program(BASE))


def test_digest_shape():
    digest = program_digest(parse_program(BASE))
    assert len(digest) == 64
    assert all(c in "0123456789abcdef" for c in digest)


def test_structurally_equal_programs_collide():
    assert (program_digest(parse_program(BASE))
            == program_digest(parse_program(REFORMATTED)))


def test_variants_do_not_collide():
    base = program_digest(parse_program(BASE))
    assert base != program_digest(parse_program(RENAMED_INDEX))
    assert base != program_digest(parse_program(EXTRA_STATEMENT))


def test_different_name_different_digest():
    renamed = BASE.replace("program saxpy", "program daxpy")
    assert (program_digest(parse_program(BASE))
            != program_digest(parse_program(renamed)))


def test_source_digest_is_raw():
    assert source_digest("a") != source_digest("a ")


# ----------------------------------------------------------------------
# structural statement digests (the search's seen-set key)


def test_stmts_digest_matches_structural_equality():
    from repro.ir import stmts_digest

    base = parse_program(BASE)
    assert stmts_digest(base.body) == stmts_digest(parse_program(BASE).body)
    assert (stmts_digest(base.body)
            == stmts_digest(parse_program(REFORMATTED).body))


def test_stmts_digest_separates_variants():
    from repro.ir import stmts_digest

    base = stmts_digest(parse_program(BASE).body)
    assert base != stmts_digest(parse_program(RENAMED_INDEX).body)
    assert base != stmts_digest(parse_program(EXTRA_STATEMENT).body)


def test_stmts_digest_ignores_declarations_and_name():
    """Unlike program_digest, only the executable body is hashed."""
    from repro.ir import stmts_digest

    renamed = BASE.replace("program saxpy", "program daxpy")
    assert (stmts_digest(parse_program(BASE).body)
            == stmts_digest(parse_program(renamed).body))


def test_stmts_digest_is_order_sensitive():
    from repro.ir import stmts_digest

    two = parse_program(EXTRA_STATEMENT)
    loop = two.body[0]
    forward = stmts_digest(loop.body)
    backward = stmts_digest(list(reversed(loop.body)))
    assert forward != backward


def test_node_digest_memo_survives_shared_subtrees():
    """Shared subtrees hash once; digests stay correct and distinct."""
    from repro.ir import node_digest

    loop = parse_program(BASE).body[0]
    first = node_digest(loop)
    assert node_digest(loop) == first            # id-memo hit
    other = parse_program(EXTRA_STATEMENT).body[0]
    assert node_digest(other) != first
