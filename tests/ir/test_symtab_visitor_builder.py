"""Tests for the symbol table, visitors, and builder helpers."""

import pytest

from repro.ir import (
    ArrayRef,
    Assign,
    Do,
    IntConst,
    ScalarType,
    SymbolTable,
    TypeError_,
    VarRef,
    map_stmts,
    parse_expression,
    parse_fragment,
    parse_program,
    rename_index,
    substitute_var,
    walk_exprs,
    walk_stmts,
)
from repro.ir import builder as b


def _table():
    prog = parse_program(
        """
program t
  integer n, i
  real x, a(n)
  double precision d
  logical flag
  x = 1.0
end
"""
    )
    return SymbolTable.from_program(prog)


def test_declared_types():
    table = _table()
    assert table.scalar_type("n") is ScalarType.INTEGER
    assert table.scalar_type("x") is ScalarType.REAL
    assert table.scalar_type("d") is ScalarType.DOUBLE
    assert table.scalar_type("flag") is ScalarType.LOGICAL
    assert table.is_array("a") and not table.is_array("x")
    assert table.array_type("a").dims == ("n",)


def test_implicit_typing():
    table = SymbolTable()
    assert table.scalar_type("i") is ScalarType.INTEGER
    assert table.scalar_type("m") is ScalarType.INTEGER
    assert table.scalar_type("x") is ScalarType.REAL
    assert table.scalar_type("alpha") is ScalarType.REAL


def test_expression_typing():
    table = _table()
    assert table.type_of(parse_expression("i + n")) is ScalarType.INTEGER
    assert table.type_of(parse_expression("x + i")) is ScalarType.REAL
    assert table.type_of(parse_expression("d * x")) is ScalarType.DOUBLE
    assert table.type_of(parse_expression("i .lt. n")) is ScalarType.LOGICAL
    assert table.type_of(parse_expression("a(i)")) is ScalarType.REAL
    assert table.type_of(parse_expression("i / n")) is ScalarType.INTEGER
    assert table.type_of(parse_expression("x / i")) is ScalarType.REAL


def test_intrinsic_typing():
    table = _table()
    assert table.type_of(parse_expression("sqrt(x)")) is ScalarType.REAL
    assert table.type_of(parse_expression("sqrt(d)")) is ScalarType.DOUBLE
    assert table.type_of(parse_expression("int(x)")) is ScalarType.INTEGER
    assert table.type_of(parse_expression("abs(i)")) is ScalarType.INTEGER
    assert table.type_of(parse_expression("max(i, x)")) is ScalarType.REAL


def test_logical_join_rejected():
    table = _table()
    with pytest.raises(TypeError_):
        table.type_of(parse_expression("flag + i"))


def test_walk_exprs_counts_nodes():
    expr = parse_expression("a(i) + b(i) * c")
    nodes = list(walk_exprs(expr))
    # +, a(i), i, b(i)*c, b(i), i, c
    assert len(nodes) == 7


def test_walk_stmts_descends():
    stmts = parse_fragment(
        "do i = 1, n\n  if (i .gt. 0) then\n    x = 1\n  end if\nend do\n"
    )
    kinds = [type(s).__name__ for s in walk_stmts(stmts)]
    assert kinds == ["Do", "If", "Assign"]


def test_substitute_var():
    expr = parse_expression("a(i) + i * 2")
    swapped = substitute_var(expr, "i", parse_expression("i + 4"))
    assert "i + 4" in str(swapped) or "(i + 4)" in str(swapped)
    # Original untouched (immutability).
    assert "4" not in str(expr)


def test_rename_index():
    stmts = parse_fragment("a(i) = a(i) + 1.0\n")
    renamed = rename_index(stmts, "i", IntConst(3))
    target = renamed[0].target
    assert isinstance(target, ArrayRef)
    assert target.subscripts == (IntConst(3),)


def test_map_stmts_delete_and_splice():
    stmts = parse_fragment("x = 1\ny = 2\n")

    def drop_x(stmt):
        if isinstance(stmt, Assign) and isinstance(stmt.target, VarRef):
            if stmt.target.name == "x":
                return None
        return stmt

    remaining = map_stmts(stmts, stmt_fn=drop_x)
    assert len(remaining) == 1

    def duplicate(stmt):
        return (stmt, stmt)

    doubled = map_stmts(stmts, stmt_fn=duplicate)
    assert len(doubled) == 4


def test_builder_roundtrip():
    loop = b.do_(
        "i", 1, b.var("n"),
        body=[b.assign(b.aref("c", b.var("i")),
                       b.add(b.aref("a", b.var("i")), b.aref("b", b.var("i"))))],
    )
    assert isinstance(loop, Do)
    assert loop.lb == IntConst(1)
    assert isinstance(loop.body[0], Assign)


def test_builder_operators():
    expr = b.mul(b.add("x", 1), b.var("y"))
    assert str(expr) == "((x + 1) * y)"
    cond = b.if_(b.le("i", "k"), [b.assign("x", 1)], [b.assign("x", 2)])
    assert len(cond.then_body) == 1 and len(cond.else_body) == 1


def test_builder_program():
    prog = b.program(
        "t",
        [b.decl("x"), b.array_decl("a", "n")],
        [b.assign("x", b.lit(1.5))],
    )
    assert prog.decl_of("a").is_array
    assert prog.decl_of("x").scalar is ScalarType.REAL
