"""Tests for the mini-Fortran parser."""

import pytest

from repro.ir import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    Do,
    FuncCall,
    If,
    IntConst,
    ParseError,
    RealConst,
    ScalarType,
    UnOp,
    VarRef,
    parse_expression,
    parse_fragment,
    parse_program,
)

MATMUL = """
program matmul
  integer n, i, j, k
  real a(n,n), b(n,n), c(n,n)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end program
"""


def test_parse_matmul_structure():
    prog = parse_program(MATMUL)
    assert prog.name == "matmul"
    assert len(prog.decls) == 7
    assert prog.decl_of("a").array.dims == ("n", "n")
    assert prog.decl_of("n").scalar is ScalarType.INTEGER
    (outer,) = prog.body
    assert isinstance(outer, Do) and outer.var == "i"
    inner = outer.body[0].body[0]
    assert isinstance(inner, Do) and inner.var == "k"
    assignment = inner.body[0]
    assert isinstance(assignment, Assign)
    assert isinstance(assignment.target, ArrayRef)


def test_do_with_step():
    (loop,) = parse_fragment("do i = 1, n, 2\n  x = x + 1\nend do\n")
    assert isinstance(loop, Do)
    assert loop.step == IntConst(2)


def test_do_enddo_spelling():
    (loop,) = parse_fragment("do i = 1, 10\n  x = i\nenddo\n")
    assert isinstance(loop, Do)


def test_if_then_else():
    (cond,) = parse_fragment(
        "if (i .le. k) then\n  x = 1\nelse\n  x = 2\nend if\n"
    )
    assert isinstance(cond, If)
    assert isinstance(cond.cond, BinOp) and cond.cond.op == ".le."
    assert len(cond.then_body) == 1 and len(cond.else_body) == 1


def test_if_without_else():
    (cond,) = parse_fragment("if (x .gt. 0) then\n  y = 1\nendif\n")
    assert cond.else_body == ()


def test_nested_if_in_do():
    src = """
do i = 1, n
  if (i .le. k) then
    a(i) = 0.0
  else
    a(i) = 1.0
  end if
end do
"""
    (loop,) = parse_fragment(src)
    assert isinstance(loop.body[0], If)


def test_call_statement():
    (stmt,) = parse_fragment("call dgemm(a, b, c)\n")
    assert isinstance(stmt, CallStmt)
    assert stmt.name == "dgemm" and len(stmt.args) == 3


def test_precedence():
    expr = parse_expression("a + b * c")
    assert isinstance(expr, BinOp) and expr.op == "+"
    assert isinstance(expr.right, BinOp) and expr.right.op == "*"


def test_power_right_associative():
    expr = parse_expression("a ** b ** c")
    assert expr.op == "**"
    assert isinstance(expr.right, BinOp) and expr.right.op == "**"


def test_unary_minus():
    expr = parse_expression("-a + b")
    assert expr.op == "+"
    assert isinstance(expr.left, UnOp)


def test_relational_and_logical():
    expr = parse_expression("i .lt. n .and. j .gt. 0")
    assert expr.op == ".and."
    assert expr.left.op == ".lt."


def test_intrinsic_vs_array():
    expr = parse_expression("sqrt(x) + a(i)")
    assert isinstance(expr.left, FuncCall)
    assert isinstance(expr.right, ArrayRef)


def test_real_constant_parsing():
    expr = parse_expression("1.5e2")
    assert isinstance(expr, RealConst)
    assert float(expr.value) == 150.0
    d = parse_expression("1d0")
    assert isinstance(d, RealConst) and float(d.value) == 1.0


def test_multi_dim_array_ref():
    expr = parse_expression("a(i, j+1, 2*k)")
    assert isinstance(expr, ArrayRef)
    assert len(expr.subscripts) == 3


def test_parenthesized():
    expr = parse_expression("(a + b) * c")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_double_precision_decl():
    prog = parse_program(
        "program t\n  double precision x, y(10)\n  x = 1d0\nend\n"
    )
    assert prog.decl_of("x").scalar is ScalarType.DOUBLE
    assert prog.decl_of("y").array is not None


def test_decl_with_expression_dim():
    prog = parse_program("program t\n  real a(n+1)\n  a(1) = 0.0\nend\n")
    assert prog.decl_of("a").array.dims == ("n+1",)


def test_errors():
    with pytest.raises(ParseError):
        parse_program("program t\n  1 = x\nend\n")
    with pytest.raises(ParseError):
        parse_fragment("do i = 1\n end do\n")
    with pytest.raises(ParseError):
        parse_expression("a +")
    with pytest.raises(ParseError):
        parse_fragment("if (x) then\n y = 1\n")  # missing end if


def test_assignment_to_expression_rejected():
    with pytest.raises(ParseError):
        parse_fragment("a + b = c\n")
