"""Round-trip and rendering tests for the IR printer."""

from repro.ir import (
    parse_expression,
    parse_fragment,
    parse_program,
    print_expr,
    print_program,
    print_stmts,
)

MATMUL = """
program matmul
  integer n, i, j, k
  real a(n,n), b(n,n), c(n,n)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end program
"""


def test_program_roundtrip():
    prog = parse_program(MATMUL)
    text = print_program(prog)
    reparsed = parse_program(text)
    assert reparsed == prog


def test_fragment_roundtrip():
    src = """
do i = 1, n, 2
  if (i .le. k) then
    a(i) = a(i) + 1.0
  else
    a(i) = 0.0
  end if
end do
"""
    stmts = parse_fragment(src)
    assert parse_fragment(print_stmts(stmts)) == stmts


def test_expression_roundtrip_preserves_meaning():
    for source in [
        "a + b * c",
        "(a + b) * c",
        "a - b - c",
        "a - (b - c)",
        "a / b / c",
        "-a + b",
        "a ** b ** c",
        "(a ** b) ** c",
        "i .lt. n .and. j .gt. 0",
        ".not. flag",
        "sqrt(x * x + y * y)",
        "a(i, j+1)",
    ]:
        expr = parse_expression(source)
        assert parse_expression(print_expr(expr)) == expr, source


def test_minimal_parentheses():
    assert print_expr(parse_expression("a + b * c")) == "a + b * c"
    assert print_expr(parse_expression("(a + b) * c")) == "(a + b) * c"


def test_step_printed_only_when_not_one():
    stmts = parse_fragment("do i = 1, n\n  x = i\nend do\n")
    assert ", 1" not in print_stmts(stmts).splitlines()[0]
    stmts2 = parse_fragment("do i = 1, n, 4\n  x = i\nend do\n")
    assert print_stmts(stmts2).splitlines()[0].endswith(", 4")


def test_call_and_return_printing():
    stmts = parse_fragment("call foo(a, 1)\nreturn\n")
    text = print_stmts(stmts)
    assert "call foo(a, 1)" in text
    assert "return" in text
