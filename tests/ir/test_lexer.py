"""Tests for the mini-Fortran tokenizer."""

import pytest

from repro.ir import LexError, TokenKind, tokenize


def _kinds(source):
    return [t.kind for t in tokenize(source)]


def _texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


def test_simple_assignment():
    tokens = list(tokenize("x = a + 1\n"))
    kinds = [t.kind for t in tokens]
    assert kinds == [
        TokenKind.IDENT, TokenKind.OP, TokenKind.IDENT,
        TokenKind.OP, TokenKind.INT, TokenKind.NEWLINE, TokenKind.EOF,
    ]


def test_keywords_lowercased():
    assert _texts("DO I = 1, N") == ["do", "i", "=", "1", ",", "n"]


def test_real_literals():
    texts = _texts("x = 1.5 + .25 + 2.0e3 + 1d-2")
    assert "1.5" in texts and ".25" in texts and "2.0e3" in texts and "1d-2" in texts
    kinds = [t.kind for t in tokenize("1.5 .25 2.0e3 1d-2")]
    assert kinds.count(TokenKind.REAL) == 4


def test_dotted_operators():
    texts = _texts("a .le. b .and. c .ne. d")
    assert ".le." in texts and ".and." in texts and ".ne." in texts


def test_symbolic_relationals_canonicalized():
    assert _texts("a <= b") == ["a", ".le.", "b"]
    assert _texts("a == b") == ["a", ".eq.", "b"]
    assert _texts("a /= b") == ["a", ".ne.", "b"]
    assert _texts("a < b") == ["a", ".lt.", "b"]
    assert _texts("a >= b") == ["a", ".ge.", "b"]


def test_power_operator():
    assert _texts("x ** 2") == ["x", "**", "2"]


def test_comment_skipped():
    texts = _texts("x = 1  ! the whole comment vanishes\n")
    assert texts == ["x", "=", "1", "\n"]


def test_semicolon_is_statement_separator():
    kinds = _kinds("x = 1; y = 2")
    assert kinds.count(TokenKind.NEWLINE) == 1


def test_continuation_ampersand():
    texts = _texts("x = a + &\n    b\n")
    assert "&" not in texts
    assert texts.count("\n") == 1


def test_line_numbers_advance():
    tokens = [t for t in tokenize("a = 1\nb = 2\n")]
    last_ident = [t for t in tokens if t.text == "b"][0]
    assert last_ident.line == 2


def test_lex_error():
    with pytest.raises(LexError):
        list(tokenize("x = @"))


def test_eof_always_emitted():
    tokens = list(tokenize(""))
    assert tokens[-1].kind is TokenKind.EOF
