"""Tests for the reference scheduler, spill insertion, and simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import insert_spills, list_schedule, simulate, simulate_loop
from repro.machine import get_machine, power_machine
from repro.translate.stream import Instr, InstrStream


def test_empty_schedule():
    schedule = list_schedule(power_machine(), [])
    assert schedule.cycles == 0 and schedule.instructions == 0


def test_dependences_respected():
    machine = power_machine()
    instrs = [
        Instr(0, "lsu_load"),
        Instr(1, "fpu_arith", deps=(0,)),
        Instr(2, "fpu_store", deps=(1,)),
    ]
    schedule = list_schedule(machine, instrs)
    assert schedule.issue_time[1] >= schedule.completion[0]
    assert schedule.issue_time[2] >= schedule.completion[1]


def test_dispatch_width_limits_issue():
    machine = power_machine()
    # Independent ops on different units could all go at cycle 0 with
    # enough width; width=1 forces one per cycle.
    instrs = [
        Instr(0, "fxu_add"),
        Instr(1, "fpu_arith"),
        Instr(2, "lsu_load"),
        Instr(3, "branch"),
    ]
    wide = list_schedule(machine, instrs, dispatch_width=4)
    narrow = list_schedule(machine, instrs, dispatch_width=1)
    assert min(wide.issue_time.values()) == 0
    assert len({t for t in wide.issue_time.values()}) == 1  # all at cycle 0
    assert sorted(narrow.issue_time.values()) == [0, 1, 2, 3]
    with pytest.raises(ValueError):
        list_schedule(machine, instrs, dispatch_width=0)


def test_unit_contention_serializes():
    machine = power_machine()
    # Two 3-cycle integer multiplies on the single FXU.
    instrs = [Instr(0, "fxu_mul3"), Instr(1, "fxu_mul3")]
    schedule = list_schedule(machine, instrs)
    times = sorted(schedule.issue_time.values())
    assert times[1] >= times[0] + 3


def test_critical_path_priority_helps():
    """The scheduler prefers the long chain over cheap independent ops."""
    machine = power_machine()
    # Chain of 3 dependent fadds + 3 independent fadds.
    instrs = (
        [Instr(0, "fpu_arith"),
         Instr(1, "fpu_arith", deps=(0,)),
         Instr(2, "fpu_arith", deps=(1,))]
        + [Instr(3 + i, "fpu_arith") for i in range(3)]
    )
    schedule = list_schedule(machine, instrs)
    # The chain head goes first; independents fill its coverable slots
    # (cycles 1, 3, 5).  The last filler issues at 5 and completes at 7.
    assert schedule.issue_time[0] == 0
    assert schedule.cycles == 7


def test_sixteen_fma_reference():
    res = simulate(power_machine(), [Instr(i, "fpu_arith") for i in range(16)])
    assert res.cycles == 17
    assert res.spill_stores == 0


def test_wide_machine_reference_speedup():
    instrs = [Instr(i, "fpu_arith") for i in range(16)]
    power = simulate(get_machine("power"), instrs)
    wide = simulate(get_machine("wide"), instrs)
    assert wide.cycles < power.cycles


def test_spill_insertion_on_wide_block():
    """A block with ~60 simultaneously-live values must spill on 32 regs."""
    machine = power_machine()
    stream = InstrStream(machine_name="power")
    n = 60
    for i in range(n):
        stream.append("lsu_load", tag=f"load v{i}")
    # One giant combine keeps everything live until the end.
    deps = tuple(range(n))
    stream.append("fpu_arith", deps, tag="combine")
    result = insert_spills(machine, stream)
    assert result.spill_stores > 0
    assert result.spill_loads > 0
    # Spilled stream still schedulable and longer than the naive one.
    res_spilled = simulate(machine, result.stream, with_spills=False)
    res_naive = simulate(machine, stream, with_spills=False)
    assert res_spilled.cycles >= res_naive.cycles


def test_no_spills_on_small_block():
    machine = power_machine()
    stream = InstrStream(machine_name="power")
    a = stream.append("lsu_load").index
    b = stream.append("lsu_load").index
    stream.append("fpu_arith", (a, b))
    result = insert_spills(machine, stream)
    assert result.spill_stores == 0 and result.spill_loads == 0
    assert len(result.stream) == 3


def test_simulate_loop_overlaps_iterations():
    machine = power_machine()
    stream = InstrStream(machine_name="power")
    load = stream.append("lsu_load").index
    fma = stream.append("fpu_arith", (load,)).index
    stream.append("fpu_store", (fma,))
    one_iter = simulate(machine, stream).cycles
    ten = simulate_loop(machine, stream, 10).cycles
    assert ten < 10 * one_iter  # pipelining across iterations
    assert ten >= 10            # at least the LSU occupancy


def test_simulate_loop_carried_recurrence_slower():
    machine = power_machine()
    stream = InstrStream(machine_name="power")
    load = stream.append("lsu_load").index
    stream.append("fpu_arith", (load,), tag="acc")
    free = simulate_loop(machine, stream, 12, carried_latency=0).cycles
    chained = simulate_loop(machine, stream, 12, carried_latency=2).cycles
    assert chained >= free
    with pytest.raises(ValueError):
        simulate_loop(machine, stream, 0)


def test_ipc_reported():
    res = simulate(power_machine(), [Instr(i, "fpu_arith") for i in range(8)])
    assert 0.5 < res.ipc <= 1.0


# ---------------------------------------------------------------------------
# Cross-validation: estimator vs reference on random DAGs (the heart of
# the Figure 7 claim -- predictions track the scheduler).
# ---------------------------------------------------------------------------

_ATOMICS = ["fxu_add", "fpu_arith", "lsu_load", "fpu_store", "branch"]


@st.composite
def dag_streams(draw):
    n = draw(st.integers(1, 20))
    instrs = []
    for i in range(n):
        deps = ()
        if i and draw(st.integers(0, 2)):
            deps = (draw(st.integers(0, i - 1)),)
        instrs.append(Instr(i, draw(st.sampled_from(_ATOMICS)), deps))
    return instrs


@given(dag_streams())
@settings(max_examples=60, deadline=None)
def test_estimator_tracks_reference(instrs):
    """Prediction within a small factor of the reference schedule."""
    from repro.cost import place_stream

    machine = power_machine()
    predicted = place_stream(machine, instrs).cycles
    reference = simulate(machine, instrs, with_spills=False).cycles
    assert reference > 0 and predicted > 0
    ratio = predicted / reference
    assert 0.5 <= ratio <= 1.6, (predicted, reference)
