"""Tests for the kernel suite and workload generators."""

import pytest

from repro.bench import (
    KERNELS,
    innermost_block,
    kernel,
    kernel_names,
    kernel_stream,
    random_block_program,
    random_stream,
)
from repro.ir import Assign, parse_program, print_program
from repro.machine import get_machine, power_machine


def test_kernel_names_order():
    names = kernel_names()
    assert names[0] == "f1" and names[-1] == "rb"
    assert len(names) == 10
    assert set(names) == set(KERNELS)


def test_kernel_lookup_error():
    with pytest.raises(KeyError):
        kernel("f99")


def test_all_kernels_parse_and_roundtrip():
    for name in kernel_names():
        k = kernel(name)
        assert parse_program(print_program(k.program)) == k.program


def test_matmul_has_16_fma_statements():
    k = kernel("matmul")
    stmts, indices = innermost_block(k)
    assert indices == ("i", "j", "k")
    assert len(stmts) == 16
    assert all(isinstance(s, Assign) for s in stmts)


def test_innermost_block_extraction():
    stmts, indices = innermost_block(kernel("jacobi"))
    assert indices == ("j", "i")
    assert len(stmts) == 1


def test_kernel_stream_on_all_machines():
    for machine_name in ("power", "scalar", "wide"):
        machine = get_machine(machine_name)
        for name in kernel_names():
            info = kernel_stream(kernel(name), machine)
            assert len(info.stream) > 0
            for instr in info.stream:
                assert instr.atomic in machine.table


def test_f3_is_a_reduction_kernel():
    info = kernel_stream(kernel("f3"), power_machine())
    assert info.reductions
    assert info.carried_latency > 0


def test_rb_red_points_step_two():
    k = kernel("rb")
    inner = k.program.body[0].body[0]
    from repro.ir import IntConst

    assert inner.step == IntConst(2)


def test_random_block_program_deterministic():
    a = random_block_program(10, seed=3)
    b = random_block_program(10, seed=3)
    c = random_block_program(10, seed=4)
    assert a == b
    assert a != c
    assert len(a.body[0].body) == 10


def test_random_block_program_translates():
    from repro.ir import SymbolTable
    from repro.translate import Translator

    prog = random_block_program(20, seed=1)
    translator = Translator(power_machine(), SymbolTable.from_program(prog))
    loop = prog.body[0]
    info = translator.translate_block(loop.body, (loop.var,))
    assert len(info.stream) > 0


def test_random_stream_properties():
    machine = power_machine()
    stream = random_stream(machine, 50, seed=9)
    assert len(stream) == 50
    for instr in stream:
        assert instr.atomic in machine.table
        for dep in instr.deps:
            assert dep < instr.index
    # Deterministic.
    again = random_stream(machine, 50, seed=9)
    assert [i.atomic for i in stream] == [i.atomic for i in again]
