"""Golden-artifact tests: strict load/validate of cost-table files."""

import json

import pytest

from repro.calib import (
    ArtifactError,
    COST_TABLE_FORMAT,
    SimulatorOracle,
    calibrate_machine,
    load_cost_table,
    machine_from_artifact,
    register_calibrated,
    result_to_payload,
    save_cost_table,
)
from repro.machine import get_machine, machine_fingerprint, power_machine
from repro.machine.registry import _FACTORIES


@pytest.fixture()
def result():
    machine = power_machine()
    return calibrate_machine(machine, SimulatorOracle(machine),
                             name="power-artifact-test")


def test_payload_roundtrips_through_disk(result, tmp_path):
    path = tmp_path / "table.json"
    written = save_cost_table(result, str(path))
    loaded = load_cost_table(str(path))
    assert loaded == written
    rebuilt = machine_from_artifact(loaded)
    assert rebuilt.fingerprint() == result.machine.fingerprint()
    assert rebuilt.name == "power-artifact-test"
    assert rebuilt.atomic_mapping == result.machine.atomic_mapping
    for name in result.machine.table.names():
        assert (rebuilt.atomic(name).result_latency
                == result.machine.atomic(name).result_latency)


def test_wrong_format_version_rejected(result, tmp_path):
    path = tmp_path / "table.json"
    payload = save_cost_table(result, str(path))
    payload["format"] = "repro-cost-table-v0"
    path.write_text(json.dumps(payload))
    with pytest.raises(ArtifactError, match="format"):
        load_cost_table(str(path))


def test_unknown_unit_kind_rejected(result, tmp_path):
    path = tmp_path / "table.json"
    payload = save_cost_table(result, str(path))
    payload["table"]["fpu_arith"]["costs"][0]["unit"] = "vpu"
    path.write_text(json.dumps(payload))
    with pytest.raises(ArtifactError, match="unknown unit"):
        load_cost_table(str(path))


def test_mapping_referencing_unknown_atomic_op_rejected(result, tmp_path):
    path = tmp_path / "table.json"
    payload = save_cost_table(result, str(path))
    payload["atomic_mapping"]["fadd"] = ["no_such_op"]
    path.write_text(json.dumps(payload))
    with pytest.raises(ArtifactError, match="unknown atomic op"):
        load_cost_table(str(path))


def test_truncated_file_rejected(result, tmp_path):
    path = tmp_path / "table.json"
    save_cost_table(result, str(path))
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    with pytest.raises(ArtifactError, match="truncated"):
        load_cost_table(str(path))


def test_missing_file_rejected(tmp_path):
    with pytest.raises(ArtifactError, match="cannot read"):
        load_cost_table(str(tmp_path / "nope.json"))


def test_zero_cycle_cost_rejected(result, tmp_path):
    path = tmp_path / "table.json"
    payload = save_cost_table(result, str(path))
    cost = payload["table"]["fpu_arith"]["costs"][0]
    cost["noncoverable"] = 0
    cost["coverable"] = 0
    path.write_text(json.dumps(payload))
    with pytest.raises(ArtifactError, match="zero-cycle"):
        load_cost_table(str(path))


def test_negative_cost_rejected(result, tmp_path):
    path = tmp_path / "table.json"
    payload = save_cost_table(result, str(path))
    payload["table"]["fpu_arith"]["costs"][0]["noncoverable"] = -1
    path.write_text(json.dumps(payload))
    with pytest.raises(ArtifactError, match="bad noncoverable"):
        load_cost_table(str(path))


def test_any_table_change_changes_fingerprint(result):
    """The registry cache key must move when any cost moves."""
    base = machine_from_artifact(result_to_payload(result))
    payload = result_to_payload(result)
    payload["table"]["fpu_arith"]["costs"][0]["coverable"] += 1
    changed = machine_from_artifact(payload)
    assert changed.fingerprint() != base.fingerprint()


def test_register_calibrated_is_a_first_class_machine(result, tmp_path):
    path = tmp_path / "table.json"
    save_cost_table(result, str(path))
    name = register_calibrated(str(path))
    try:
        assert name == "power-artifact-test"
        machine = get_machine(name)
        assert machine.fingerprint() == result.machine.fingerprint()
        assert machine_fingerprint(name) == result.machine.fingerprint()
    finally:
        _FACTORIES.pop(name, None)


def test_register_calibrated_replace_semantics(result, tmp_path):
    path = tmp_path / "table.json"
    payload = save_cost_table(result, str(path))
    name = register_calibrated(str(path))
    try:
        # Default replace=True: re-registering a retrained table swaps
        # the factory (and thus the fingerprint the cache folds in).
        payload["table"]["fpu_arith"]["costs"][0]["coverable"] += 1
        register_calibrated(payload)
        assert (machine_fingerprint(name)
                != result.machine.fingerprint())
        with pytest.raises(ValueError, match="already registered"):
            register_calibrated(payload, replace=False)
    finally:
        _FACTORIES.pop(name, None)


def test_oracle_id_recorded(result):
    payload = result_to_payload(result)
    assert payload["format"] == COST_TABLE_FORMAT
    assert payload["oracle_id"].startswith("simulator:")
    assert payload["probes"] == result.probes
    assert payload["mean_abs_residual"] == 0.0
