"""Oracle implementations: simulator timing and hermetic fixtures."""

import json

import pytest

from repro.calib import (
    RecordedOracle,
    SimulatorOracle,
    calibrate_machine,
    make_probe_family,
    record_fixture,
)
from repro.calib.oracle import FIXTURE_FORMAT
from repro.machine import power_machine


def test_recorded_fixture_roundtrip(tmp_path):
    """Record once, refit offline: hermetic calibration end to end."""
    machine = power_machine()
    _, probes = make_probe_family(machine)
    path = tmp_path / "fixture.json"
    live = SimulatorOracle(machine)
    measurements = record_fixture(live, probes, str(path))
    replay = RecordedOracle.from_file(str(path))
    assert replay.oracle_id == live.oracle_id
    assert replay.measurements == measurements
    result = calibrate_machine(machine, replay)
    assert result.mean_abs_residual == 0.0
    assert result.oracle_id == live.oracle_id


def test_fixture_wrong_format_rejected(tmp_path):
    path = tmp_path / "fixture.json"
    path.write_text(json.dumps({"format": "nope", "measurements": {}}))
    with pytest.raises(ValueError, match="format"):
        RecordedOracle.from_file(str(path))


def test_fixture_bad_measurement_rejected(tmp_path):
    path = tmp_path / "fixture.json"
    path.write_text(json.dumps({
        "format": FIXTURE_FORMAT,
        "measurements": {"p": -3},
    }))
    with pytest.raises(ValueError, match="measurement"):
        RecordedOracle.from_file(str(path))


def test_fixture_missing_probe_is_an_error():
    machine = power_machine()
    _, probes = make_probe_family(machine)
    oracle = RecordedOracle({}, "empty")
    with pytest.raises(ValueError, match="no measurement"):
        oracle.measure(probes[0])


def test_simulator_oracle_jitter_clamps_to_one():
    machine = power_machine()
    _, probes = make_probe_family(machine)
    oracle = SimulatorOracle(machine, jitter=lambda name: -10_000)
    assert oracle.measure(probes[0]) == 1
