"""Calibration round-trip: probes + oracle + solver recover the table."""

import dataclasses
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import simulate
from repro.calib import SimulatorOracle, calibrate_machine
from repro.machine import (
    AtomicCostTable,
    AtomicOp,
    UnitCost,
    power_machine,
)

#: Ops whose primary cost is perturbed by the property test.  All are
#: single-unit ops, so the perturbed cost stays primary (dual-unit ops
#: like fpu_cmp can flip which unit is the latency bottleneck, which
#: changes the *structure*, not just the numbers).
PERTURBABLE = ("fpu_arith", "fpu_div", "fxu_add", "fxu_mul3",
               "lsu_load", "lsu_store")


def _perturbed_machine(deltas):
    """POWER with each (op, dn, dc) delta applied to its primary cost."""
    machine = power_machine()
    table = AtomicCostTable()
    for name in machine.table.names():
        op = machine.atomic(name)
        if name not in deltas:
            table.define(op)
            continue
        dn, dc = deltas[name]
        primary = next(c for c in op.costs if c.total == op.result_latency)
        # Every real table keeps noncoverable >= 1 (an op always holds
        # its pipe for at least the issue cycle); a fully-coverable op
        # would be dispatch-bound, which the probe algebra by design
        # does not model.
        new_costs = tuple(
            UnitCost(c.unit,
                     max(1, c.noncoverable + dn),
                     max(0, c.coverable + dc))
            if c is primary else c
            for c in op.costs
        )
        table.define(AtomicOp(name, new_costs, op.description))
    return dataclasses.replace(machine, name="power-perturbed", table=table)


def _max_prediction_error(result, truth_machine):
    """Worst relative error of the calibrated table's probe predictions."""
    worst = 0.0
    for name, residual in result.residuals.items():
        measured = result.measurements[name]
        if measured:
            worst = max(worst, abs(residual) / measured)
    return worst


@settings(max_examples=25, deadline=None)
@given(st.dictionaries(
    st.sampled_from(PERTURBABLE),
    st.tuples(st.integers(-1, 3), st.integers(0, 2)),
    min_size=1, max_size=4,
))
def test_roundtrip_recovers_perturbed_table(deltas):
    """Calibrating against a perturbed machine's simulator recovers it.

    The probe family's serial/burst algebra is exact on the reference
    scheduler, so the fit should land within a cycle everywhere and
    the predictions within 5% of the oracle.
    """
    truth = _perturbed_machine(deltas)
    structure = power_machine()
    result = calibrate_machine(structure, SimulatorOracle(truth))
    assert _max_prediction_error(result, truth) <= 0.05
    assert result.mean_relative_error <= 0.05


def test_self_calibration_is_exact():
    """Calibrating POWER against its own simulator is a fixpoint."""
    machine = power_machine()
    result = calibrate_machine(machine, SimulatorOracle(machine))
    assert result.mean_abs_residual == 0.0
    for name in machine.table.names():
        original = machine.atomic(name)
        fitted = result.table[name]
        assert fitted.result_latency == original.result_latency, name


def test_noisy_oracle_stays_within_tolerance():
    """+/-1-cycle measurement jitter does not wreck the fit (seed 42)."""
    machine = power_machine()
    rng = random.Random(42)
    oracle = SimulatorOracle(
        machine, jitter=lambda name: rng.choice((-1, 0, 0, 1)))
    result = calibrate_machine(machine, SimulatorOracle(machine))
    noisy = calibrate_machine(machine, oracle)
    assert noisy.mean_relative_error <= 0.05
    # The rounded fit should still match the exact fit's latencies for
    # most ops; require at least the long-latency ones.
    for name in ("fpu_div", "fxu_mul3", "call_overhead"):
        assert (noisy.table[name].result_latency
                == result.table[name].result_latency), name


def test_calibrated_machine_predicts_streams_like_truth():
    """End-to-end: calibrated table reproduces simulator cycles."""
    deltas = {"fpu_arith": (1, 1), "lsu_load": (0, 2)}
    truth = _perturbed_machine(deltas)
    result = calibrate_machine(power_machine(), SimulatorOracle(truth))
    # A fresh serial chain (not one of the probes): both machines must
    # time it identically since the fitted table matches the truth.
    from repro.translate.stream import Instr

    chain = [
        Instr(index=i, atomic="fpu_arith",
              deps=(i - 1,) if i else (), tag="t")
        for i in range(12)
    ]
    assert (simulate(result.machine, chain, with_spills=False).cycles
            == simulate(truth, chain, with_spills=False).cycles)


def test_secondary_unit_costs_survive_calibration():
    machine = power_machine()
    result = calibrate_machine(machine, SimulatorOracle(machine))
    from repro.machine import UnitKind

    store = result.table["fpu_store"]
    assert store.cost_on(UnitKind.FXU) is not None


def test_unknown_probe_ops_rejected():
    with pytest.raises(KeyError):
        calibrate_machine(power_machine(),
                          SimulatorOracle(power_machine()),
                          ops=["no_such_op"])
