"""Probe-family generation: the algebra the fit relies on."""

import math

import pytest

from repro.backend import simulate
from repro.calib import make_probe_family
from repro.machine import power_machine


def _measure(machine, probe):
    return simulate(machine, list(probe.instrs), with_spills=False).cycles


def test_family_covers_all_ops():
    machine = power_machine()
    names, probes = make_probe_family(machine)
    assert set(names) == set(machine.table.names())
    probed = {op for probe in probes for op in {i.atomic for i in probe.instrs}}
    assert probed == set(machine.table.names())


def test_family_rejects_empty_ops():
    with pytest.raises(ValueError):
        make_probe_family(power_machine(), ops=[])


def test_serial_probe_rows_predict_simulator_exactly():
    """Serial chains cost exactly k * (n + c) on the reference scheduler."""
    machine = power_machine()
    names, probes = make_probe_family(machine)
    # The true solution vector: [n_0..n_{K-1}, c_0..c_{K-1}].
    solution = []
    for name in names:
        op = machine.atomic(name)
        primary = next(c for c in op.costs if c.total == op.result_latency)
        solution.append(float(primary.noncoverable))
    for name in names:
        op = machine.atomic(name)
        primary = next(c for c in op.costs if c.total == op.result_latency)
        solution.append(float(primary.coverable))
    for probe in probes:
        if probe.kind != "serial":
            continue
        assert probe.predicted(solution) == _measure(machine, probe), probe.name


def test_burst_probe_rows_predict_simulator_exactly():
    """Bursts cost ceil(k/p)*n + c when dispatch width >= pipe count."""
    machine = power_machine()
    names, probes = make_probe_family(machine)
    for probe in probes:
        if probe.kind != "burst":
            continue
        name = next(iter({i.atomic for i in probe.instrs}))
        op = machine.atomic(name)
        primary = next(c for c in op.costs if c.total == op.result_latency)
        pipes = machine.unit(primary.unit).count
        k = len(probe.instrs)
        expected = math.ceil(k / pipes) * primary.noncoverable + \
            primary.coverable
        # Fully-coverable ops still occupy their pipe implicitly for one
        # issue slot; the simulator returns at least the chain latency.
        assert _measure(machine, probe) == max(expected, primary.total), \
            probe.name


def test_probe_instrs_are_well_formed():
    _, probes = make_probe_family(power_machine())
    for probe in probes:
        for instr in probe.instrs:
            for dep in instr.deps:
                assert 0 <= dep < instr.index
