"""Tests for dependence analysis and legality predicates."""

from fractions import Fraction

from repro.analysis import (
    DepKind,
    affine_subscript,
    fusion_legal,
    interchange_legal,
    is_parallel_loop,
    loop_carried_dependences,
    statements_commute,
    accesses,
)
from repro.ir import parse_expression, parse_fragment


def _loop(src):
    (loop,) = parse_fragment(src)
    return loop


def test_affine_subscript():
    sub = affine_subscript(parse_expression("2*i + 3"), "i")
    assert sub.coeff == 2 and sub.offset == 3
    sub = affine_subscript(parse_expression("i"), "i")
    assert sub.coeff == 1 and sub.offset == 0
    sub = affine_subscript(parse_expression("7"), "i")
    assert sub.is_constant and sub.offset == 7
    assert affine_subscript(parse_expression("i*i"), "i") is None
    assert affine_subscript(parse_expression("idx(i)"), "i") is None
    sub = affine_subscript(parse_expression("-i + 1"), "i")
    assert sub.coeff == -1 and sub.offset == 1
    # Symbolic additive terms are rejected by the public helper.
    assert affine_subscript(parse_expression("i + j"), "i") is None


def test_parallel_elementwise_loop():
    loop = _loop("do i = 1, n\n  c(i) = a(i) + b(i)\nend do\n")
    assert is_parallel_loop(loop)
    assert loop_carried_dependences(loop) == []


def test_carried_flow_dependence():
    loop = _loop("do i = 2, n\n  a(i) = a(i-1) + 1.0\nend do\n")
    deps = loop_carried_dependences(loop)
    assert any(d.kind is DepKind.FLOW and d.distance == 1 for d in deps)
    assert not is_parallel_loop(loop)


def test_anti_direction_recorded_as_dependence():
    loop = _loop("do i = 1, n\n  a(i) = a(i+1) + 1.0\nend do\n")
    deps = loop_carried_dependences(loop)
    assert deps  # distance -1 (anti when executed in order)
    assert any(d.distance == -1 for d in deps)


def test_scalar_recurrence_blocks_parallelism():
    loop = _loop("do i = 1, n\n  s = s + a(i)\nend do\n")
    assert not is_parallel_loop(loop)


def test_unknown_subscript_conservative():
    loop = _loop("do i = 1, n\n  a(idx(i)) = a(i) + 1.0\nend do\n")
    deps = loop_carried_dependences(loop)
    assert any(d.distance is None for d in deps)


def test_different_strides_independent_when_offsets_disagree():
    loop = _loop("do i = 1, n\n  a(2*i) = a(2*i+1) + 1.0\nend do\n")
    # 2i = 2j+1 has no integer solution: independent.
    assert is_parallel_loop(loop)


def test_interchange_legal_matmul():
    nest = _loop(
        """
do i = 1, n
  do j = 1, n
    c(i,j) = c(i,j) + a(i,j)
  end do
end do
"""
    )
    inner = nest.body[0]
    assert interchange_legal(nest, inner)


def test_interchange_illegal_skewed_dependence():
    """a(i,j) = a(i-1,j+1): (+,-) pair forbids interchange."""
    nest = _loop(
        """
do i = 2, n
  do j = 1, n
    a(i,j) = a(i-1,j+1) + 1.0
  end do
end do
"""
    )
    inner = nest.body[0]
    assert not interchange_legal(nest, inner)


def test_fusion_legal_independent_loops():
    first = _loop("do i = 1, n\n  a(i) = b(i) + 1.0\nend do\n")
    second = _loop("do i = 1, n\n  c(i) = a(i) * 2.0\nend do\n")
    assert fusion_legal(first, second)


def test_fusion_illegal_backward_use():
    first = _loop("do i = 1, n\n  a(i) = b(i) + 1.0\nend do\n")
    second = _loop("do i = 1, n\n  c(i) = a(i+1) * 2.0\nend do\n")
    assert not fusion_legal(first, second)


def test_fusion_requires_same_bounds():
    first = _loop("do i = 1, n\n  a(i) = 1.0\nend do\n")
    second = _loop("do i = 1, m\n  c(i) = 2.0\nend do\n")
    assert not fusion_legal(first, second)


def test_fusion_with_renamed_index():
    first = _loop("do i = 1, n\n  a(i) = b(i) + 1.0\nend do\n")
    second = _loop("do j = 1, n\n  c(j) = a(j) * 2.0\nend do\n")
    # Same bounds, forward dep only -- but indexes named differently.
    assert fusion_legal(first, second)


def test_statements_commute():
    s1, s2 = parse_fragment("a(i) = 1.0\nb(i) = 2.0\n")
    assert statements_commute(s1, s2)
    s3, s4 = parse_fragment("a(i) = 1.0\nc(i) = a(i) + 1.0\n")
    assert not statements_commute(s3, s4)
    s5, s6 = parse_fragment("x = 1.0\ny = x + 1.0\n")
    assert not statements_commute(s5, s6)
    s7, s8 = parse_fragment("x = 1.0\ncall foo(y)\n")
    assert not statements_commute(s7, s8)


def test_accesses_summary():
    (stmt,) = parse_fragment("c(i) = a(i) + x\n")
    acc = accesses(stmt)
    assert "a" in acc.reads_arrays
    assert "c" in acc.writes_arrays
    assert "x" in acc.reads_scalars
    assert "i" in acc.reads_scalars
