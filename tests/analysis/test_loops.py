"""Tests for symbolic trip counts and nest discovery."""

from fractions import Fraction

import pytest

from repro.analysis import expression_poly, perfect_nest, trip_count
from repro.ir import parse_expression, parse_fragment
from repro.symbolic import Poly


def _loop(src):
    (loop,) = parse_fragment(src)
    return loop


def test_expression_poly_basics():
    poly, unknowns = expression_poly(parse_expression("n"))
    assert poly == Poly.var("n")
    assert "n" in unknowns
    poly, _ = expression_poly(parse_expression("2*n + 1"))
    assert poly == 2 * Poly.var("n") + 1
    poly, _ = expression_poly(parse_expression("n - m"))
    assert poly == Poly.var("n") - Poly.var("m")
    poly, _ = expression_poly(parse_expression("-n"))
    assert poly == -Poly.var("n")


def test_expression_poly_division_and_power():
    poly, _ = expression_poly(parse_expression("n / 2"))
    assert poly == Fraction(1, 2) * Poly.var("n")
    poly, _ = expression_poly(parse_expression("n ** 2"))
    assert poly == Poly.var("n") ** 2
    poly, _ = expression_poly(parse_expression("m / n"))
    assert poly == Poly.var("m") / Poly.var("n")


def test_expression_poly_opaque_fallback():
    poly, unknowns = expression_poly(parse_expression("idx(i)"))
    assert len(poly.variables()) == 1
    (name,) = poly.variables()
    assert name.startswith("u_")
    assert unknowns[name].description == "idx(i)"
    # Division by a sum is also opaque.
    poly2, _ = expression_poly(parse_expression("m / (n + 1)"))
    assert any(v.startswith("u_") for v in poly2.variables())


def test_trip_count_constant():
    assert trip_count(_loop("do i = 1, 10\n x = 1\nend do\n")).constant_value() == 10
    assert trip_count(_loop("do i = 1, 10, 2\n x = 1\nend do\n")).constant_value() == 5
    assert trip_count(_loop("do i = 1, 10, 3\n x = 1\nend do\n")).constant_value() == 4
    assert trip_count(_loop("do i = 10, 1\n x = 1\nend do\n")).constant_value() == 0
    assert trip_count(_loop("do i = 5, 5\n x = 1\nend do\n")).constant_value() == 1


def test_trip_count_negative_step():
    assert trip_count(_loop("do i = 10, 1, -1\n x = 1\nend do\n")).constant_value() == 10
    assert trip_count(_loop("do i = 10, 1, -3\n x = 1\nend do\n")).constant_value() == 4


def test_trip_count_zero_step_rejected():
    with pytest.raises(ValueError):
        trip_count(_loop("do i = 1, 10, 0\n x = 1\nend do\n"))


def test_trip_count_symbolic():
    count = trip_count(_loop("do i = 1, n\n x = 1\nend do\n"))
    assert count.poly == Poly.var("n")
    count2 = trip_count(_loop("do i = lb, ub\n x = 1\nend do\n"))
    assert count2.poly == Poly.var("ub") - Poly.var("lb") + 1
    count3 = trip_count(_loop("do i = 1, n, 2\n x = 1\nend do\n"))
    assert count3.poly == (Poly.var("n") + 1) / 2


def test_trip_count_symbolic_step_laurent():
    count = trip_count(_loop("do i = 1, n, s\n x = 1\nend do\n"))
    # (n - 1 + s)/s = (n-1)/s + 1 as a Laurent polynomial.
    n, s = Poly.var("n"), Poly.var("s")
    assert count.poly == (n - 1) / s + 1


def test_trip_count_bounds_nonnegative_for_simple_var():
    count = trip_count(_loop("do i = 1, n\n x = 1\nend do\n"))
    assert count.bounds["n"].nonneg()


def test_perfect_nest():
    loop = _loop(
        """
do i = 1, n
  do j = 1, m
    do k = 1, p
      c(i,j) = c(i,j) + a(i,k) * b(k,j)
    end do
  end do
end do
"""
    )
    nest = perfect_nest(loop)
    assert [info.index for info in nest] == ["i", "j", "k"]
    assert [info.depth for info in nest] == [0, 1, 2]


def test_imperfect_nest_stops():
    loop = _loop(
        """
do i = 1, n
  x = 0.0
  do j = 1, m
    x = x + a(i,j)
  end do
end do
"""
    )
    nest = perfect_nest(loop)
    assert len(nest) == 1
