"""Tests for symbolic cost aggregation (paper section 2.4)."""

from fractions import Fraction

import pytest

from repro.aggregate import CostAggregator, LibraryCostTable, aggregate_program
from repro.ir import SymbolTable, parse_fragment, parse_program
from repro.machine import power_machine, scalar_machine
from repro.symbolic import Interval, PerfExpr, Poly, Sign, UnknownKind


def _prog(src):
    return parse_program(src)


def _agg(prog, machine=None, **kw):
    return CostAggregator(
        machine or power_machine(), SymbolTable.from_program(prog), **kw
    )


MATMUL = """
program matmul
  integer n, i, j, k
  real a(n,n), b(n,n), c(n,n)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
"""


def test_straight_line_block_cost_is_constant():
    prog = _prog("program t\n  real x, y\n  x = 1.0\n  y = x * 2.0\nend\n")
    cost = aggregate_program(prog, power_machine())
    assert cost.is_constant()
    assert cost.constant_value() > 0


def test_empty_program():
    prog = _prog("program t\n  real x\nend\n")
    assert aggregate_program(prog, power_machine()).poly.is_zero()


def test_constant_loop_cost():
    prog = _prog(
        "program t\n  real a(100)\n  integer i\n"
        "  do i = 1, 100\n    a(i) = a(i) + 1.0\n  end do\nend\n"
    )
    cost = aggregate_program(prog, power_machine())
    assert cost.is_constant()
    value = cost.constant_value()
    # 100 iterations of a small body: at least 100, at most ~10/iter.
    assert 100 <= value <= 1000


def test_symbolic_loop_cost_linear_in_n():
    prog = _prog(
        "program t\n  integer n, i\n  real a(n)\n"
        "  do i = 1, n\n    a(i) = a(i) + 1.0\n  end do\nend\n"
    )
    cost = aggregate_program(prog, power_machine())
    assert cost.poly.degree("n") == 1
    assert "n" in cost.unknowns
    # Trip-count unknowns are flagged as loop bounds and non-negative.
    assert cost.bounds["n"].nonneg()


def test_matmul_cost_cubic():
    cost = aggregate_program(_prog(MATMUL), power_machine())
    assert cost.poly.degree("n") == 3
    # The n^3 coefficient is the steady-state cost of the inner body:
    # 2 loads on one LSU bounds it at 2 cycles per iteration.
    coeff = cost.poly.coeffs_by_var("n")[3]
    assert coeff.constant_value() == 2


def test_matmul_on_scalar_machine_is_much_slower():
    power_cost = aggregate_program(_prog(MATMUL), power_machine())
    scalar_cost = aggregate_program(_prog(MATMUL), scalar_machine())
    p = power_cost.evaluate({"n": 50})
    s = scalar_cost.evaluate({"n": 50})
    assert s > 3 * p  # no overlap, no FMA, slower ops


def test_triangular_nest_exact_summation():
    prog = _prog(
        "program t\n  integer n, i, j\n  real a(n,n)\n"
        "  do i = 1, n\n    do j = 1, i\n      a(i,j) = a(i,j) * 2.0\n"
        "    end do\n  end do\nend\n"
    )
    cost = aggregate_program(prog, power_machine())
    # Sum over i of (c1*i + c0) = quadratic with leading coeff c1/2.
    assert cost.poly.degree("n") == 2
    lead = cost.poly.coeffs_by_var("n")[2]
    inner_steady = 2 * lead.constant_value()  # reverse Faulhaber
    assert inner_steady >= 1


def test_nested_symbolic_bounds_product():
    prog = _prog(
        "program t\n  integer n, m, i, j\n  real a(n,m)\n"
        "  do i = 1, n\n    do j = 1, m\n      a(i,j) = 0.0\n"
        "    end do\n  end do\nend\n"
    )
    cost = aggregate_program(prog, power_machine())
    poly = cost.poly
    assert poly.degree("n") == 1 and poly.degree("m") == 1
    # The n*m term exists (inner body executes n*m times).
    nm_coeff = [c for mono, c in poly.terms.items() if len(mono) == 2]
    assert nm_coeff and nm_coeff[0] > 0


def test_loop_index_conditional_splits_exactly():
    """do i = 1,n / if (i .le. k): no probability unknown appears."""
    prog = _prog(
        "program t\n  integer n, i, k\n  real a(n), b(n)\n"
        "  do i = 1, n\n"
        "    if (i .le. k) then\n      a(i) = a(i) + 1.0\n"
        "    else\n      b(i) = b(i) / a(i)\n    end if\n  end do\nend\n"
    )
    cost = aggregate_program(prog, power_machine())
    assert "k" in cost.poly.variables()
    assert not any(v.startswith("pt_") for v in cost.poly.variables())
    # The divide branch is much slower, so cost decreases with k.
    low_k = cost.evaluate({"n": 100, "k": 10})
    high_k = cost.evaluate({"n": 100, "k": 90})
    assert high_k < low_k


def test_general_conditional_uses_probability_unknown():
    prog = _prog(
        "program t\n  real x, y, t\n"
        "  if (x .gt. 0.0) then\n    y = x * 2.0\n"
        "  else\n    y = sqrt(x * x + 1.0)\n    t = y * y\n  end if\nend\n"
    )
    cost = aggregate_program(prog, power_machine())
    prob_vars = [v for v in cost.poly.variables() if v.startswith("pt_")]
    assert len(prob_vars) == 1
    (pt,) = prob_vars
    assert cost.unknowns[pt].kind is UnknownKind.BRANCH_PROB
    assert cost.bounds[pt] == Interval.probability()
    # Substituting the probability gives a constant.
    assert cost.substitute({pt: Fraction(1, 2)}).is_constant()


def test_near_equal_branches_skip_probability():
    """Section 3.3.2: nearly-equal branch costs need no pt."""
    prog = _prog(
        "program t\n  real x, y\n"
        "  if (x .gt. 0.0) then\n    y = x + 1.0\n"
        "  else\n    y = x - 1.0\n  end if\nend\n"
    )
    cost = aggregate_program(prog, power_machine())
    assert cost.is_constant()


def test_conditional_inside_loop_with_probability():
    """A data-dependent conditional in a loop keeps pt symbolic."""
    prog = _prog(
        "program t\n  integer n, i\n  real a(n), x\n"
        "  do i = 1, n\n"
        "    if (a(i) .gt. x) then\n      a(i) = a(i) - x\n"
        "    else\n      a(i) = a(i) * a(i) / x\n    end if\n  end do\nend\n"
    )
    cost = aggregate_program(prog, power_machine())
    prob_vars = [v for v in cost.poly.variables() if v.startswith("pt_")]
    assert prob_vars
    # pt multiplies n: the blend happens per iteration.
    (pt,) = prob_vars
    assert cost.poly.degree(pt) == 1


def test_library_call_cost_substitution():
    prog = _prog(
        "program t\n  integer n\n  real a(n)\n  call daxpy(n)\nend\n"
    )
    library = LibraryCostTable()
    n = PerfExpr.unknown("sz", UnknownKind.PARAMETER, Interval.nonnegative())
    library.define("daxpy", ("sz",), 4 * n + 10)
    agg = CostAggregator(
        power_machine(), SymbolTable.from_program(prog), library=library
    )
    cost = agg.cost_program(prog)
    assert cost.poly.degree("n") == 1
    assert cost.poly.coeffs_by_var("n")[1].constant_value() == 4


def test_unknown_call_becomes_symbolic():
    prog = _prog("program t\n  call mystery()\nend\n")
    cost = aggregate_program(prog, power_machine())
    assert "cost_mystery" in cost.poly.variables()
    assert cost.bounds["cost_mystery"].nonneg()


def test_library_table_validates_formals():
    library = LibraryCostTable()
    stray = PerfExpr.unknown("q")
    with pytest.raises(ValueError):
        library.define("f", ("a",), stray)


def test_reduction_loop_cost():
    prog = _prog(
        "program t\n  integer n, i\n  real a(n), s\n"
        "  do i = 1, n\n    s = s + a(i)\n  end do\nend\n"
    )
    cost = aggregate_program(prog, power_machine())
    # Per-iteration cost is bounded below by the recurrence latency (2).
    coeff = cost.poly.coeffs_by_var("n")[1]
    assert coeff.constant_value() >= 2


def test_overlap_flag_changes_loop_cost():
    from repro.translate import AGGRESSIVE_BACKEND

    prog = _prog(
        "program t\n  integer n, i\n  real a(n), b(n), c(n)\n"
        "  do i = 1, n\n    c(i) = a(i) + b(i)\n  end do\nend\n"
    )
    table = SymbolTable.from_program(prog)
    fast = CostAggregator(power_machine(), table).cost_program(prog)
    slow = CostAggregator(
        power_machine(), table,
        flags=AGGRESSIVE_BACKEND.without(overlap_iterations=True),
    ).cost_program(prog)
    assert slow.evaluate({"n": 100}) > fast.evaluate({"n": 100})


def test_sign_query_on_difference():
    """The point of it all: compare two versions symbolically."""
    base = aggregate_program(_prog(MATMUL), power_machine())
    # An artificial 'transformed' version: 1 cycle less per iteration.
    n = Poly.var("n")
    improved = PerfExpr(base.poly - n ** 3, base.bounds, base.unknowns)
    diff = base - improved
    assert diff.with_bound("n", Interval(1, 1000)).sign() is Sign.POSITIVE
