"""Unit tests for conditional splitting and loop-cost internals."""

from fractions import Fraction

from repro.aggregate import index_split, nearly_equal, probability_blend
from repro.ir import parse_expression, parse_fragment
from repro.symbolic import Interval, PerfExpr, Poly, UnknownKind


def _loop(src="do i = 1, n\n  x = 1\nend do\n"):
    (loop,) = parse_fragment(src)
    return loop


def _cond(text):
    return parse_expression(text)


def test_index_split_le():
    split = index_split(_cond("i .le. k"), _loop())
    assert split.true_count == Poly.var("k")  # k - 1 + 1


def test_index_split_lt():
    split = index_split(_cond("i .lt. k"), _loop())
    assert split.true_count == Poly.var("k") - 1


def test_index_split_ge():
    split = index_split(_cond("i .ge. k"), _loop())
    assert split.true_count == Poly.var("n") - Poly.var("k") + 1


def test_index_split_gt():
    split = index_split(_cond("i .gt. k"), _loop())
    assert split.true_count == Poly.var("n") - Poly.var("k")


def test_index_split_eq_and_ne():
    assert index_split(_cond("i .eq. k"), _loop()).true_count == Poly.one()
    split = index_split(_cond("i .ne. k"), _loop())
    assert split.true_count == Poly.var("n") - 1


def test_index_split_mirrored_operands():
    """`k .ge. i` mirrors to `i .le. k`."""
    split = index_split(_cond("k .ge. i"), _loop())
    assert split.true_count == Poly.var("k")


def test_index_split_nonconstant_lb():
    split = index_split(_cond("i .le. k"), _loop("do i = m, n\n x = 1\nend do\n"))
    assert split.true_count == Poly.var("k") - Poly.var("m") + 1


def test_index_split_rejects_non_unit_step():
    loop = _loop("do i = 1, n, 2\n  x = 1\nend do\n")
    assert index_split(_cond("i .le. k"), loop) is None


def test_index_split_rejects_index_on_both_sides():
    assert index_split(_cond("i .le. i + 1"), _loop()) is None


def test_index_split_rejects_unrelated_condition():
    assert index_split(_cond("x .gt. 0.0"), _loop()) is None
    assert index_split(_cond("j .le. k"), _loop()) is None


def test_index_split_expression_bound():
    split = index_split(_cond("i .le. 2*k + 1"), _loop())
    assert split.true_count == 2 * Poly.var("k") + 1


def test_nearly_equal_thresholds():
    assert nearly_equal(PerfExpr.const(100), PerfExpr.const(101))
    assert nearly_equal(PerfExpr.const(100), PerfExpr.const(109))
    assert not nearly_equal(PerfExpr.const(100), PerfExpr.const(150))
    # Symbolic costs are never merged.
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT)
    assert not nearly_equal(n, n)


def test_probability_blend_structure():
    blend = probability_blend(
        PerfExpr.const(10), PerfExpr.const(30), "pt_9"
    )
    assert blend.bounds["pt_9"] == Interval.probability()
    assert blend.evaluate({"pt_9": 0}) == 30
    assert blend.evaluate({"pt_9": 1}) == 10
    assert blend.evaluate({"pt_9": Fraction(1, 2)}) == 20


def test_laurent_index_falls_back_to_midpoint():
    """A body cost Laurent in the index uses the midpoint substitution."""
    import repro

    # Inner loop with trip count n/i: cost has i^-1 terms, which cannot
    # be Faulhaber-summed; the aggregator substitutes the midpoint.
    prog = repro.parse_program(
        "program t\n  integer n, i, j\n  real a(n)\n"
        "  do i = 1, n\n    do j = 1, n/i\n      a(j) = 0.0\n"
        "    end do\n  end do\nend\n"
    )
    cost = repro.predict(prog)
    assert "n" in cost.poly.variables()
    value = cost.evaluate({"n": 100})
    assert value > 0


def test_triangular_sum_is_exact_not_midpoint():
    import repro

    prog = repro.parse_program(
        "program t\n  integer n, i, j\n  real a(n,n)\n"
        "  do i = 1, n\n    do j = i, n\n      a(j,i) = 0.0\n"
        "    end do\n  end do\nend\n"
    )
    cost = repro.predict(prog)
    # Upper-triangular: quadratic leading term, exact Faulhaber.
    assert cost.poly.degree("n") == 2
