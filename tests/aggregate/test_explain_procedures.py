"""Tests for cost breakdowns and source-analyzed library routines."""

import pytest

import repro
from repro.aggregate import (
    CostAggregator,
    LibraryCostTable,
    explain_program,
    render_report,
)
from repro.ir import SymbolTable, parse_expression, parse_program, print_program
from repro.machine import power_machine

DAXPY = """
subroutine daxpy(n, alpha)
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end subroutine
"""


def test_subroutine_parses_with_params():
    routine = parse_program(DAXPY)
    assert routine.name == "daxpy"
    assert routine.params == ("n", "alpha")


def test_subroutine_roundtrip():
    routine = parse_program(DAXPY)
    assert parse_program(print_program(routine)) == routine


def test_subroutine_without_args():
    routine = parse_program("subroutine init()\n  real x\n  x = 0.0\nend\n")
    assert routine.params == ()


def test_define_from_source_and_substitute():
    table = LibraryCostTable()
    entry = table.define_from_source(parse_program(DAXPY), power_machine())
    assert entry.source == "analyzed"
    assert entry.cost.poly.degree("n") == 1
    # Actuals substitute for formals at the call site.
    cost = table.cost_of_call(
        "daxpy", (parse_expression("2*m"), parse_expression("a"))
    )
    assert cost.poly.degree("m") == 1
    assert cost.poly.coeffs_by_var("m")[1].constant_value() == 6


def test_define_from_source_requires_params():
    table = LibraryCostTable()
    plain = parse_program("program p\n  real x\n  x = 1.0\nend\n")
    with pytest.raises(ValueError):
        table.define_from_source(plain, power_machine())
    with pytest.raises(TypeError):
        table.define_from_source("not a program", power_machine())


def test_analyzed_routine_used_by_aggregator():
    """A call site prices the analyzed routine, n bound to the actual."""
    table = LibraryCostTable()
    table.define_from_source(parse_program(DAXPY), power_machine())
    caller = parse_program(
        "program main\n  integer m\n  call daxpy(m, 2.0)\nend\n"
    )
    agg = CostAggregator(
        power_machine(), SymbolTable.from_program(caller), library=table
    )
    cost = agg.cost_program(caller)
    assert cost.poly.degree("m") == 1


def test_explain_program_structure():
    prog = parse_program(
        "program t\n  integer n, i\n  real a(n), s\n"
        "  s = 0.0\n"
        "  do i = 1, n\n    s = s + a(i)\n  end do\n"
        "  call report(s)\nend\n"
    )
    agg = CostAggregator(power_machine(), SymbolTable.from_program(prog))
    report = explain_program(prog, agg)
    kinds = [child.kind for child in report.children]
    assert kinds == ["block", "loop", "call"]
    loop = report.children[1]
    assert loop.details["reductions"] == ["s"]
    assert loop.details["carried_latency"] == 2
    assert "trip_count" in loop.details


def test_explain_nested_and_conditional():
    prog = parse_program(
        "program t\n  integer n, i, j\n  real a(n,n), x\n"
        "  do i = 1, n\n"
        "    if (x .gt. 0.0) then\n"
        "      do j = 1, n\n        a(j,i) = 0.0\n      end do\n"
        "    end if\n  end do\nend\n"
    )
    agg = CostAggregator(power_machine(), SymbolTable.from_program(prog))
    report = explain_program(prog, agg)
    outer = report.children[0]
    assert outer.kind == "loop"
    assert outer.children[0].kind == "if"
    assert outer.children[0].children[0].kind == "loop"


def test_render_report_text():
    prog = repro.parse_program(
        "program t\n  integer n, i\n  real a(n)\n"
        "  do i = 1, n\n    a(i) = a(i) + 1.0\n  end do\nend\n"
    )
    agg = CostAggregator(power_machine(), SymbolTable.from_program(prog))
    text = render_report(explain_program(prog, agg))
    assert "[program]" in text
    assert "[loop] do i = 1, n" in text
    assert "cycles" in text


def test_explain_total_matches_predict():
    prog = repro.parse_program(
        "program t\n  integer n, i, j\n  real a(n,n)\n"
        "  do i = 1, n\n    do j = 1, i\n      a(j,i) = 1.0\n"
        "    end do\n  end do\nend\n"
    )
    agg = CostAggregator(power_machine(), SymbolTable.from_program(prog))
    report = explain_program(prog, agg)
    assert report.cost.poly == repro.predict(prog).poly
