"""Checkpoint/resume determinism for the round-based beam search.

The property the async-job subsystem leans on: stopping a search at
any round boundary and resuming from the captured
:class:`SearchCheckpoint` lands on the *identical* final answer --
same sequence, same cost, same printed program, same node counts --
as the run that was never interrupted.  If this drifts, a resumed job
on a successor shard would silently return a different restructuring
than the shard that died.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregate import CostAggregator
from repro.ir import SymbolTable, parse_program
from repro.machine import power_machine
from repro.transform import (
    IncrementalPredictor,
    Interchange,
    StripMine,
    Unroll,
    astar_search,
)

NEST = """
program sweep
  integer n, i, j
  real a(n,n), b(n,n)
  do i = 1, n
    do j = 1, n
      a(j,i) = b(j,i) + OFFSET
    end do
  end do
end
"""


def variant(index: int) -> str:
    return NEST.replace("OFFSET", f"{index + 1}.0")


def search(source, *, depth, beam_width, on_round=None, resume_from=None):
    program = parse_program(source)
    predictor = IncrementalPredictor(
        CostAggregator(power_machine(), SymbolTable.from_program(program)))
    return astar_search(
        program,
        [Unroll(factors=(2, 4)), Interchange(), StripMine(tiles=(16,))],
        predictor,
        workload={"n": 64}, max_depth=depth, max_nodes=120,
        beam_width=beam_width, on_round=on_round, resume_from=resume_from,
    )


def fingerprint(result):
    return (result.sequence, str(result.cost), str(result.program),
            result.nodes_expanded, result.nodes_generated, result.rounds)


@settings(max_examples=12, deadline=None)
@given(
    index=st.integers(min_value=0, max_value=2),
    depth=st.integers(min_value=2, max_value=3),
    beam_width=st.integers(min_value=1, max_value=2),
    data=st.data(),
)
def test_resume_from_any_round_matches_uninterrupted(index, depth,
                                                     beam_width, data):
    source = variant(index)
    baseline = search(source, depth=depth, beam_width=beam_width)
    assert baseline.completed

    checkpoints = []
    search(source, depth=depth, beam_width=beam_width,
           on_round=lambda progress: checkpoints.append(progress.checkpoint))
    assert checkpoints, "search produced no rounds"

    stop_round = data.draw(
        st.integers(min_value=0, max_value=len(checkpoints) - 1),
        label="stop_round")
    resumed = search(source, depth=depth, beam_width=beam_width,
                     resume_from=checkpoints[stop_round])
    assert fingerprint(resumed) == fingerprint(baseline)


def test_cooperative_stop_reports_incomplete():
    source = variant(0)
    seen = []

    def stop_after_one(progress):
        seen.append(progress.round)
        return False

    result = search(source, depth=3, beam_width=2, on_round=stop_after_one)
    assert seen == [1]
    assert result.completed is False
    assert result.rounds == 1


def test_chained_resume_round_by_round():
    """Resume after every single round (the worst-case crash cadence)."""
    source = variant(1)
    baseline = search(source, depth=2, beam_width=2)

    class StepStop:
        def __init__(self):
            self.checkpoint = None

        def __call__(self, progress):
            self.checkpoint = progress.checkpoint
            return False

    stepper = StepStop()
    result = search(source, depth=2, beam_width=2, on_round=stepper)
    hops = 0
    while not result.completed:
        hops += 1
        assert hops <= baseline.rounds + 2, "resume chain failed to terminate"
        checkpoint = stepper.checkpoint
        stepper = StepStop()
        result = search(source, depth=2, beam_width=2,
                        on_round=stepper, resume_from=checkpoint)

    # The on_round callback fires once per hop, so each resumed leg ran
    # exactly one round; the stitched-together answer must still match.
    assert hops >= 1
    assert fingerprint(result) == fingerprint(baseline)


def test_checkpoint_rounds_are_monotonic():
    rounds = []
    search(variant(2), depth=3, beam_width=2,
           on_round=lambda p: rounds.append(p.checkpoint.rounds))
    assert rounds == sorted(set(rounds))
    assert rounds[0] == 1
