"""Tests for the A* search and incremental prediction (sections 3.2-3.3)."""

from repro.aggregate import CostAggregator
from repro.ir import SymbolTable, parse_program
from repro.machine import power_machine
from repro.transform import (
    IncrementalPredictor,
    Interchange,
    ReorderStatements,
    Unroll,
    astar_search,
    exhaustive_search,
)

LATENCY_BOUND = """
program daxpyish
  integer n, i
  real x(n), y(n)
  real alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""


def _predictor(prog):
    agg = CostAggregator(power_machine(), SymbolTable.from_program(prog))
    return IncrementalPredictor(agg)


def test_incremental_cache_reuses_unchanged_regions():
    prog = parse_program(
        "program t\n  integer n, i, j\n  real a(n), b(n)\n"
        "  do i = 1, n\n    a(i) = a(i) + 1.0\n  end do\n"
        "  do j = 1, n\n    b(j) = b(j) * 2.0\n  end do\nend\n"
    )
    predictor = _predictor(prog)
    first = predictor.predict(prog)
    baseline_misses = predictor.stats.misses
    # Transform only the second loop; the first loop's region must hit.
    unroll = Unroll(factors=(2,))
    site = [s for s in unroll.sites(prog) if s.path == (1,)][0]
    transformed = unroll.apply(prog, site)
    second = predictor.predict(transformed)
    assert predictor.stats.hits >= 1
    assert predictor.stats.misses > baseline_misses  # new region costed
    assert second.poly != first.poly
    # Re-predicting the same program is a pure cache hit.
    hits_before = predictor.stats.hits
    predictor.predict(transformed)
    assert predictor.stats.hits > hits_before
    assert 0 < predictor.stats.hit_rate < 1


def test_incremental_invalidate():
    prog = parse_program(LATENCY_BOUND)
    predictor = _predictor(prog)
    predictor.predict(prog)
    predictor.invalidate()
    assert predictor.stats.total == 0
    predictor.predict(prog)
    assert predictor.stats.misses >= 1


def test_astar_finds_unroll_for_latency_bound_loop():
    prog = parse_program(LATENCY_BOUND)
    predictor = _predictor(prog)
    result = astar_search(
        prog,
        [Unroll(factors=(2, 4))],
        predictor,
        workload={"n": 1000},
        max_depth=2,
        max_nodes=50,
    )
    base_cost = predictor.predict(prog).evaluate({"n": 1000})
    best_cost = result.cost.evaluate({"n": 1000})
    assert best_cost < base_cost
    assert any(step.transformation == "unroll" for step in result.steps)


def test_astar_matches_exhaustive_with_fewer_nodes():
    prog = parse_program(LATENCY_BOUND)
    workload = {"n": 512}
    astar_result = astar_search(
        parse_program(LATENCY_BOUND),
        [Unroll(factors=(2, 4)), ReorderStatements()],
        _predictor(prog),
        workload=workload,
        max_depth=2,
        max_nodes=100,
    )
    oracle = exhaustive_search(
        parse_program(LATENCY_BOUND),
        [Unroll(factors=(2, 4)), ReorderStatements()],
        _predictor(prog),
        workload=workload,
        max_depth=2,
    )
    assert astar_result.cost.evaluate(workload) == oracle.cost.evaluate(workload)


def test_search_without_workload_uses_symbolic_comparison():
    from repro.symbolic import Interval

    prog = parse_program(LATENCY_BOUND)
    predictor = _predictor(prog)
    result = astar_search(
        prog,
        [Unroll(factors=(2,))],
        predictor,
        workload=None,
        max_depth=1,
        max_nodes=20,
        domain={"n": Interval(1, 10 ** 6)},
    )
    # The unrolled version is provably cheaper for all n in bounds:
    # symbolic mode must find it too.
    assert result.steps


def test_search_result_sequence_string():
    prog = parse_program(LATENCY_BOUND)
    predictor = _predictor(prog)
    result = astar_search(
        prog, [Interchange()], predictor, workload={"n": 10}, max_depth=1
    )
    assert result.sequence == "(original)"  # nothing to interchange
    assert result.nodes_expanded >= 1
