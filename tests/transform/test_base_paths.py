"""Edge-case tests for transformation path machinery."""

import pytest

from repro.ir import Do, parse_program
from repro.transform import loop_paths, replace_at, stmt_at

NESTED_IF = """
program t
  integer n, i, j, k
  real a(n)
  do i = 1, n
    if (i .gt. 1) then
      a(i) = 1.0
      do j = 1, 3
        a(j) = 2.0
      end do
    else
      do k = 1, 5
        a(k) = 3.0
      end do
    end if
  end do
end
"""


def test_stmt_at_then_arm():
    prog = parse_program(NESTED_IF)
    paths = dict((loop.var, path) for path, loop in loop_paths(prog))
    # then-arm loop j: path descends do(0) -> if(0) -> index 1 in then.
    assert paths["j"] == (0, 0, 1)
    assert stmt_at(prog, paths["j"]).var == "j"


def test_stmt_at_else_arm_offset():
    prog = parse_program(NESTED_IF)
    paths = dict((loop.var, path) for path, loop in loop_paths(prog))
    assert paths["k"][-1] == 1000  # else offset + index 0
    assert stmt_at(prog, paths["k"]).var == "k"


def test_replace_in_else_arm():
    prog = parse_program(NESTED_IF)
    paths = dict((loop.var, path) for path, loop in loop_paths(prog))
    k_loop = stmt_at(prog, paths["k"])
    doubled = replace_at(prog, paths["k"], (k_loop, k_loop))
    if_stmt = stmt_at(doubled, (0, 0))
    assert len(if_stmt.else_body) == 2
    # The then arm is untouched (and shares structure).
    assert if_stmt.then_body == stmt_at(prog, (0, 0)).then_body


def test_replace_in_then_arm():
    prog = parse_program(NESTED_IF)
    removed = replace_at(prog, (0, 0, 0), ())  # drop `a(i) = 1.0`
    if_stmt = stmt_at(removed, (0, 0))
    assert len(if_stmt.then_body) == 1
    assert isinstance(if_stmt.then_body[0], Do)


def test_bad_paths_raise():
    prog = parse_program(NESTED_IF)
    with pytest.raises(IndexError):
        stmt_at(prog, (9,))
    with pytest.raises(IndexError):
        stmt_at(prog, (0, 0, 0, 0))  # descend into an Assign
    with pytest.raises(IndexError):
        stmt_at(prog, (1000,))       # else offset at root
    with pytest.raises(IndexError):
        replace_at(prog, (), ())
    with pytest.raises(IndexError):
        replace_at(prog, (9,), ())


def test_replace_at_root_splice():
    prog = parse_program(NESTED_IF)
    outer = prog.body[0]
    tripled = replace_at(prog, (0,), (outer, outer, outer))
    assert len(tripled.body) == 3
    assert all(isinstance(s, Do) for s in tripled.body)
