"""Tests for unroll-and-jam (the transformation behind the Matmul kernel)."""

import pytest

import repro
from repro.ir import Do, parse_fragment, parse_program, print_program
from repro.transform import UnrollAndJam, unroll_and_jam

MATMUL = """
program mm
  integer n, i, j, k
  real a(n,n), b(n,n), c(n,n)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
"""


def test_jam_two_level_nest():
    (nest,) = parse_fragment(
        "do i = 1, n\n  do j = 1, n\n    a(i,j) = 0.0\n  end do\nend do\n"
    )
    jammed = unroll_and_jam(nest, 2)
    assert jammed.step.value == 2
    inner = jammed.body[0]
    assert isinstance(inner, Do) and inner.var == "j"
    assert len(inner.body) == 2
    text = print_program(
        parse_program(MATMUL)  # placeholder for re-parse utility
    )
    assert text  # smoke


def test_jam_three_level_nest_goes_innermost():
    prog = parse_program(MATMUL)
    jammed = unroll_and_jam(prog.body[0], 4)
    j_loop = jammed.body[0]
    k_loop = j_loop.body[0]
    assert isinstance(k_loop, Do) and k_loop.var == "k"
    assert len(k_loop.body) == 4
    # Intermediate j loop not duplicated.
    assert len(j_loop.body) == 1


def test_double_jam_equals_paper_kernel():
    """i x4 then j x4 gives the exact cost of the hand-built kernel."""
    from repro.bench import kernel

    prog = parse_program(MATMUL)
    uj = UnrollAndJam(factors=(4,))
    step1 = uj.apply(prog, [s for s in uj.sites(prog) if s.path == (0,)][0])
    step2 = uj.apply(
        step1, [s for s in uj.sites(step1) if s.path == (0, 0)][0]
    )
    inner = step2.body[0].body[0].body[0]
    assert len(inner.body) == 16
    assert repro.predict(step2).poly == repro.predict(
        kernel("matmul").program
    ).poly


def test_jam_improves_matmul():
    prog = parse_program(MATMUL)
    jammed = unroll_and_jam(prog.body[0], 4)
    new_prog = parse_program(MATMUL)
    new_prog = repro.Program(
        new_prog.name, new_prog.decls, (jammed,), new_prog.params
    )
    base = repro.predict(prog).evaluate({"n": 128})
    better = repro.predict(new_prog).evaluate({"n": 128})
    assert better < base


def test_validation_errors():
    (single,) = parse_fragment("do i = 1, n\n  a(i) = 0.0\nend do\n")
    with pytest.raises(ValueError):
        unroll_and_jam(single, 2)
    (nest,) = parse_fragment(
        "do i = 1, n\n  do j = 1, n\n    a(i,j) = 0.0\n  end do\nend do\n"
    )
    with pytest.raises(ValueError):
        unroll_and_jam(nest, 1)
    (tri,) = parse_fragment(
        "do i = 1, n\n  do j = 1, i\n    a(i,j) = 0.0\n  end do\nend do\n"
    )
    with pytest.raises(ValueError):
        unroll_and_jam(tri, 2)


def test_sites_respect_dependence():
    """A (+,-) skewed dependence forbids jamming (as it does interchange)."""
    prog = parse_program(
        "program t\n  integer n, i, j\n  real a(n,n)\n"
        "  do i = 2, n\n    do j = 1, n\n      a(i,j) = a(i-1,j+1) + 1.0\n"
        "    end do\n  end do\nend\n"
    )
    uj = UnrollAndJam(factors=(2,))
    assert [s for s in uj.sites(prog) if s.path == (0,)] == []


def test_sites_and_apply_roundtrip():
    prog = parse_program(MATMUL)
    uj = UnrollAndJam(factors=(2,))
    for site in uj.sites(prog):
        result = uj.apply(prog, site)
        assert parse_program(print_program(result)) == result


def test_jam_in_search():
    """The A* search discovers unroll-and-jam on its own."""
    from repro.aggregate import CostAggregator
    from repro.ir import SymbolTable
    from repro.machine import power_machine
    from repro.transform import IncrementalPredictor, astar_search

    prog = parse_program(MATMUL)
    predictor = IncrementalPredictor(
        CostAggregator(power_machine(), SymbolTable.from_program(prog))
    )
    result = astar_search(
        prog, [UnrollAndJam(factors=(2, 4))], predictor,
        workload={"n": 128}, max_depth=2, max_nodes=60,
    )
    assert any(s.transformation == "unroll-and-jam" for s in result.steps)
    assert result.cost.evaluate({"n": 128}) < predictor.predict(prog).evaluate(
        {"n": 128}
    )
