"""Direct unit tests for the IncrementalPredictor cache wrapper.

Section 3.3.1: only the affected region of a transformation should be
recomputed.  The cache keys on structurally-immutable subtrees, so
these tests pin down the hit/miss accounting that the restructurer
(and now the service worker pool) relies on.
"""

from repro.aggregate import CostAggregator
from repro.ir import SymbolTable, parse_program
from repro.machine import get_machine
from repro.transform import IncrementalPredictor, Unroll
from repro.transform.incremental import CacheStats

FOUR_LOOPS = """
program regions
  integer n, i1, i2, i3, i4
  real a(n), b(n), c(n), d(n)
  do i1 = 1, n
    a(i1) = a(i1) + 1.0
  end do
  do i2 = 1, n
    b(i2) = b(i2) * 2.0
  end do
  do i3 = 1, n
    c(i3) = c(i3) - 3.0
  end do
  do i4 = 1, n
    d(i4) = d(i4) / 4.0
  end do
end
"""


def _predictor(program):
    machine = get_machine("power")
    return IncrementalPredictor(
        CostAggregator(machine, SymbolTable.from_program(program))
    )


def test_stats_start_empty():
    stats = CacheStats()
    assert stats.total == 0
    assert stats.hit_rate == 0.0


def test_first_prediction_is_all_misses():
    program = parse_program(FOUR_LOOPS)
    predictor = _predictor(program)
    predictor.predict(program)
    assert predictor.stats.hits == 0
    assert predictor.stats.misses > 0


def test_repredicting_untouched_program_is_all_hits():
    program = parse_program(FOUR_LOOPS)
    predictor = _predictor(program)
    first = predictor.predict(program)
    baseline = CacheStats(predictor.stats.hits, predictor.stats.misses)

    second = predictor.predict(program)
    assert second == first
    # The re-prediction costs exactly one lookup: the root statement
    # list hits, so nothing below it is even consulted.
    assert predictor.stats.misses == baseline.misses
    assert predictor.stats.hits == baseline.hits + 1


def test_transform_sequence_misses_stay_in_affected_region():
    program = parse_program(FOUR_LOOPS)
    predictor = _predictor(program)
    cost = predictor.predict(program)
    misses_full = predictor.stats.misses

    unroll = Unroll(factors=(2,))
    sites = unroll.sites(program)
    assert len(sites) >= 4
    variant = unroll.apply(program, sites[2])  # transform the third loop

    before = CacheStats(predictor.stats.hits, predictor.stats.misses)
    variant_cost = predictor.predict(variant)
    assert variant_cost != cost

    new_misses = predictor.stats.misses - before.misses
    new_hits = predictor.stats.hits - before.hits
    # Misses: the rebuilt spine (root statement list + the new loop +
    # its body) -- far fewer than a cold prediction of the whole
    # program; the three untouched loops all hit.
    assert 0 < new_misses < misses_full
    assert new_hits >= 3


def test_cache_accounting_across_many_variants():
    program = parse_program(FOUR_LOOPS)
    predictor = _predictor(program)
    predictor.predict(program)

    unroll = Unroll(factors=(2, 4))
    for site in unroll.sites(program):
        predictor.predict(unroll.apply(program, site))

    stats = predictor.stats
    assert stats.total == stats.hits + stats.misses
    # Each probe reuses the other loops' cached regions, so over the
    # sequence hits dominate fresh work.
    assert stats.hit_rate > 0.3


def test_invalidate_resets_cache_and_stats():
    program = parse_program(FOUR_LOOPS)
    predictor = _predictor(program)
    predictor.predict(program)
    predictor.invalidate()
    assert predictor.stats.total == 0
    predictor.predict(program)
    assert predictor.stats.hits == 0
    assert predictor.stats.misses > 0
