"""Round-based beam expansion, transposition tables, and the pool path.

The load-bearing property: for a given ``beam_width``, the search's
result (sequence, cost, node counts) is identical no matter where the
candidate batches are evaluated -- inline, through a caller-supplied
``evaluate_batch``, or on a :class:`SearchPool` -- and ``beam_width=1``
reproduces the classic serial expansion exactly.
"""

import pytest

from repro.aggregate import CostAggregator
from repro.ir import SymbolTable, parse_program
from repro.machine import power_machine
from repro.transform import (
    IncrementalPredictor,
    Interchange,
    SearchPool,
    StripMine,
    TranspositionTable,
    Unroll,
    astar_search,
    exhaustive_search,
)

NEST = """
program sweep
  integer n, i, j
  real a(n,n), b(n,n)
  do i = 1, n
    do j = 1, n
      a(j,i) = b(j,i) + 1.0
    end do
  end do
end
"""

WORKLOAD = {"n": 64}


def _predictor(program):
    return IncrementalPredictor(
        CostAggregator(power_machine(), SymbolTable.from_program(program))
    )


def _transforms():
    return [Unroll(factors=(2, 4)), Interchange(), StripMine(tiles=(16,))]


def _search(**kwargs):
    program = parse_program(NEST)
    return astar_search(
        program, _transforms(), _predictor(program),
        workload=WORKLOAD, max_depth=2, max_nodes=120, **kwargs,
    )


def _fingerprint(result):
    return (result.sequence, str(result.cost), result.nodes_expanded,
            result.nodes_generated)


def test_beam_width_one_is_the_serial_search():
    assert _fingerprint(_search()) == _fingerprint(_search(beam_width=1))


@pytest.mark.parametrize("beam_width", [2, 4])
def test_evaluate_batch_is_bit_identical(beam_width):
    serial = _search(beam_width=beam_width)

    program = parse_program(NEST)
    predictor = _predictor(program)
    calls = []

    def evaluate(programs):
        calls.append(len(programs))
        return [predictor.predict(p) for p in programs]

    batched = astar_search(
        parse_program(NEST), _transforms(), _predictor(program),
        workload=WORKLOAD, max_depth=2, max_nodes=120,
        beam_width=beam_width, evaluate_batch=evaluate,
    )
    assert _fingerprint(batched) == _fingerprint(serial)
    assert calls and max(calls) > 1     # rounds really batch


def test_search_pool_matches_serial():
    serial = _search(beam_width=4)
    program = parse_program(NEST)
    with SearchPool(program, power_machine(), workers=2,
                    executor="thread") as pool:
        pooled = astar_search(
            program, _transforms(), _predictor(program),
            workload=WORKLOAD, max_depth=2, max_nodes=120,
            beam_width=4, evaluate_batch=pool.evaluate,
        )
    assert _fingerprint(pooled) == _fingerprint(serial)


def test_search_workers_spawns_and_closes_its_own_pool():
    serial = _search(beam_width=4)
    parallel = _search(beam_width=4, search_workers=2)
    assert _fingerprint(parallel) == _fingerprint(serial)


def test_wider_beam_still_finds_the_optimum():
    narrow = _search(beam_width=1)
    wide = _search(beam_width=8)
    assert str(wide.cost) == str(narrow.cost)
    assert wide.rounds < narrow.rounds


def test_transposition_table_carries_across_searches():
    program = parse_program(NEST)
    predictor = _predictor(program)
    table = TranspositionTable()
    first = astar_search(
        program, _transforms(), predictor,
        workload=WORKLOAD, max_depth=2, max_nodes=120, table=table,
    )
    filled = len(table)
    assert filled > 0

    # The exhaustive oracle over the same space re-predicts nothing new
    # for states A* already costed.
    before_misses = table.misses
    oracle = exhaustive_search(
        program, _transforms(), predictor, WORKLOAD,
        max_depth=2, table=table,
    )
    assert str(oracle.cost) == str(first.cost)
    assert table.hits > 0
    assert table.misses - before_misses <= len(table) - filled + 1


def test_invalid_beam_width_rejected():
    with pytest.raises(ValueError):
        _search(beam_width=0)


def test_search_pool_degrades_inline_on_pool_failure():
    """A failing executor must not kill the search -- it goes inline."""
    import pickle

    class BrokenPool:
        def submit(self, *args, **kwargs):
            raise pickle.PicklingError("nope")

    program = parse_program(NEST)
    pool = SearchPool(program, power_machine(), workers=2, pool=BrokenPool())
    costs = pool.evaluate([parse_program(NEST)])
    assert len(costs) == 1
    assert pool.workers == 1        # degraded for the rest of the search

    reference = _predictor(program).predict(parse_program(NEST))
    assert str(costs[0]) == str(reference)
    pool.close()


def test_evaluate_dedups_identical_candidates(monkeypatch):
    """Identical programs in one batch are predicted once, answered thrice."""
    from repro.transform import parallel as parallel_mod

    program = parse_program(NEST)
    seen = []
    real = parallel_mod.evaluate_chunk

    def spy(root, root_key, machine, programs, kernel=None):
        seen.append(len(programs))
        return real(root, root_key, machine, programs, kernel)

    monkeypatch.setattr(parallel_mod, "evaluate_chunk", spy)
    pool = SearchPool(program, power_machine(), workers=1)
    costs = pool.evaluate([program, parse_program(NEST), program])
    pool.close()
    assert sum(seen) == 1               # one unique candidate evaluated
    assert len(costs) == 3
    assert str(costs[0]) == str(costs[1]) == str(costs[2])


def test_search_matches_serial_under_arena_kernel():
    """The arena kernel is a drop-in: same search result, bit for bit."""
    from repro.cost import (
        arena_cache_stats,
        reset_arenas,
        set_placement_kernel,
    )
    from repro.cost.placement import reset_placement_cache

    serial = _search(beam_width=4)
    reset_placement_cache()
    reset_arenas()
    previous = set_placement_kernel("arena")
    try:
        arena = _search(beam_width=4)
    finally:
        set_placement_kernel(previous)
    assert _fingerprint(arena) == _fingerprint(serial)
    assert arena_cache_stats()["streams"] > 0   # candidates really routed
