"""Tests for individual transformations and path machinery."""

import pytest

from repro.ir import (
    Assign,
    Do,
    IntConst,
    parse_fragment,
    parse_program,
    print_program,
    print_stmts,
)
from repro.transform import (
    Distribute,
    Fuse,
    Interchange,
    ReorderStatements,
    StripMine,
    Tile2D,
    Unroll,
    distribute_loop,
    fuse_loops,
    interchange_pair,
    loop_paths,
    replace_at,
    stmt_at,
    strip_mine,
    tile_nest_2d,
    unroll_loop,
)

MATMUL = """
program matmul
  integer n, i, j, k
  real a(n,n), b(n,n), c(n,n)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
"""


def test_loop_paths_and_stmt_at():
    prog = parse_program(MATMUL)
    paths = list(loop_paths(prog))
    assert [loop.var for _, loop in paths] == ["i", "j", "k"]
    assert stmt_at(prog, (0,)).var == "i"
    assert stmt_at(prog, (0, 0, 0)).var == "k"
    with pytest.raises(IndexError):
        stmt_at(prog, (5,))
    with pytest.raises(IndexError):
        stmt_at(prog, ())


def test_paths_into_if_arms():
    prog = parse_program(
        "program t\n  integer n, i\n  real a(n)\n"
        "  do i = 1, n\n    if (i .gt. 1) then\n"
        "      do j = 1, 2\n        a(j) = 0.0\n      end do\n"
        "    else\n      do k = 1, 3\n        a(k) = 1.0\n      end do\n"
        "    end if\n  end do\nend\n"
    )
    paths = dict((loop.var, path) for path, loop in loop_paths(prog))
    assert stmt_at(prog, paths["j"]).var == "j"
    assert stmt_at(prog, paths["k"]).var == "k"
    assert paths["k"][-1] >= 1000  # else-arm offset


def test_replace_at_splice_and_delete():
    prog = parse_program("program t\n  real x, y\n  x = 1.0\n  y = 2.0\nend\n")
    deleted = replace_at(prog, (0,), ())
    assert len(deleted.body) == 1
    doubled = replace_at(prog, (1,), (prog.body[1], prog.body[1]))
    assert len(doubled.body) == 3


def test_unroll_loop_body_replication():
    (loop,) = parse_fragment("do i = 1, n\n  a(i) = a(i) + 1.0\nend do\n")
    unrolled = unroll_loop(loop, 4)
    assert unrolled.step == IntConst(4)
    assert len(unrolled.body) == 4
    text = print_stmts((unrolled,))
    assert "a(i + 1)" in text and "a(i + 3)" in text
    with pytest.raises(ValueError):
        unroll_loop(loop, 1)


def test_unroll_with_non_unit_step():
    (loop,) = parse_fragment("do i = 1, n, 2\n  a(i) = 0.0\nend do\n")
    unrolled = unroll_loop(loop, 2)
    text = print_stmts((unrolled,))
    assert "a(i + 1 * 2)" in text or "a(i + 2)" in text


def test_unroll_transformation_sites():
    prog = parse_program(MATMUL)
    unroll = Unroll(factors=(2, 4))
    sites = unroll.sites(prog)
    # Only the innermost k-loop has a straight-line body: 2 factors.
    assert len(sites) == 2
    new_prog = unroll.apply(prog, sites[0])
    k_loop = stmt_at(new_prog, sites[0].path)
    assert len(k_loop.body) == 2


def test_interchange_pair():
    prog = parse_program(MATMUL)
    nest = prog.body[0]
    swapped = interchange_pair(nest)
    assert swapped.var == "j"
    assert swapped.body[0].var == "i"
    # Body preserved under the swap.
    assert swapped.body[0].body == nest.body[0].body


def test_interchange_sites_exclude_triangular():
    prog = parse_program(
        "program t\n  integer n, i, j\n  real a(n,n)\n"
        "  do i = 1, n\n    do j = 1, i\n      a(i,j) = 0.0\n"
        "    end do\n  end do\nend\n"
    )
    assert Interchange().sites(prog) == []


def test_interchange_sites_matmul():
    prog = parse_program(MATMUL)
    sites = Interchange().sites(prog)
    # (i,j) and (j,k) pairs both legal.
    assert len(sites) == 2


def test_strip_mine():
    (loop,) = parse_fragment("do i = 1, n\n  a(i) = 0.0\nend do\n")
    mined = strip_mine(loop, 16)
    assert mined.var == "i_blk"
    assert mined.step == IntConst(16)
    inner = mined.body[0]
    assert inner.var == "i"
    with pytest.raises(ValueError):
        strip_mine(loop, 1)
    (stepped,) = parse_fragment("do i = 1, n, 2\n  a(i) = 0.0\nend do\n")
    with pytest.raises(ValueError):
        strip_mine(stepped, 8)


def test_tile_nest_2d_structure():
    prog = parse_program(
        "program t\n  integer n, i, j\n  real a(n,n)\n"
        "  do i = 1, n\n    do j = 1, n\n      a(i,j) = a(i,j) + 1.0\n"
        "    end do\n  end do\nend\n"
    )
    nest = prog.body[0]
    tiled = tile_nest_2d(nest, 32)
    # Expected order: i_blk, j_blk, i, j.
    order = []
    cur = tiled
    while isinstance(cur, Do):
        order.append(cur.var)
        cur = cur.body[0] if cur.body and isinstance(cur.body[0], Do) else None
    assert order == ["i_blk", "j_blk", "i", "j"]


def test_tile2d_sites_do_not_retile():
    prog = parse_program(
        "program t\n  integer n, i, j\n  real a(n,n)\n"
        "  do i = 1, n\n    do j = 1, n\n      a(i,j) = 0.0\n"
        "    end do\n  end do\nend\n"
    )
    tile = Tile2D(tiles=(16,))
    sites = tile.sites(prog)
    assert len(sites) == 1
    tiled = tile.apply(prog, sites[0])
    # The tiled program offers no further 2-D tiling at the block loops.
    again = [s for s in tile.sites(tiled) if "_blk" in s.description]
    assert not again


def test_fuse_loops():
    first, second = parse_fragment(
        "do i = 1, n\n  a(i) = b(i) + 1.0\nend do\n"
        "do j = 1, n\n  c(j) = a(j) * 2.0\nend do\n"
    )
    fused = fuse_loops(first, second)
    assert len(fused.body) == 2
    text = print_stmts((fused,))
    assert "c(i)" in text  # second body reindexed


def test_fuse_transformation():
    prog = parse_program(
        "program t\n  integer n, i, j\n  real a(n), b(n), c(n)\n"
        "  do i = 1, n\n    a(i) = b(i) + 1.0\n  end do\n"
        "  do j = 1, n\n    c(j) = a(j) * 2.0\n  end do\nend\n"
    )
    fuse = Fuse()
    sites = fuse.sites(prog)
    assert len(sites) == 1
    fused_prog = fuse.apply(prog, sites[0])
    assert len(fused_prog.body) == 1
    assert len(fused_prog.body[0].body) == 2


def test_fuse_blocked_by_dependence():
    prog = parse_program(
        "program t\n  integer n, i, j\n  real a(n), c(n)\n"
        "  do i = 1, n\n    a(i) = 1.0\n  end do\n"
        "  do j = 1, n\n    c(j) = a(j+1)\n  end do\nend\n"
    )
    assert Fuse().sites(prog) == []


def test_distribute():
    prog = parse_program(
        "program t\n  integer n, i\n  real a(n), b(n), c(n), d(n)\n"
        "  do i = 1, n\n    a(i) = b(i) + 1.0\n    c(i) = d(i) * 2.0\n"
        "  end do\nend\n"
    )
    dist = Distribute()
    sites = dist.sites(prog)
    assert len(sites) == 1
    split = dist.apply(prog, sites[0])
    assert len(split.body) == 2
    assert all(isinstance(s, Do) for s in split.body)


def test_distribute_blocked_by_shared_write():
    prog = parse_program(
        "program t\n  integer n, i\n  real a(n), b(n)\n"
        "  do i = 1, n\n    a(i) = b(i) + 1.0\n    b(i) = a(i) * 2.0\n"
        "  end do\nend\n"
    )
    assert Distribute().sites(prog) == []


def test_distribute_loop_validation():
    (loop,) = parse_fragment("do i = 1, n\n  a(i) = 1.0\nend do\n")
    with pytest.raises(ValueError):
        distribute_loop(loop, 1)


def test_reorder_statements():
    prog = parse_program(
        "program t\n  real x, y\n  x = 1.0\n  y = 2.0\nend\n"
    )
    reorder = ReorderStatements()
    sites = reorder.sites(prog)
    assert len(sites) == 1
    swapped = reorder.apply(prog, sites[0])
    assert isinstance(swapped.body[0], Assign)
    assert swapped.body[0].target.name == "y"


def test_reorder_respects_dependences():
    prog = parse_program(
        "program t\n  real x, y\n  x = 1.0\n  y = x + 1.0\nend\n"
    )
    assert ReorderStatements().sites(prog) == []


def test_transform_produces_valid_programs():
    """Every transformation's output reparses (printer round-trip)."""
    from repro.ir import parse_program as reparse

    prog = parse_program(MATMUL)
    for transformation in (Unroll((2,)), Interchange(), StripMine((16,)),
                           Tile2D((16,))):
        for site in transformation.sites(prog):
            result = transformation.apply(prog, site)
            assert reparse(print_program(result)) == result
