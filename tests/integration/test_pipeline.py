"""End-to-end integration tests: source text to validated prediction.

These exercise the full Figure 1 pipeline -- parse, analyze, translate,
place, aggregate -- and cross-check whole-loop predictions against the
reference back-end executing the replicated loop.
"""

import pytest

import repro
from repro.backend import simulate_loop
from repro.bench import kernel, kernel_stream
from repro.ir import SymbolTable
from repro.machine import power_machine


def _loop_reference(name: str, iters: int) -> float:
    """Reference cycles/iteration of a kernel's innermost loop."""
    machine = power_machine()
    k = kernel(name)
    info = kernel_stream(k, machine)
    stream = info.stream
    # Include the loop bookkeeping the aggregator includes.
    from repro.aggregate import CostAggregator

    agg = CostAggregator(machine, SymbolTable.from_program(k.program))
    overhead = agg.translator.loop_overhead()
    base = len(stream)
    for instr in overhead.stream:
        stream.append(instr.atomic, tuple(d + base for d in instr.deps))
    return simulate_loop(
        machine, stream, iters, carried_latency=info.carried_latency
    ).cycles


@pytest.mark.parametrize("name", ["f1", "f2", "f5", "f6", "jacobi"])
def test_whole_loop_prediction_tracks_reference(name):
    """predict() per-iteration cost within 35% of the replicated loop."""
    k = kernel(name)
    cost = repro.predict(k.program)
    n_poly_degree = max(cost.poly.degree(v) for v in cost.poly.variables())
    iters = 32
    reference = _loop_reference(name, iters) / iters

    # Extract the model's per-innermost-iteration cost: the coefficient
    # of the highest-degree term (1 for 1-D kernels, 2 for 2-D ones).
    lead = cost.poly.coeffs_by_var("n")[n_poly_degree].constant_value()
    assert abs(float(lead) - reference) / reference <= 0.35, (
        name, float(lead), reference
    )


def test_matmul_prediction_vs_reference_absolute():
    """Full matmul at a concrete size vs brute-force loop simulation."""
    k = kernel("matmul")
    cost = repro.predict(k.program)
    # Reference: inner loop of 16 FMAs executed n times, for n^2/16
    # (i,j) blocks; compare per-inner-loop cycles.
    iters = 16
    reference = _loop_reference("matmul", iters) / iters
    lead = cost.poly.coeffs_by_var("n")[3].constant_value() * 16
    assert abs(float(lead) - reference) / reference <= 0.25


def test_source_to_decision_pipeline():
    """The full decision loop: parse -> predict -> transform -> verdict.

    The program traverses rows in the inner loop (bad Fortran
    locality); interchanging recovers column order, and the memory-
    aware prediction sees the improvement.
    """
    source = (
        "program stride\n  integer n, i, j\n  real a(n,n), b(n,n)\n"
        "  do i = 1, n\n    do j = 1, n\n      a(i,j) = b(i,j) + 1.0\n"
        "    end do\n  end do\nend\n"
    )
    program = repro.parse_program(source)
    base = repro.predict(program, include_memory=True)

    interchange = repro.Interchange()
    sites = interchange.sites(program)
    assert sites
    swapped = interchange.apply(program, sites[0])
    swapped_cost = repro.predict(swapped, include_memory=True)

    # Column-major inner traversal is cheaper, and the comparator
    # certifies it over the whole domain without guessing n.
    assert swapped_cost.evaluate({"n": 64}) < base.evaluate({"n": 64})
    result = repro.compare(
        swapped_cost, base, domain={"n": repro.Interval(16, 10 ** 6)}
    )
    assert result.verdict in (repro.Verdict.FIRST_ALWAYS, repro.Verdict.DEPENDS)


def test_transformed_programs_reparse_and_repredict():
    """Print/parse/predict round-trips survive every transformation."""
    program = kernel("jacobi").program
    base = repro.predict(program)
    for transformation in (
        repro.Unroll(factors=(2,)),
        repro.Interchange(),
        repro.StripMine(tiles=(16,)),
    ):
        for site in transformation.sites(program):
            variant = transformation.apply(program, site)
            text = repro.print_program(variant)
            reparsed = repro.parse_program(text)
            assert reparsed == variant
            cost = repro.predict(reparsed)
            assert cost.poly.variables()  # still symbolic in n


def test_predict_is_deterministic():
    program = kernel("rb").program
    assert repro.predict(program).poly == repro.predict(program).poly


def test_backend_flag_monotonicity():
    """Turning optimizations off never makes the prediction cheaper."""
    program = kernel("f1").program
    aggressive = repro.predict(program, flags=repro.AGGRESSIVE_BACKEND)
    naive = repro.predict(program, flags=repro.NAIVE_BACKEND)
    for n in (10, 100, 1000):
        assert naive.evaluate({"n": n}) >= aggressive.evaluate({"n": n})


def test_memory_costs_only_add():
    program = kernel("jacobi").program
    without = repro.predict(program)
    with_mem = repro.predict(program, include_memory=True)
    for n in (16, 64, 256):
        assert with_mem.evaluate({"n": n}) >= without.evaluate({"n": n})


def test_machine_hierarchy_ordering():
    """scalar >= power >= wide on every kernel at realistic sizes."""
    for name in ("f1", "f5", "matmul", "jacobi"):
        program = kernel(name).program
        costs = {
            m: repro.predict(program, machine=m).evaluate({"n": 128})
            for m in ("scalar", "power", "wide")
        }
        assert costs["scalar"] >= costs["power"] >= costs["wide"], name
