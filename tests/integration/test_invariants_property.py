"""Cross-cutting property tests: invariants the whole stack must keep."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import random_stream
from repro.cost import StraightLineEstimator, place_stream
from repro.machine import get_machine, machine_names


@given(st.integers(1, 40), st.integers(0, 10 ** 6))
@settings(max_examples=40, deadline=None)
def test_placement_deterministic(size, seed):
    """Same stream, same machine -> identical placement, always."""
    machine = get_machine("power")
    stream = random_stream(machine, size, seed=seed)
    first = place_stream(machine, list(stream))
    second = place_stream(machine, list(stream))
    assert first.cycles == second.cycles
    assert [op.time for op in first.ops] == [op.time for op in second.ops]


@given(st.integers(1, 30), st.integers(0, 10 ** 6))
@settings(max_examples=40, deadline=None)
def test_costblock_invariants(size, seed):
    machine = get_machine("power")
    stream = random_stream(machine, size, seed=seed)
    block = place_stream(machine, list(stream)).block
    assert block.lo >= 0
    assert block.occupied_hi >= block.lo
    assert block.completion >= block.occupied_hi
    for bin_id in block.used_bins():
        first, last = block.bin_profiles[bin_id]
        assert block.lo <= first <= last < block.occupied_hi
        assert block.bottom_gap(bin_id) >= 0
        assert block.top_gap(bin_id) >= 0
        assert 0 < block.bin_occupancy[bin_id] <= last - first + 1
    assert 0.0 <= block.unroll_headroom() <= 1.0


@given(st.integers(2, 20), st.integers(0, 1000), st.integers(2, 4))
@settings(max_examples=30, deadline=None)
def test_unrolled_estimate_nearly_subadditive(size, seed, factor):
    """k-fold replication costs about at most k separate executions.

    Exact subadditivity does NOT hold: greedy lowest-slot placement has
    Graham-style scheduling anomalies, where interleaving two copies
    can exceed stacking them (the paper's model "imitates, not
    outperforms" the compiler, so the anomaly is faithful).  One extra
    single-execution span bounds the anomaly comfortably in practice.
    """
    machine = get_machine("power")
    stream = random_stream(machine, size, seed=seed)
    estimator = StraightLineEstimator(machine)
    single = estimator.estimate(stream).cycles
    replicated = estimator.estimate_unrolled(stream, factor).cycles
    assert replicated <= (factor + 1) * single
    assert replicated >= single


@given(st.integers(1, 25), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_steady_never_exceeds_single_visit(size, seed):
    machine = get_machine("power")
    stream = random_stream(machine, size, seed=seed)
    cost = StraightLineEstimator(machine).estimate(stream)
    assert 0 <= cost.steady_cycles <= max(cost.cycles, 1)


@given(st.integers(1, 20), st.integers(0, 500))
@settings(max_examples=20, deadline=None)
def test_machines_all_handle_any_power_shaped_dag(size, seed):
    """Every registered machine places its own random streams."""
    for name in machine_names():
        machine = get_machine(name)
        stream = random_stream(machine, size, seed=seed)
        placed = place_stream(machine, list(stream))
        assert placed.cycles > 0
