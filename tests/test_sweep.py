"""Width-sweep evaluation: ladder semantics and sharing guarantees."""

from fractions import Fraction

import pytest

import repro
from repro.machine import family_machine
from repro.sweep import sweep_program

SAXPY = """
program saxpy
  integer n, i
  real a, x(n), y(n)
  do i = 1, n
    y(i) = a * x(i) + y(i)
  end do
end
"""

STRAIGHT = """
program s
  real x, y
  x = 1.0
  y = x * 2.0
end
"""


@pytest.fixture(scope="module")
def saxpy():
    return repro.parse_program(SAXPY)


def test_ladder_points_and_saturation(saxpy):
    out = sweep_program(saxpy, widths=(1, 2, 4, 6, 8),
                        bindings={"n": Fraction(100)})
    assert out.widths == (1, 2, 4, 6, 8)
    cycles = [p.cycles for p in out.points]
    # Monotone non-increasing: width never hurts.
    assert cycles == sorted(cycles, reverse=True)
    # Width 1 is fetch-bound at exactly N cycles.
    assert out.points[0].cycles == out.instructions
    assert out.points[0].ipc == 1.0
    # IPC grows with width until saturation.
    assert out.points[-1].ipc > 4.0
    assert out.saturation_width in out.widths


def test_base_is_max_of_placement_and_fetch_bound(saxpy):
    out = sweep_program(saxpy, widths=(1, 8), bindings={"n": Fraction(100)})
    for point in out.points:
        fetch = out.instructions / point.width
        assert point.cycles == pytest.approx(
            max(point.placement_cycles, fetch), rel=1e-9)


def test_fingerprints_match_family_members(saxpy):
    out = sweep_program(saxpy, widths=(2, 4), bindings={"n": Fraction(10)})
    for point in out.points:
        assert point.fingerprint == family_machine(point.width).fingerprint()


def test_penalties_appear_with_rates(saxpy):
    clean = sweep_program(saxpy, widths=(4,), bindings={"n": Fraction(100)})
    dirty = sweep_program(saxpy, widths=(4,), bindings={"n": Fraction(100)},
                          branch_miss_rate=0.02, cache_miss_rate=0.01)
    assert dirty.points[0].penalty_cycles > 0
    assert dirty.points[0].cycles == pytest.approx(
        clean.points[0].cycles + dirty.points[0].penalty_cycles, abs=1e-3)


def test_bad_rates_rejected(saxpy):
    with pytest.raises(ValueError):
        sweep_program(saxpy, branch_miss_rate=1.5)
    with pytest.raises(ValueError):
        sweep_program(saxpy, cache_miss_rate=-0.1)


def test_missing_binding_raises(saxpy):
    from repro.symbolic.poly import PolyError

    # PolyError is in the service's client-error set, so this surfaces
    # as a 400 at the endpoint rather than a 500.
    with pytest.raises(PolyError):
        sweep_program(saxpy, widths=(1, 2))


def test_constant_program_needs_no_bindings():
    out = sweep_program(repro.parse_program(STRAIGHT), widths=(1, 4))
    assert out.instructions > 0
    assert all(p.cycles >= 1 for p in out.points)


def test_default_ladder_and_dedup(saxpy):
    out = sweep_program(saxpy, bindings={"n": Fraction(50)})
    assert out.widths == (1, 2, 4, 6, 8)
    # Widths 1 and 2 share a unit configuration (1 pipe each), so their
    # placement cycles are identical by construction.
    assert out.points[0].placement_cycles == out.points[1].placement_cycles


def test_translation_sharing_is_exercised(saxpy):
    out = sweep_program(saxpy, widths=(1, 2, 4, 8),
                        bindings={"n": Fraction(100)})
    # Later widths replay the first width's translations via the facade.
    assert out.shared_translations > 0
    assert out.batched_streams > 0


def test_sweep_matches_single_width_prediction(saxpy):
    """A one-width sweep with the fetch bound folded in agrees with
    predicting directly on the family member."""
    member = family_machine(4)
    cost = repro.predict(saxpy, machine=member)
    placed = float(cost.evaluate({"n": Fraction(100)}))
    out = sweep_program(saxpy, widths=(4,), bindings={"n": Fraction(100)})
    assert out.points[0].placement_cycles == pytest.approx(placed)


def test_sweep_respects_machine_argument(saxpy):
    wide = sweep_program(saxpy, machine="wide", widths=(2,),
                         bindings={"n": Fraction(20)})
    power = sweep_program(saxpy, machine="power", widths=(2,),
                          bindings={"n": Fraction(20)})
    assert wide.machine == "wide"
    assert wide.points[0].fingerprint != power.points[0].fingerprint
