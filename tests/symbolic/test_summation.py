"""Tests for closed-form Faulhaber summation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Poly, PolyError
from repro.symbolic.summation import power_sum, sum_poly


def test_power_sum_closed_forms():
    n = Poly.var("n")
    assert power_sum(0) == n
    assert power_sum(1) == (n * n + n) / 2
    assert power_sum(2) == (2 * n ** 3 + 3 * n ** 2 + n) / 6
    assert power_sum(3) == ((n * n + n) / 2) ** 2  # Nicomachus


def test_power_sum_negative_rejected():
    with pytest.raises(ValueError):
        power_sum(-1)


@given(st.integers(0, 6), st.integers(1, 30))
@settings(max_examples=60)
def test_power_sum_matches_bruteforce(m, n):
    expected = sum(k ** m for k in range(1, n + 1))
    assert power_sum(m).evaluate({"n": n}) == expected


def test_sum_poly_constant_body():
    n = Poly.var("n")
    assert sum_poly(Poly.const(3), "k", Poly.one(), n) == 3 * n


def test_sum_poly_linear_body():
    n, k = Poly.var("n"), Poly.var("k")
    assert sum_poly(k, "k", Poly.one(), n) == (n * n + n) / 2


def test_sum_poly_shifted_bounds():
    k = Poly.var("k")
    # sum_{k=5}^{9} k = 35
    result = sum_poly(k, "k", Poly.const(5), Poly.const(9))
    assert result.constant_value() == 35


def test_sum_poly_with_step():
    k = Poly.var("k")
    # 2 + 5 + 8 = 15 over k = 2, 8 step 3
    result = sum_poly(k, "k", Poly.const(2), Poly.const(8), Poly.const(3))
    assert result.constant_value() == 15


def test_sum_poly_other_variables_pass_through():
    k, m, n = Poly.var("k"), Poly.var("m"), Poly.var("n")
    result = sum_poly(m * k, "k", Poly.one(), n)
    assert result == m * (n * n + n) / 2


def test_sum_poly_body_without_var():
    n, m = Poly.var("n"), Poly.var("m")
    assert sum_poly(m, "k", Poly.one(), n) == m * n


def test_sum_poly_laurent_rejected():
    n, k = Poly.var("n"), Poly.var("k")
    with pytest.raises(PolyError):
        sum_poly(1 / k, "k", Poly.one(), n)


def test_sum_poly_nonmonomial_step_rejected():
    n, k, s = Poly.var("n"), Poly.var("k"), Poly.var("s")
    with pytest.raises(PolyError):
        sum_poly(k, "k", Poly.one(), n, s + 1)


def test_sum_poly_symbolic_step():
    k, n, s = Poly.var("k"), Poly.var("n"), Poly.var("s")
    result = sum_poly(Poly.one(), "k", Poly.one(), n, s)
    # Trip count (n - 1 + s)/s.
    assert result == (n - 1) / s + 1


@given(
    st.lists(st.integers(-4, 4), min_size=1, max_size=4),
    st.integers(-3, 3), st.integers(0, 12), st.integers(1, 3),
)
@settings(max_examples=80)
def test_sum_poly_matches_bruteforce(coeffs, lb, width, step):
    body = Poly.from_coeffs([Fraction(c) for c in coeffs], "k")
    ub = lb + width
    result = sum_poly(
        body, "k", Poly.const(lb), Poly.const(ub), Poly.const(step)
    )
    # Brute force, matching Fortran trip semantics for positive steps.
    expected = Fraction(0)
    k = lb
    while k <= ub:
        expected += body.evaluate({"k": k})
        k += step
    # The closed form uses the polynomial trip count (ub-lb+step)/step,
    # which equals the Fortran count when the span divides evenly; when
    # it does not, the closed form "sums" a fractional final iteration.
    if (ub - lb + step) % step == 0:
        assert result.evaluate({}) == expected


def test_triangular_double_sum():
    """sum_{i=1..n} sum_{j=1..i} 1 = n(n+1)/2, composed."""
    n, i = Poly.var("n"), Poly.var("i")
    inner = sum_poly(Poly.one(), "j", Poly.one(), i)  # = i
    outer = sum_poly(inner, "i", Poly.one(), n)
    assert outer == (n * n + n) / 2
