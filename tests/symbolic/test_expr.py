"""Tests for PerfExpr: bounds merging, unknowns, sign queries."""

from fractions import Fraction

import pytest

from repro.symbolic import (
    Interval,
    PerfExpr,
    Poly,
    PolyError,
    Sign,
    Unknown,
    UnknownKind,
    as_perf,
)


def test_const_and_zero():
    assert PerfExpr.const(5).constant_value() == 5
    assert PerfExpr.zero().poly.is_zero()
    assert as_perf(3).constant_value() == 3
    assert as_perf(Poly.var("n")).variables() == {"n"}


def test_unknown_default_bounds():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT)
    assert n.bounds["n"].nonneg()
    p = PerfExpr.unknown("pt", UnknownKind.BRANCH_PROB)
    assert p.bounds["pt"] == Interval.probability()
    x = PerfExpr.unknown("x")
    assert x.bounds["x"] == Interval.unbounded()


def test_arithmetic_merges_bounds():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 100))
    m = PerfExpr.unknown("m", UnknownKind.TRIP_COUNT, Interval(1, 50))
    combined = n * 3 + m
    assert combined.bounds["n"] == Interval(1, 100)
    assert combined.bounds["m"] == Interval(1, 50)
    assert combined.unknowns["n"].kind is UnknownKind.TRIP_COUNT


def test_bound_intersection_on_merge():
    a = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(0, 100))
    b = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(50, 200))
    merged = a + b
    assert merged.bounds["n"] == Interval(50, 100)


def test_contradictory_bounds_raise():
    a = PerfExpr.unknown("n", interval=Interval(0, 1))
    b = PerfExpr.unknown("n", interval=Interval(5, 9))
    with pytest.raises(PolyError):
        a + b


def test_with_bound_narrows():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(0, 1000))
    narrowed = n.with_bound("n", Interval(10, 20))
    assert narrowed.bounds["n"] == Interval(10, 20)


def test_substitute_removes_unknown():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 100))
    cost = 3 * n + 7
    bound = cost.substitute({"n": 10})
    assert bound.constant_value() == 37
    assert "n" not in bound.bounds
    assert "n" not in bound.unknowns


def test_sign_uses_attached_bounds():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 100))
    assert (n + 1).sign() is Sign.POSITIVE
    assert (n - 200).sign() is Sign.NEGATIVE
    assert (n - 50).sign() is Sign.UNKNOWN


def test_sign_defaults_for_branch_probability():
    pt = PerfExpr.unknown("pt", UnknownKind.BRANCH_PROB)
    # pt - 2 is always negative since pt in [0,1].
    assert (pt - 2).sign() is Sign.NEGATIVE


def test_simplified_uses_attached_bounds():
    x = PerfExpr.unknown("x", interval=Interval(3, 100))
    expr = x * x * x * x * 4 + 1 / (x * x * x).poly  # 4x^4 + x^-3
    perf = PerfExpr(expr.poly if isinstance(expr, PerfExpr) else expr, x.bounds, x.unknowns)
    result = perf.simplified()
    assert result.changed


def test_sub_and_div():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 10))
    diff = (3 * n) - n
    assert diff.poly == 2 * Poly.var("n")
    quot = (n * n) / n
    assert quot.poly == Poly.var("n")
    assert (5 - n).poly == 5 - Poly.var("n")


def test_evaluate():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT)
    assert (2 * n + 1).evaluate({"n": 4}) == 9


def test_effective_bounds_fills_gaps():
    raw = PerfExpr(Poly.var("q"))
    assert raw.effective_bounds()["q"] == Interval.unbounded()


def test_unknown_dataclass():
    u = Unknown("n", UnknownKind.TRIP_COUNT, "trips of loop i")
    assert u.name == "n"
    assert u.default_interval().nonneg()


def test_str():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT)
    assert str(2 * n + 1) == "2*n + 1"
