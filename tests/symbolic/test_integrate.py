"""Tests for exact integration and P+/P- splitting (paper section 3.1)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    Interval,
    Poly,
    PolyError,
    antiderivative,
    integrate,
    split_integrals,
)


def test_antiderivative_power_rule():
    x = Poly.var("x")
    assert antiderivative(x, "x") == Fraction(1, 2) * x ** 2
    assert antiderivative(x ** 2, "x") == Fraction(1, 3) * x ** 3
    assert antiderivative(Poly.const(3), "x") == 3 * x


def test_antiderivative_roundtrip():
    x = Poly.var("x")
    p = 4 * x ** 3 - 2 * x + 7
    assert antiderivative(p, "x").derivative("x") == p


def test_antiderivative_log_term_rejected():
    x = Poly.var("x")
    with pytest.raises(PolyError):
        antiderivative(1 / x, "x")


def test_antiderivative_laurent_ok():
    x = Poly.var("x")
    assert antiderivative(x ** -2, "x") == -(x ** -1)


def test_integrate_simple():
    x = Poly.var("x")
    assert integrate(x, "x", Interval(0, 2)) == 2
    assert integrate(x ** 2, "x", Interval(0, 3)) == 9
    assert integrate(Poly.const(5), "x", Interval(1, 3)) == 10


def test_integrate_respects_multivariate_rejection():
    p = Poly.var("x") * Poly.var("y")
    with pytest.raises(PolyError):
        integrate(p, "x", Interval(0, 1))


def test_integrate_unbounded_rejected():
    with pytest.raises(ValueError):
        integrate(Poly.var("x"), "x", Interval.nonnegative())


def test_split_integrals_linear():
    x = Poly.var("x")
    result = split_integrals(x - 5, "x", Interval(0, 10))
    assert result.negative_integral == Fraction(25, 2)
    assert result.positive_integral == Fraction(25, 2)
    assert result.positive_measure == 5
    assert result.negative_measure == 5
    assert result.net == 0


def test_split_integrals_all_positive():
    x = Poly.var("x")
    result = split_integrals(x + 1, "x", Interval(0, 2))
    assert result.positive_integral == 4
    assert result.negative_integral == 0
    assert result.positive_measure == 2


def test_split_integrals_cubic():
    x = Poly.var("x")
    p = (x - 1) * (x - 3)  # negative on (1,3)
    result = split_integrals(p, "x", Interval(0, 4))
    # Exact: ∫0..4 = 4/3 + 4/3 positive mass, 4/3 negative mass... compute:
    total = integrate(p, "x", Interval(0, 4))
    assert result.net == total
    assert result.negative_measure == 2
    assert result.negative_integral == Fraction(4, 3)


@given(st.integers(-4, 4), st.integers(-4, 4), st.integers(-4, 4))
@settings(max_examples=50)
def test_split_parts_sum_to_total(c0, c1, c2):
    poly = Poly.from_coeffs([Fraction(c0), Fraction(c1), Fraction(c2)], "x")
    domain = Interval(0, 7)
    result = split_integrals(poly, "x", domain)
    # Small slack for irrational root endpoints approximated rationally.
    total = integrate(poly, "x", domain)
    assert abs(float(result.net - total)) < 1e-6
    assert result.positive_integral >= 0
    assert result.negative_integral >= 0
    assert result.positive_measure + result.negative_measure <= Fraction(7)
