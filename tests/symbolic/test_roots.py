"""Tests for closed-form and numeric real-root finding."""

import math
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    Poly,
    PolyError,
    real_roots,
    solve_cubic,
    solve_quadratic,
    solve_quartic,
)


def _poly_from(coeffs, var="x"):
    return Poly.from_coeffs([Fraction(c) for c in coeffs], var)


def test_linear_root_exact():
    roots = real_roots(_poly_from([-6, 2]), "x")  # 2x - 6
    assert len(roots) == 1
    assert roots[0].exact and roots[0].value == 3


def test_quadratic_two_roots():
    roots = real_roots(_poly_from([-1, 0, 1]), "x")  # x^2 - 1
    values = [r.value for r in roots]
    assert values == [-1, 1]
    assert all(r.exact for r in roots)


def test_quadratic_no_real_roots():
    assert real_roots(_poly_from([1, 0, 1]), "x") == []


def test_quadratic_double_root():
    roots = real_roots(_poly_from([1, -2, 1]), "x")  # (x-1)^2
    assert [r.value for r in roots] == [1]


def test_cubic_three_roots():
    # (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6
    roots = real_roots(_poly_from([-6, 11, -6, 1]), "x")
    assert [r.value for r in roots] == [1, 2, 3]
    assert all(r.exact for r in roots)


def test_cubic_one_real_root():
    # x^3 + x + 1 has a single irrational real root near -0.6823
    roots = real_roots(_poly_from([1, 1, 0, 1]), "x")
    assert len(roots) == 1
    assert math.isclose(roots[0].as_float(), -0.6823278, rel_tol=1e-5)


def test_quartic_four_roots():
    # (x^2-1)(x^2-4) = x^4 - 5x^2 + 4
    roots = real_roots(_poly_from([4, 0, -5, 0, 1]), "x")
    assert [r.value for r in roots] == [-2, -1, 1, 2]


def test_quartic_biquadratic_no_roots():
    roots = real_roots(_poly_from([1, 0, 1, 0, 1]), "x")
    assert roots == []


def test_quintic_numeric_fallback():
    # (x-1)(x-2)(x-3)(x-4)(x-5)
    coeffs = [-120, 274, -225, 85, -15, 1]
    roots = real_roots(_poly_from(coeffs), "x")
    assert len(roots) == 5
    for root, expect in zip(roots, [1, 2, 3, 4, 5]):
        assert math.isclose(root.as_float(), expect, abs_tol=1e-6)


def test_zero_constant_cases():
    assert real_roots(Poly.const(5), "x") == []
    with pytest.raises(PolyError):
        real_roots(Poly.zero(), "x")


def test_root_at_zero():
    roots = real_roots(_poly_from([0, 0, 1]), "x")  # x^2
    assert [r.value for r in roots] == [0]
    roots = real_roots(_poly_from([0, -1, 1]), "x")  # x(x-1)
    assert [r.value for r in roots] == [0, 1]


def test_fractional_root_polish():
    # 2x - 1 => x = 1/2 exactly
    roots = real_roots(_poly_from([-1, 2]), "x")
    assert roots[0].exact and roots[0].value == Fraction(1, 2)
    # (2x-1)(x-3) = 2x^2 - 7x + 3
    roots = real_roots(_poly_from([3, -7, 2]), "x")
    assert [r.value for r in roots] == [Fraction(1, 2), 3]
    assert all(r.exact for r in roots)


def test_solve_quadratic_direct():
    assert solve_quadratic(1, -3, 2) == [1, 2]
    assert solve_quadratic(1, 0, 1) == []
    assert solve_quadratic(1, -2, 1) == [1]


def test_solve_cubic_rejects_zero_leading():
    with pytest.raises(ValueError):
        solve_cubic(0, 1, 1, 1)
    with pytest.raises(ValueError):
        solve_quartic(0, 1, 1, 1, 1)


@given(st.lists(st.integers(-6, 6), min_size=2, max_size=4))
@settings(max_examples=60)
def test_constructed_roots_are_found(root_values):
    """Build a polynomial from chosen integer roots; all must be found."""
    poly = Poly.one()
    x = Poly.var("x")
    for r in root_values:
        poly = poly * (x - r)
    found = sorted(root.as_float() for root in real_roots(poly, "x"))
    expected = sorted(set(root_values))
    assert len(found) == len(expected)
    for got, want in zip(found, expected):
        assert math.isclose(got, want, abs_tol=1e-5)


@given(
    st.integers(-5, 5), st.integers(-5, 5),
    st.integers(-5, 5), st.integers(1, 5),
)
@settings(max_examples=60)
def test_roots_actually_vanish(c0, c1, c2, c3):
    poly = _poly_from([c0, c1, c2, c3])
    for root in real_roots(poly, "x"):
        if root.exact:
            assert poly.evaluate({"x": root.value}) == 0
        else:
            assert abs(poly.evaluate_float({"x": root.as_float()})) < 1e-5
