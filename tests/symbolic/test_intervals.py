"""Tests for interval arithmetic and polynomial bound propagation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Interval, Poly, bound_poly


def test_construction_and_validation():
    iv = Interval(1, 5)
    assert iv.lo == 1 and iv.hi == 5
    with pytest.raises(ValueError):
        Interval(5, 1)
    assert Interval.point(3).is_point()
    assert Interval.unbounded().contains(1e9)
    assert Interval.probability() == Interval(0, 1)


def test_predicates():
    assert Interval(1, 2).strictly_positive()
    assert Interval(-2, -1).strictly_negative()
    assert Interval(0, 2).nonneg()
    assert not Interval(0, 2).strictly_positive()
    assert Interval(-1, 1).contains(0)


def test_add_sub_neg():
    a, b = Interval(1, 2), Interval(-1, 3)
    assert a + b == Interval(0, 5)
    assert -a == Interval(-2, -1)
    assert a - b == Interval(-2, 3)


def test_mul_sign_cases():
    assert Interval(1, 2) * Interval(3, 4) == Interval(3, 8)
    assert Interval(-2, -1) * Interval(3, 4) == Interval(-8, -3)
    assert Interval(-1, 2) * Interval(-3, 4) == Interval(-6, 8)


def test_power():
    assert Interval(-2, 3).power(2) == Interval(0, 9)
    assert Interval(-2, 3).power(3) == Interval(-8, 27)
    assert Interval(2, 4).power(-1) == Interval(Fraction(1, 4), Fraction(1, 2))
    with pytest.raises(ValueError):
        Interval(-1, 1).power(-1)
    assert Interval(-5, 5).power(0) == Interval.point(1)


def test_reciprocal_negative_interval():
    assert Interval(-4, -2).reciprocal() == Interval(Fraction(-1, 2), Fraction(-1, 4))


def test_intersect():
    assert Interval(0, 5).intersect(Interval(3, 9)) == Interval(3, 5)
    assert Interval(0, 1).intersect(Interval(2, 3)) is None


def test_scale():
    assert Interval(1, 2).scale(3) == Interval(3, 6)
    assert Interval(1, 2).scale(-1) == Interval(-2, -1)


def test_midpoint_and_width():
    assert Interval(1, 3).midpoint() == 2
    assert Interval(1, 3).width() == 2
    with pytest.raises(ValueError):
        Interval.unbounded().midpoint()


def test_infinite_endpoint_arithmetic():
    inf = float("inf")
    iv = Interval(0, inf)
    assert (iv + Interval(1, 2)).lo == 1
    assert (iv * Interval(2, 3)).hi == inf
    assert iv.power(2).hi == inf


def test_bound_poly_simple():
    x = Poly.var("x")
    p = x * x - 2 * x
    enclosure = bound_poly(p, {"x": Interval(0, 3)})
    # True range is [-1, 3]; naive interval arithmetic gives [-6, 9].
    assert enclosure.contains(-1)
    assert enclosure.contains(3)


def test_bound_poly_definite_sign():
    n = Poly.var("n")
    p = n * n + 1
    enclosure = bound_poly(p, {"n": Interval(-10, 10)})
    assert enclosure.strictly_positive()


def test_bound_poly_missing_bounds():
    from repro.symbolic import PolyError

    with pytest.raises(PolyError):
        bound_poly(Poly.var("x"), {})


@given(
    st.integers(-5, 5), st.integers(0, 5),
    st.integers(-5, 5), st.integers(0, 5),
    st.integers(-3, 3), st.integers(-3, 3),
)
@settings(max_examples=80)
def test_mul_soundness(alo, awidth, blo, bwidth, x_off, y_off):
    a = Interval(alo, alo + awidth)
    b = Interval(blo, blo + bwidth)
    # Pick points inside each interval; the product must land inside a*b.
    x = min(max(alo + abs(x_off), alo), alo + awidth)
    y = min(max(blo + abs(y_off), blo), blo + bwidth)
    assert (a * b).contains(Fraction(x) * Fraction(y))


@given(st.integers(-4, 4), st.integers(0, 4), st.integers(1, 4))
@settings(max_examples=80)
def test_power_soundness(lo, width, exp):
    iv = Interval(lo, lo + width)
    for point in (iv.lo, iv.midpoint(), iv.hi):
        assert iv.power(exp).contains(Fraction(point) ** exp)
