"""Unit and property tests for exact multivariate Laurent polynomials."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Poly, PolyError


def test_const_and_zero():
    assert Poly.const(0).is_zero()
    assert Poly.const(5).constant_value() == 5
    assert Poly.zero() == 0
    assert Poly.one() == 1
    assert not Poly.zero()
    assert Poly.const(3)


def test_var_construction():
    n = Poly.var("n")
    assert n.variables() == {"n"}
    assert n.degree() == 1
    assert Poly.var("n", 0) == 1
    with pytest.raises(PolyError):
        Poly.var("")


def test_addition_and_subtraction():
    n = Poly.var("n")
    m = Poly.var("m")
    p = n + m + 1
    q = p - m
    assert q == n + 1
    assert p - p == 0
    assert 1 + n == n + 1
    assert (3 - n) + n == 3


def test_multiplication_expands():
    n = Poly.var("n")
    p = (n + 1) * (n - 1)
    assert p == n * n - 1
    assert p.degree() == 2


def test_power():
    n = Poly.var("n")
    assert (n + 1) ** 2 == n * n + 2 * n + 1
    assert (n + 1) ** 0 == 1
    assert n ** 3 == n * n * n


def test_negative_power_of_monomial():
    n = Poly.var("n")
    inv = n ** -1
    assert inv * n == 1
    assert (2 * n) ** -2 == Fraction(1, 4) * n ** -2


def test_negative_power_of_sum_rejected():
    n = Poly.var("n")
    with pytest.raises(PolyError):
        (n + 1) ** -1


def test_division_by_constant_and_monomial():
    n = Poly.var("n")
    assert (2 * n) / 2 == n
    assert (n * n) / n == n
    assert (n * n + n) / n == n + 1
    with pytest.raises(PolyError):
        n / Poly.zero()


def test_laurent_detection():
    n = Poly.var("n")
    assert not (n + 1).is_laurent()
    assert (1 / n + n).is_laurent()
    assert (1 / n).min_degree("n") == -1


def test_substitute_full_and_partial():
    n, m = Poly.var("n"), Poly.var("m")
    p = n * n + m
    assert p.substitute({"n": 3}) == 9 + m
    assert p.substitute({"n": 3, "m": 1}) == 10
    assert p.substitute({"n": m}) == m * m + m
    assert p.substitute({}) == p


def test_substitute_zero_into_laurent_raises():
    n = Poly.var("n")
    with pytest.raises(PolyError):
        (1 / n).substitute({"n": 0})


def test_evaluate():
    n, m = Poly.var("n"), Poly.var("m")
    p = 2 * n * n - m + Fraction(1, 2)
    assert p.evaluate({"n": 3, "m": 4}) == Fraction(29, 2)
    with pytest.raises(PolyError):
        p.evaluate({"n": 3})


def test_evaluate_float():
    n = Poly.var("n")
    assert (n * n).evaluate_float({"n": 2.0}) == 4.0


def test_derivative():
    x = Poly.var("x")
    p = 4 * x ** 4 + 2 * x ** 3 - 4 * x + 7
    assert p.derivative("x") == 16 * x ** 3 + 6 * x ** 2 - 4
    assert Poly.const(5).derivative("x") == 0
    assert (1 / x).derivative("x") == -(x ** -2)


def test_univariate_coeffs():
    x = Poly.var("x")
    p = 3 * x ** 2 + 1
    assert p.univariate_coeffs("x") == [1, 0, 3]
    with pytest.raises(PolyError):
        (x + Poly.var("y")).univariate_coeffs("x")
    with pytest.raises(PolyError):
        (1 / x).univariate_coeffs("x")


def test_degree_queries():
    x, y = Poly.var("x"), Poly.var("y")
    p = x ** 2 * y + y
    assert p.degree() == 3
    assert p.degree("x") == 2
    assert p.degree("y") == 1
    assert Poly.zero().degree() == 0


def test_str_rendering():
    x = Poly.var("x")
    assert str(Poly.zero()) == "0"
    assert str(x - 1) == "x - 1"
    assert str(-x) == "-x"
    assert str(2 * x ** 2 + 3) == "2*x^2 + 3"
    assert str(x ** -1) == "x^-1"


def test_hash_and_dict_key():
    x = Poly.var("x")
    table = {x + 1: "a", x - 1: "b"}
    assert table[Poly.var("x") + 1] == "a"


# ---------------------------------------------------------------------------
# Property-based tests: ring axioms and substitution/evaluation coherence.
# ---------------------------------------------------------------------------

_coeffs = st.integers(min_value=-9, max_value=9)
_vars = st.sampled_from(["x", "y", "z"])


@st.composite
def polys(draw, max_terms: int = 4, max_exp: int = 3):
    terms = {}
    for _ in range(draw(st.integers(0, max_terms))):
        nvars = draw(st.integers(0, 2))
        mono = {}
        for _ in range(nvars):
            mono[draw(_vars)] = draw(st.integers(1, max_exp))
        terms[tuple(sorted(mono.items()))] = Fraction(draw(_coeffs))
    return Poly(terms)


@given(polys(), polys(), polys())
@settings(max_examples=60)
def test_ring_axioms(p, q, r):
    assert p + q == q + p
    assert p * q == q * p
    assert (p + q) + r == p + (q + r)
    assert (p * q) * r == p * (q * r)
    assert p * (q + r) == p * q + p * r
    assert p + 0 == p
    assert p * 1 == p
    assert p * 0 == Poly.zero()
    assert p - p == 0


@given(polys(), polys(), st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))
@settings(max_examples=60)
def test_evaluation_is_homomorphism(p, q, x, y, z):
    env = {"x": x, "y": y, "z": z}
    assert (p + q).evaluate(env) == p.evaluate(env) + q.evaluate(env)
    assert (p * q).evaluate(env) == p.evaluate(env) * q.evaluate(env)


@given(polys(), st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5))
@settings(max_examples=60)
def test_substitute_then_evaluate(p, x, y, z):
    env = {"x": x, "y": y, "z": z}
    substituted = p.substitute({"x": x})
    assert substituted.evaluate(env) == p.evaluate(env)


@given(polys())
@settings(max_examples=60)
def test_derivative_of_sum_rule(p):
    q = p * p
    # (p^2)' = 2 p p'
    assert q.derivative("x") == 2 * p * p.derivative("x")
