"""Tests for sign decision and sign-region computation (paper Fig. 10)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import (
    Interval,
    Poly,
    PolyError,
    Sign,
    decide_sign,
    sign_regions,
)


def test_decide_sign_constants():
    assert decide_sign(Poly.const(3), {}) is Sign.POSITIVE
    assert decide_sign(Poly.const(-2), {}) is Sign.NEGATIVE
    assert decide_sign(Poly.zero(), {}) is Sign.ZERO


def test_decide_sign_with_bounds():
    n = Poly.var("n")
    assert decide_sign(n + 1, {"n": Interval(0, 100)}) is Sign.POSITIVE
    assert decide_sign(-n - 1, {"n": Interval(0, 100)}) is Sign.NEGATIVE
    assert decide_sign(n - 50, {"n": Interval(0, 100)}) is Sign.UNKNOWN


def test_decide_sign_missing_bounds_is_unknown():
    assert decide_sign(Poly.var("n"), {}) is Sign.UNKNOWN


def test_decide_sign_sum_of_squares():
    x, y = Poly.var("x"), Poly.var("y")
    p = x * x + y * y + 1
    verdict = decide_sign(p, {"x": Interval(-10, 10), "y": Interval(-10, 10)})
    assert verdict is Sign.POSITIVE


def test_sign_negate():
    assert Sign.POSITIVE.negate() is Sign.NEGATIVE
    assert Sign.UNKNOWN.negate() is Sign.UNKNOWN
    assert Sign.ZERO.negate() is Sign.ZERO
    assert Sign.POSITIVE.definite() and not Sign.UNKNOWN.definite()


def test_sign_regions_linear():
    x = Poly.var("x")
    regions = sign_regions(x - 5, "x", Interval(0, 10))
    assert len(regions) == 2
    assert regions[0].sign is Sign.NEGATIVE
    assert regions[0].interval == Interval(0, 5)
    assert regions[1].sign is Sign.POSITIVE
    assert regions[1].interval == Interval(5, 10)


def test_sign_regions_constant():
    regions = sign_regions(Poly.const(7), "x", Interval(0, 1))
    assert regions == [type(regions[0])(Interval(0, 1), Sign.POSITIVE)]


def test_sign_regions_zero_poly():
    regions = sign_regions(Poly.zero(), "x", Interval(0, 1))
    assert len(regions) == 1 and regions[0].sign is Sign.ZERO


def test_sign_regions_cubic_paper_figure10():
    """The paper's Figure 10: cubic with a > 0 dips negative between roots."""
    x = Poly.var("x")
    # (x-1)(x-3)(x-6) = x^3 - 10x^2 + 27x - 18, positive leading coeff.
    p = (x - 1) * (x - 3) * (x - 6)
    regions = sign_regions(p, "x", Interval(0, 10))
    signs = [r.sign for r in regions]
    assert signs == [Sign.NEGATIVE, Sign.POSITIVE, Sign.NEGATIVE, Sign.POSITIVE]
    boundaries = [float(r.interval.hi) for r in regions[:-1]]
    assert boundaries == [1, 3, 6]


def test_sign_regions_union_covers_domain():
    x = Poly.var("x")
    p = (x - 2) * (x - 4)
    regions = sign_regions(p, "x", Interval(0, 10))
    assert float(regions[0].interval.lo) == 0
    assert float(regions[-1].interval.hi) == 10
    for a, b in zip(regions, regions[1:]):
        assert a.interval.hi == b.interval.lo


def test_sign_regions_no_roots_inside():
    x = Poly.var("x")
    regions = sign_regions(x - 100, "x", Interval(0, 10))
    assert len(regions) == 1 and regions[0].sign is Sign.NEGATIVE


def test_sign_regions_laurent_positive_domain():
    x = Poly.var("x")
    # 1/x - 1 is positive on (0,1), negative beyond 1.
    p = 1 / x - 1
    regions = sign_regions(p, "x", Interval(Fraction(1, 2), 4))
    assert regions[0].sign is Sign.POSITIVE
    assert regions[-1].sign is Sign.NEGATIVE
    assert float(regions[0].interval.hi) == 1.0


def test_sign_regions_laurent_domain_with_zero_rejected():
    x = Poly.var("x")
    with pytest.raises(PolyError):
        sign_regions(1 / x, "x", Interval(-1, 1))


def test_sign_regions_multivariate_rejected():
    p = Poly.var("x") + Poly.var("y")
    with pytest.raises(PolyError):
        sign_regions(p, "x", Interval(0, 1))


def test_sign_regions_unbounded_domain_rejected():
    with pytest.raises(ValueError):
        sign_regions(Poly.var("x"), "x", Interval.unbounded())


@given(st.lists(st.integers(1, 9), min_size=1, max_size=3, unique=True))
@settings(max_examples=40)
def test_regions_match_pointwise_signs(roots):
    """Sampled signs inside each region must match the region label."""
    x = Poly.var("x")
    poly = Poly.one()
    for r in sorted(roots):
        poly = poly * (x - r)
    regions = sign_regions(poly, "x", Interval(0, 10))
    for region in regions:
        if region.interval.width() == 0:
            continue
        mid = region.interval.midpoint()
        value = poly.evaluate({"x": mid})
        if region.sign is Sign.POSITIVE:
            assert value > 0
        elif region.sign is Sign.NEGATIVE:
            assert value < 0


@given(
    st.integers(-5, 5), st.integers(-5, 5), st.integers(-5, 5),
    st.integers(0, 5), st.integers(6, 12),
)
@settings(max_examples=40)
def test_decide_sign_is_sound(c0, c1, c2, lo, hi):
    poly = Poly.from_coeffs([Fraction(c0), Fraction(c1), Fraction(c2)], "x")
    verdict = decide_sign(poly, {"x": Interval(lo, hi)})
    if verdict.definite() and verdict is not Sign.ZERO:
        for point in (lo, (lo + hi) // 2, hi):
            value = poly.evaluate({"x": point})
            if verdict is Sign.POSITIVE:
                assert value > 0
            else:
                assert value < 0
