"""Tests for rational functions (loop-index probability expressions)."""

from fractions import Fraction

import pytest

from repro.symbolic import Interval, Poly, PolyError, RationalFn, Sign, as_rational


def test_monomial_denominator_folds_into_numerator():
    step, span = Poly.var("step"), Poly.var("ub") - Poly.var("lb")
    prob = RationalFn(step, Poly.var("step"))
    assert prob.is_polynomial()
    assert prob.as_poly() == 1
    r = RationalFn(span, Poly.var("step"))
    assert r.is_polynomial()  # Laurent fold


def test_general_denominator_kept():
    step = Poly.var("step")
    span = Poly.var("ub") - Poly.var("lb")
    prob = RationalFn(step, span)  # paper: step/(ub - lb)
    assert not prob.is_polynomial()
    with pytest.raises(PolyError):
        prob.as_poly()


def test_zero_denominator_rejected():
    with pytest.raises(PolyError):
        RationalFn(Poly.one(), Poly.zero())


def test_constant_denominator_folds():
    r = RationalFn(Poly.var("n"), Poly.const(2))
    assert r.is_polynomial()
    assert r.as_poly() == Fraction(1, 2) * Poly.var("n")


def test_arithmetic():
    n = Poly.var("n")
    a = RationalFn(Poly.one(), n + 1)
    b = RationalFn(Poly.one(), n + 1)
    s = a + b
    assert s == RationalFn(Poly.const(2), n + 1)
    assert (a - b).is_zero()
    prod = a * RationalFn(n + 1)
    assert prod == RationalFn(Poly.one())
    quot = a / b
    assert quot == RationalFn(Poly.one())


def test_cross_multiplied_equality():
    n = Poly.var("n")
    a = RationalFn(n, n * n)  # folds to 1/n (monomial denominator)
    b = RationalFn(Poly.one(), n)
    assert a == b


def test_evaluate():
    n = Poly.var("n")
    r = RationalFn(n + 1, n - 1)
    assert r.evaluate({"n": 3}) == 2
    with pytest.raises(PolyError):
        r.evaluate({"n": 1})


def test_substitute():
    n, m = Poly.var("n"), Poly.var("m")
    r = RationalFn(n, m + 1)
    assert r.substitute({"n": 4}).num == 4


def test_sign():
    n = Poly.var("n")
    r = RationalFn(n + 1, n + 2)
    assert r.sign({"n": Interval(0, 100)}) is Sign.POSITIVE
    r_neg = RationalFn(-(n + 1), n + 2)
    assert r_neg.sign({"n": Interval(0, 100)}) is Sign.NEGATIVE
    r_unknown = RationalFn(n - 5, n + 2)
    assert r_unknown.sign({"n": Interval(0, 100)}) is Sign.UNKNOWN
    assert RationalFn(Poly.zero(), n + 1).sign({"n": Interval(0, 1)}) is Sign.ZERO


def test_bound():
    n = Poly.var("n")
    r = RationalFn(Poly.one(), n)
    enclosure = r.bound({"n": Interval(2, 4)})
    assert enclosure.contains(Fraction(1, 3))
    assert not enclosure.contains(1)


def test_as_rational_coercion():
    assert as_rational(3).evaluate({}) == 3
    assert as_rational(Poly.var("x")).variables() == {"x"}
    r = as_rational(RationalFn(Poly.one(), Poly.var("x") + 1))
    assert not r.is_polynomial()


def test_str():
    n = Poly.var("n")
    assert str(RationalFn(n)) == "n"
    assert "/" in str(RationalFn(Poly.one(), n + 1))
