"""Tests for certified negligible-term dropping (paper section 3.1)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.symbolic import Interval, Poly, drop_negligible_terms


def test_paper_example():
    """4x^4 + 2x^3 - 4x + 1/x^3 over [3,100] simplifies by dropping 1/x^3."""
    x = Poly.var("x")
    p = 4 * x ** 4 + 2 * x ** 3 - 4 * x + x ** -3
    result = drop_negligible_terms(p, {"x": Interval(3, 100)})
    assert result.changed
    assert result.poly == 4 * x ** 4 + 2 * x ** 3 - 4 * x
    assert len(result.dropped) == 1
    assert "x^-3" in str(result.dropped[0].term)


def test_nothing_dropped_without_bounds():
    x = Poly.var("x")
    p = x ** 4 + x ** -3
    result = drop_negligible_terms(p, {})
    assert not result.changed
    assert result.poly == p


def test_nothing_dropped_when_terms_comparable():
    x = Poly.var("x")
    p = x + 2
    result = drop_negligible_terms(p, {"x": Interval(1, 3)})
    assert not result.changed


def test_dominant_term_never_dropped():
    x = Poly.var("x")
    p = x ** 5
    result = drop_negligible_terms(p, {"x": Interval(2, 10)})
    assert result.poly == p


def test_constant_poly_untouched():
    result = drop_negligible_terms(Poly.const(3), {})
    assert result.poly == 3 and not result.changed


def test_interval_straddling_zero_blocks_drop():
    """If the dominant term can vanish, no drop certificate exists."""
    x = Poly.var("x")
    p = x ** 4 + x ** -3  # x in [-1, 1]: x^4 may be 0
    result = drop_negligible_terms(p, {"x": Interval(Fraction(1, 2), 1)})
    # Here x^-3 is actually >= 1 > x^4's floor; nothing droppable.
    assert not result.changed


def test_rel_tol_controls_aggressiveness():
    x = Poly.var("x")
    p = x ** 2 + 1  # over [10, 100]: floor of x^2 is 100, sup of 1 is 1
    loose = drop_negligible_terms(p, {"x": Interval(10, 100)}, rel_tol=Fraction(1, 10))
    tight = drop_negligible_terms(p, {"x": Interval(10, 100)}, rel_tol=Fraction(1, 1000))
    assert loose.changed
    assert not tight.changed


@given(st.integers(2, 20), st.integers(30, 200))
@settings(max_examples=40)
def test_simplified_value_close_to_original(lo, hi):
    """Dropping terms changes values by at most rel_tol * dominant floor scale."""
    x = Poly.var("x")
    p = 4 * x ** 4 + 2 * x ** 3 - 4 * x + x ** -3
    result = drop_negligible_terms(p, {"x": Interval(lo, hi)}, rel_tol=Fraction(1, 1000))
    for point in (lo, hi):
        orig = float(p.evaluate({"x": point}))
        simp = float(result.poly.evaluate({"x": point}))
        assert abs(orig - simp) <= 1e-3 * abs(orig) + 1e-9
