"""Tests for profile-driven unknown elimination (paper section 3.4)."""

from fractions import Fraction

import pytest

from repro.compare import BranchProfile, ProfileData, apply_profile
from repro.symbolic import Interval, PerfExpr, UnknownKind


def _expr():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 10 ** 6))
    pt = PerfExpr.unknown("pt_1", UnknownKind.BRANCH_PROB)
    return 5 * n + 100 * pt + 7


def test_branch_profile_probability():
    profile = BranchProfile()
    for _ in range(3):
        profile.record(True)
    profile.record(False)
    assert profile.probability == Fraction(3, 4)
    assert profile.total == 4
    with pytest.raises(ValueError):
        BranchProfile().probability


def test_apply_profile_substitutes_branch_probability():
    data = ProfileData()
    for _ in range(9):
        data.record_branch("pt_1", True)
    data.record_branch("pt_1", False)
    result = apply_profile(_expr(), data)
    assert "pt_1" not in result.poly.variables()
    assert "n" in result.poly.variables()  # untouched
    # 100 * 0.9 folded into the constant term.
    assert result.poly.coeffs_by_var("n")[0].constant_value() == 97


def test_apply_profile_substitutes_trip_counts():
    data = ProfileData()
    for trips in (10, 20, 30):
        data.record_trips("n", trips)
    assert data.mean_trips("n") == 20
    result = apply_profile(_expr(), data)
    assert "n" not in result.poly.variables()
    assert "pt_1" in result.poly.variables()


def test_apply_profile_full_resolution_gives_constant():
    data = ProfileData()
    data.record_branch("pt_1", True)
    data.record_trips("n", 10)
    result = apply_profile(_expr(), data)
    assert result.is_constant()
    assert result.constant_value() == 5 * 10 + 100 * 1 + 7


def test_apply_profile_no_data_is_identity():
    expr = _expr()
    assert apply_profile(expr, ProfileData()).poly == expr.poly


def test_coverage_report():
    data = ProfileData()
    data.record_branch("pt_1", True)
    resolvable, unresolvable = data.coverage(_expr())
    assert resolvable == {"pt_1"}
    assert unresolvable == {"n"}


def test_mean_trips_missing():
    with pytest.raises(KeyError):
        ProfileData().mean_trips("n")


def test_profile_on_aggregated_program():
    """End to end: profile a data-dependent conditional's probability."""
    import repro

    prog = repro.parse_program(
        "program t\n  integer n, i\n  real a(n), x\n"
        "  do i = 1, n\n"
        "    if (a(i) .gt. x) then\n      a(i) = a(i) - x\n"
        "    else\n      a(i) = a(i) * a(i) / x\n    end if\n  end do\nend\n"
    )
    cost = repro.predict(prog)
    prob_vars = [v for v in cost.poly.variables() if v.startswith("pt_")]
    assert prob_vars
    data = ProfileData()
    for _ in range(7):
        data.record_branch(prob_vars[0], True)
    for _ in range(3):
        data.record_branch(prob_vars[0], False)
    profiled = apply_profile(cost, data)
    assert not any(v.startswith("pt_") for v in profiled.poly.variables())
    assert profiled.poly.degree("n") == 1
