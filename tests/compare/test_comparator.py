"""Tests for symbolic comparison of performance expressions."""

from fractions import Fraction

import pytest

from repro.compare import Verdict, compare, region_report, winner_regions
from repro.symbolic import Interval, PerfExpr, Poly, UnknownKind


def _n(lo=1, hi=1000):
    return PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(lo, hi))


def test_equal_costs():
    n = _n()
    result = compare(2 * n + 1, 2 * n + 1)
    assert result.verdict is Verdict.EQUAL


def test_first_always_by_bounds():
    n = _n()
    result = compare(2 * n, 3 * n + 5)
    assert result.verdict is Verdict.FIRST_ALWAYS


def test_second_always_by_bounds():
    n = _n()
    result = compare(3 * n + 5, 2 * n)
    assert result.verdict is Verdict.SECOND_ALWAYS


def test_depends_with_crossover():
    """f = 2n + 50 vs g = 3n: f wins above n = 50, g below."""
    n = _n(1, 1000)
    result = compare(2 * n + 50, 3 * n)
    assert result.verdict is Verdict.DEPENDS
    assert result.variable == "n"
    assert result.crossovers() == [50]
    regions = winner_regions(result)
    assert regions[0].winner == "second"   # small n: g cheaper
    assert regions[-1].winner == "first"   # large n: f cheaper
    # f wins on [50,1000]: a much larger measure (domain starts at 1).
    assert result.first_wins_measure() == 950
    assert result.second_wins_measure() == 49


def test_recommended_by_integral_and_measure():
    n = _n(1, 1000)
    result = compare(2 * n + 50, 3 * n)
    assert result.recommended("measure") is Verdict.FIRST_ALWAYS
    assert result.recommended("integral") is Verdict.FIRST_ALWAYS
    with pytest.raises(ValueError):
        result.recommended("bogus")


def test_recommended_passthrough_for_definite():
    n = _n()
    result = compare(n, n + 1)
    assert result.recommended() is Verdict.FIRST_ALWAYS


def test_cubic_difference_regions():
    """The Figure 10 shape: a cubic with three roots in-domain."""
    x = PerfExpr.unknown("x", UnknownKind.PARAMETER, Interval(0, 10))
    p = Poly.var("x")
    cubic = PerfExpr((p - 1) * (p - 3) * (p - 6), x.bounds, x.unknowns)
    result = compare(cubic, PerfExpr.zero())
    assert result.verdict is Verdict.DEPENDS
    assert [float(c) for c in result.crossovers()] == [1.0, 3.0, 6.0]
    winners = [r.winner for r in winner_regions(result)]
    assert winners == ["first", "second", "first", "second"]


def test_domain_override_narrows():
    n = _n(1, 1000)
    result = compare(2 * n + 50, 3 * n, domain={"n": Interval(100, 1000)})
    # Above the crossover everywhere: f always cheaper.
    assert result.verdict is Verdict.FIRST_ALWAYS


def test_negligible_term_dropped_before_region_analysis():
    """A tiny 1/x^3 term must not prevent univariate analysis."""
    x = PerfExpr.unknown("x", UnknownKind.PARAMETER, Interval(3, 100))
    poly = 4 * Poly.var("x") ** 4 + 2 * Poly.var("x") ** 3 - 4 * Poly.var("x") \
        + Poly.var("x") ** -3
    expr = PerfExpr(poly, x.bounds, x.unknowns)
    result = compare(expr, PerfExpr.zero())
    # Over [3,100] the quartic dominates: positive everywhere.
    assert result.verdict is Verdict.SECOND_ALWAYS


def test_multivariate_unknown_returns_condition():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 100))
    m = PerfExpr.unknown("m", UnknownKind.TRIP_COUNT, Interval(1, 100))
    result = compare(n * 3, m * 2)
    assert result.verdict is Verdict.UNKNOWN
    assert result.condition == 3 * Poly.var("n") - 2 * Poly.var("m")


def test_unbounded_univariate_returns_condition():
    n = PerfExpr.unknown("n", UnknownKind.PARAMETER)  # unbounded
    result = compare(n * n, 100 * n.poly)
    assert result.verdict is Verdict.UNKNOWN
    assert result.variable == "n"


def test_branch_probability_comparison():
    """pt in [0,1] can already decide some comparisons outright."""
    pt = PerfExpr.unknown("pt", UnknownKind.BRANCH_PROB)
    slow = 100 + 10 * pt   # at most 110
    fast = 200 + 10 * pt   # at least 200
    assert compare(slow, fast).verdict is Verdict.FIRST_ALWAYS


def test_region_report_text():
    n = _n(1, 1000)
    result = compare(2 * n + 50, 3 * n)
    report = region_report(result)
    assert "depends" in report
    assert "crossovers: 50" in report
    assert "first" in report and "second" in report
