"""Tests for run-time test generation and sensitivity analysis."""

from fractions import Fraction

import pytest

from repro.compare import (
    Verdict,
    build_guard,
    compare,
    elasticity,
    perturbation_sensitivity,
    poly_to_ir,
    rank_variables,
    worth_testing,
)
from repro.ir import BinOp, If, IntConst, VarRef, parse_fragment, print_expr
from repro.symbolic import Interval, PerfExpr, Poly, UnknownKind


def _depends_result():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 1000))
    return compare(2 * n + 50, 3 * n)


def test_guard_single_crossover():
    result = _depends_result()
    test = build_guard(result)
    assert test is not None
    # g (second) wins below 50, so "first wins" means n >= 50.
    assert isinstance(test.condition, BinOp)
    assert test.condition.op == ".ge."
    assert test.condition.right == IntConst(50)
    assert "above n = 50" in test.description


def test_guarded_versions_build_if():
    result = _depends_result()
    test = build_guard(result)
    first = parse_fragment("x = 1.0\n")
    second = parse_fragment("x = 2.0\n")
    guard = test.guarded(first, second)
    assert isinstance(guard, If)
    assert guard.then_body == first
    assert guard.else_body == second


def test_guard_none_for_definite_verdicts():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 100))
    result = compare(n, 2 * n)
    assert result.verdict is Verdict.FIRST_ALWAYS
    assert build_guard(result) is None


def test_guard_general_condition_for_multivariate():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 100))
    m = PerfExpr.unknown("m", UnknownKind.TRIP_COUNT, Interval(1, 100))
    result = compare(3 * n, 2 * m)
    test = build_guard(result)
    assert test is not None
    assert test.condition.op == ".lt."
    text = print_expr(test.condition)
    assert "n" in text and "m" in text


def test_poly_to_ir_roundtrip_values():
    poly = 3 * Poly.var("n") ** 2 - 2 * Poly.var("m") + 7
    expr = poly_to_ir(poly)
    # Evaluate the IR numerically and compare against the polynomial.
    from repro.memory.simcache import _eval_expr

    for n in (1, 5):
        for m in (2, 9):
            assert _eval_expr(expr, {"n": n, "m": m}) == poly.evaluate(
                {"n": n, "m": m}
            )
    assert poly_to_ir(Poly.zero()) == IntConst(0)


def test_worth_testing_gate():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(0, 1000))
    balanced = compare(2 * n + 50, 3 * n)  # 50/950 split: 5% exactly
    assert worth_testing(balanced)
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 10000))
    lopsided = compare(2 * n + 50, 3 * n)  # minority share 0.5%
    assert lopsided.verdict is Verdict.DEPENDS
    assert not worth_testing(lopsided)
    definite = compare(n, 2 * n)
    assert not worth_testing(definite)


def test_perturbation_sensitivity_ranking():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT, Interval(1, 10 ** 6))
    m = PerfExpr.unknown("m", UnknownKind.TRIP_COUNT, Interval(1, 10 ** 6))
    expr = n * n * 5 + m  # n dominates at the nominal point
    point = {"n": 100, "m": 100}
    ranked = rank_variables(expr, point)
    assert ranked[0].name == "n"
    assert ranked[0].score > ranked[1].score


def test_elasticity_matches_perturbation_for_polynomials():
    n = PerfExpr.unknown("n", UnknownKind.TRIP_COUNT)
    expr = 3 * n * n  # elasticity = 2 exactly
    point = {"n": 10}
    el = elasticity(expr, point)[0]
    assert el.score == 2
    pe = perturbation_sensitivity(expr, point)[0]
    # Central difference of a quadratic is exact too.
    assert pe.score == 2


def test_sensitivity_top_k_and_methods():
    a = PerfExpr.unknown("a")
    b = PerfExpr.unknown("b")
    c = PerfExpr.unknown("c")
    expr = a * 100 + b * 10 + c
    point = {"a": 1, "b": 1, "c": 1}
    top2 = rank_variables(expr, point, top=2)
    assert [s.name for s in top2] == ["a", "b"]
    el = rank_variables(expr, point, method="elasticity")
    assert el[0].name == "a"
    with pytest.raises(ValueError):
        rank_variables(expr, point, method="nope")


def test_sensitivity_zero_base():
    n = PerfExpr.unknown("n")
    expr = n - 10
    scores = perturbation_sensitivity(expr, {"n": 10})
    assert scores[0].score > 0  # falls back to absolute swing
