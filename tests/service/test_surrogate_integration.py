"""Tiered fidelity through the engine: fast serving, harvest, wire shape."""

import pytest

from repro.learn import Surrogate, SurrogateConfig, reset_feature_cache
from repro.service import PredictRequest, PredictionEngine
from repro.service.protocol import request_from_dict

SAXPY = """
program saxpy
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""

#: Wire keys a pre-tiered-fidelity client expects on an exact predict.
EXACT_KEYS = {"cost", "digest", "machine", "backend", "variables",
              "cycles", "cached"}


@pytest.fixture
def engine():
    reset_feature_cache()
    # 24 = the conformal floor: the stride-3 calibration slice must
    # keep >= 8 points or fit_conformal declines to produce a model
    surrogate = Surrogate(SurrogateConfig(
        background=False, min_samples=24, retrain_every=10_000))
    with PredictionEngine(workers=0, cache_size=64,
                          surrogate=surrogate) as eng:
        yield eng
    reset_feature_cache()


def _warm(engine, sizes=range(1, 31)):
    """Exact predicts with distinct bindings: each one is a harvest."""
    for n in sizes:
        result = engine.handle("predict", {"source": SAXPY,
                                           "bindings": {"n": n}})
        assert "error" not in result
    engine.surrogate.drain()


def test_exact_wire_shape_is_unchanged(engine):
    result = engine.handle("predict", {"source": SAXPY, "bindings": {"n": 9}})
    assert set(result) == EXACT_KEYS
    assert "fidelity" not in result and "interval" not in result


def test_fidelity_validation_rejected(engine):
    bad = engine.handle("predict", {"source": SAXPY, "fidelity": "turbo"})
    assert bad["status"] == 400
    bad = engine.handle("predict", {"source": SAXPY, "fidelity": "auto",
                                    "tolerance": -1})
    assert bad["status"] == 400


def test_cold_fast_request_falls_through_to_exact(engine):
    result = engine.handle("predict", {"source": SAXPY,
                                       "bindings": {"n": 9},
                                       "fidelity": "fast"})
    assert result["cost"] == "3*n + 8"        # exact pipeline answered
    assert result.get("fidelity") != "fast"
    reasons = engine.surrogate.stats()["fallthrough_reasons"]
    assert reasons.get("no_model", 0) >= 1


def test_fast_serves_after_harvest(engine):
    _warm(engine)
    result = engine.handle("predict", {"source": SAXPY,
                                       "bindings": {"n": 50},
                                       "fidelity": "fast"})
    assert result["fidelity"] == "fast"
    assert result["cached"] is False
    lo, hi = result["interval"]
    assert lo <= float(result["cycles"]) <= hi
    assert result["model_version"] >= 1
    # truth is 3n+8; a conformal model fit on exact labels is tight
    assert abs(float(result["cycles"]) - 158.0) < 2.0
    counter = engine.metrics.counter("repro_engine_requests_total")
    assert counter.value(kind="predict", outcome="fast") == 1


def test_fast_answers_ahead_of_the_cache(engine):
    _warm(engine)
    hits_before = engine.cache.stats.hits
    engine.handle("predict", {"source": SAXPY, "bindings": {"n": 5},
                              "fidelity": "fast"})
    assert engine.cache.stats.hits == hits_before   # never touched it


def test_auto_honors_tolerance(engine):
    _warm(engine)
    wide = engine.handle("predict", {"source": SAXPY, "bindings": {"n": 40},
                                     "fidelity": "auto", "tolerance": 10.0})
    assert wide["fidelity"] == "fast"
    tight = engine.handle("predict", {"source": SAXPY, "bindings": {"n": 40},
                                      "fidelity": "auto",
                                      "tolerance": 1e-12})
    assert tight.get("fidelity") != "fast"          # refused, exact answered
    assert tight["cost"] == "3*n + 8"


def test_fast_request_gets_honest_trace(engine):
    _warm(engine)
    result = engine.handle("predict", {"source": SAXPY, "bindings": {"n": 7},
                                       "fidelity": "fast", "trace": True})
    assert result["fidelity"] == "fast"
    spans = result["trace"]
    assert [s["name"] for s in spans] == ["engine.execute"]
    assert spans[0]["attrs"]["fidelity"] == "fast"


def test_engine_without_surrogate_serves_fast_requests_exactly():
    with PredictionEngine(workers=0, cache_size=8) as eng:
        result = eng.handle("predict", {"source": SAXPY,
                                        "bindings": {"n": 3},
                                        "fidelity": "fast"})
        assert result["cost"] == "3*n + 8"


def test_surrogate_metrics_in_engine_registry(engine):
    _warm(engine)
    engine.handle("predict", {"source": SAXPY, "bindings": {"n": 8},
                              "fidelity": "fast"})
    engine.export_cache_metrics()
    served = engine.metrics.counter("repro_surrogate_served_total")
    assert served.value(fidelity="fast") == 1
    harvested = engine.metrics.counter("repro_surrogate_samples_total")
    assert harvested.value(machine="power") >= 24
    version = engine.metrics.gauge("repro_surrogate_model_version")
    assert version.value(machine="power") >= 1


def test_symbolic_predicts_are_not_harvested(engine):
    engine.handle("predict", {"source": SAXPY})   # no bindings: symbolic
    assert engine.surrogate.stats()["samples"] == 0


def test_typed_predict_accepts_fidelity(engine):
    _warm(engine)
    response = engine.predict(PredictRequest(
        source=SAXPY, bindings={"n": 21}, fidelity="fast"))
    assert response.fidelity == "fast"
    assert response.interval is not None


def test_response_to_dict_hides_defaults():
    request = request_from_dict("predict", {"source": SAXPY})
    assert request.fidelity == "exact"
    # a round-tripped exact response must not grow new keys
    payload = {"source": SAXPY, "fidelity": "fast", "tolerance": 0.2}
    request = request_from_dict("predict", payload)
    assert request.fidelity == "fast" and request.tolerance == 0.2


def test_cache_lines_carry_req_blocks(tmp_path):
    import json

    path = tmp_path / "service.jsonl"
    surrogate = Surrogate(SurrogateConfig(background=False, min_samples=10))
    with PredictionEngine(workers=0, cache_size=8, cache_path=str(path),
                          surrogate=surrogate) as eng:
        eng.handle("predict", {"source": SAXPY, "bindings": {"n": 4}})
        eng.handle("predict", {"source": SAXPY})          # symbolic: no aux
    records = [json.loads(line) for line in path.read_text().splitlines()]
    with_req = [r for r in records if "req" in r]
    assert len(with_req) == 1
    req = with_req[0]["req"]
    assert req["machine"] == "power"
    assert req["bindings"] == {"n": "4"}
    assert "saxpy" in req["source"]
