"""End-to-end HTTP tests: ephemeral port, JSON bodies, /metrics.

Server lifecycles come from :mod:`tests.service.conftest`
(``running_server`` / the ``server`` fixture), which guarantee the
listening socket is closed even when an assertion fails mid-test --
ad-hoc start/stop here used to leak sockets on failure paths.
"""

import json
import urllib.error
import urllib.request

import pytest

from .conftest import SAXPY, http_get, http_post, running_server


def _post(server, path, payload):
    return http_post(server.port, path, payload)


def _get(server, path):
    return http_get(server.port, path)


def test_healthz(server):
    status, body = _get(server, "/healthz")
    assert status == 200
    assert json.loads(body) == {"status": "ok"}


def test_healthz_reports_shard_identity():
    with running_server(shard_of="1/3") as server:
        status, body = _get(server, "/healthz")
    assert status == 200
    assert json.loads(body) == {"status": "ok", "shard": "1/3"}


def test_predict_endpoint_and_cache_hit_via_metrics(server):
    # The ISSUE acceptance path: saxpy in, 3*n + 8 out as JSON ...
    status, body = _post(server, "/predict",
                         {"source": SAXPY, "bindings": {"n": 100}})
    assert status == 200
    assert body["cost"] == "3*n + 8"
    assert body["cycles"] == "308"
    assert body["cached"] is False

    # ... and an identical second POST is served from the cache,
    # verified through the /metrics hit counter.
    status, body = _post(server, "/predict",
                         {"source": SAXPY, "bindings": {"n": 100}})
    assert status == 200
    assert body["cached"] is True

    status, text = _get(server, "/metrics")
    assert status == 200
    metrics = {
        line.split(" ")[0]: line.rsplit(" ", 1)[1]
        for line in text.splitlines()
        if line and not line.startswith("#")
    }
    assert float(metrics["repro_cache_hits_total"]) == 1
    assert float(metrics["repro_cache_misses_total"]) >= 1


def test_batch_predict(server):
    status, body = _post(server, "/predict", [
        {"source": SAXPY},
        {"source": SAXPY, "machine": "scalar"},
    ])
    assert status == 200
    assert isinstance(body, list) and len(body) == 2
    assert body[0]["machine"] == "power"
    assert body[1]["machine"] == "scalar"


def test_compare_endpoint(server):
    status, body = _post(server, "/compare",
                         {"first": SAXPY, "second": SAXPY})
    assert status == 200
    assert body["verdict"] == "equal"


def test_kernels_endpoint(server):
    status, body = _get(server, "/kernels?machine=power")
    assert status == 200
    rows = json.loads(body)["rows"]
    names = {row["kernel"] for row in rows}
    assert {"matmul", "jacobi", "rb"} <= names


def test_malformed_json_is_400(server):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/predict",
        data=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400
    envelope = json.loads(excinfo.value.read())
    assert envelope["status"] == 400


def test_schema_violation_is_400(server):
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/predict",
        data=json.dumps({"source": SAXPY, "bogus": 1}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 400
    assert json.loads(excinfo.value.read())["error"] == "ProtocolError"


def test_unknown_route_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(
            f"http://127.0.0.1:{server.port}/nope", timeout=10)
    assert excinfo.value.code == 404


def test_port_is_rebindable_after_stop():
    """SO_REUSEADDR: a fresh server can take a just-released port.

    Without ``allow_reuse_address`` the second bind can hit
    ``EADDRINUSE`` while the first server's sockets sit in TIME_WAIT --
    the classic flaky-on-repeat test-suite failure.
    """
    with running_server() as first:
        port = first.port
        _get(first, "/healthz")
    engine_port_pairs = []
    try:
        from repro.service import PredictionEngine, make_server

        engine = PredictionEngine(workers=0, cache_size=8)
        second = make_server(engine, host="127.0.0.1", port=port)
        engine_port_pairs.append(second)
        second.start_background()
        status, _ = http_get(port, "/healthz")
        assert status == 200
    finally:
        for instance in engine_port_pairs:
            instance.stop()


# ----------------------------------------------------------------------
# observability: request ids, tracing, slow-request log


def _post_raw(server, path, payload, headers=None):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=body,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    return urllib.request.urlopen(request, timeout=10)


def test_response_carries_request_id(server):
    with _post_raw(server, "/predict", {"source": SAXPY}) as response:
        rid = response.headers.get("X-Request-Id")
    assert rid and len(rid) == 12


def test_client_request_id_is_echoed(server):
    with _post_raw(server, "/predict", {"source": SAXPY},
                   headers={"X-Request-Id": "trace-me-42"}) as response:
        assert response.headers.get("X-Request-Id") == "trace-me-42"


def test_trace_opt_in_returns_span_block(server):
    status, body = _post(server, "/predict",
                         {"source": SAXPY, "trace": True})
    assert status == 200
    names = {span["name"] for span in body["trace"]}
    # The block holds the request-local pipeline spans; the enclosing
    # server.handle/engine.execute spans live on the server's tracer.
    assert "predict" in names


def test_metrics_exposes_phase_histogram(server):
    import time

    _post(server, "/predict", {"source": SAXPY})
    # The server.handle span closes after the response is sent, so an
    # immediate scrape can race the span ingestion; poll briefly.
    for _ in range(50):
        status, text = _get(server, "/metrics")
        if 'phase="server.handle"' in text:
            break
        time.sleep(0.05)
    assert status == 200
    assert "# TYPE repro_phase_seconds histogram" in text
    assert 'repro_phase_seconds_count{phase="server.handle"}' in text
    assert 'repro_phase_seconds_count{phase="engine.execute"}' in text
    assert 'repro_cache_requests_total{endpoint="predict",result="miss"} 1' \
        in text


def test_tracing_can_be_disabled():
    with running_server(cache_size=8, tracing=False) as instance:
        _post(instance, "/predict", {"source": SAXPY})
        _, text = _get(instance, "/metrics")
        assert 'phase="server.handle"' not in text


def test_slow_request_logs_span_tree(caplog):
    import logging

    with running_server(cache_size=8, slow_request_seconds=0.0) as instance:
        with caplog.at_level(logging.WARNING, logger="repro.service"):
            _post(instance, "/predict", {"source": SAXPY})
    slow = [r for r in caplog.records if r.getMessage() == "slow request"]
    assert slow
    fields = slow[0].fields
    assert fields["endpoint"] == "/predict"
    assert "server.handle" in fields["span_tree"]


# ----------------------------------------------------------------------
# tiered fidelity over HTTP


def test_surrogate_server_end_to_end():
    from repro.learn import Surrogate, SurrogateConfig, reset_feature_cache
    from repro.service import PredictionEngine, make_server

    reset_feature_cache()
    engine = PredictionEngine(
        workers=0, cache_size=128,
        surrogate=Surrogate(SurrogateConfig(
            background=False, min_samples=24, retrain_every=10_000)))
    server = make_server(engine, host="127.0.0.1", port=0)
    server.start_background()
    try:
        for n in range(1, 31):              # exact traffic trains the model
            status, body = _post(server, "/predict",
                                 {"source": SAXPY, "bindings": {"n": n}})
            assert status == 200
            assert "fidelity" not in body
        status, fast = _post(server, "/predict",
                             {"source": SAXPY, "bindings": {"n": 50},
                              "fidelity": "fast"})
        assert status == 200
        assert fast["fidelity"] == "fast"
        assert fast["interval"][0] <= float(fast["cycles"]) \
            <= fast["interval"][1]

        status, body = _get(server, "/healthz")
        health = json.loads(body)
        assert health["surrogate"]["served"] == 1
        assert health["surrogate"]["models"]

        status, body = _get(server, "/metrics")
        assert "repro_surrogate_served_total" in body
        assert "repro_surrogate_model_version" in body
    finally:
        server.stop()
        reset_feature_cache()
