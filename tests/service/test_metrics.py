"""Prometheus text rendering of counters, gauges, and histograms."""

import pytest

from repro.service.metrics import Counter, Histogram, MetricsRegistry


def test_counter_labels_and_render():
    registry = MetricsRegistry()
    counter = registry.counter("reqs_total", "Requests.")
    counter.inc(endpoint="predict", status="200")
    counter.inc(2, endpoint="predict", status="200")
    counter.inc(endpoint="compare", status="400")
    assert counter.value(endpoint="predict", status="200") == 3
    text = registry.render()
    assert "# TYPE reqs_total counter" in text
    assert 'reqs_total{endpoint="predict",status="200"} 3' in text
    assert 'reqs_total{endpoint="compare",status="400"} 1' in text


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c", "").inc(-1)


def test_gauge_set_and_overwrite():
    registry = MetricsRegistry()
    gauge = registry.gauge("cache_entries", "Entries.")
    gauge.set(5)
    gauge.set(3)
    assert gauge.value() == 3
    assert "cache_entries 3" in registry.render()


def test_histogram_cumulative_buckets():
    histogram = Histogram("lat", "Latency.", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        histogram.observe(value, endpoint="predict")
    lines = histogram.render()
    assert 'lat_bucket{endpoint="predict",le="0.01"} 1' in lines
    assert 'lat_bucket{endpoint="predict",le="0.1"} 3' in lines
    assert 'lat_bucket{endpoint="predict",le="1"} 4' in lines
    assert 'lat_bucket{endpoint="predict",le="+Inf"} 5' in lines
    assert histogram.count(endpoint="predict") == 5


def test_histogram_boundary_lands_in_bucket():
    histogram = Histogram("lat", "", buckets=(0.1, 1.0))
    histogram.observe(0.1)
    assert 'lat_bucket{le="0.1"} 1' in histogram.render()


def test_registry_same_name_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "")
    b = registry.counter("x_total", "")
    assert a is b
    with pytest.raises(TypeError):
        registry.gauge("x_total", "")


# ----------------------------------------------------------------------
# exposition-format escaping


def test_label_values_escape_quotes_backslashes_newlines():
    registry = MetricsRegistry()
    counter = registry.counter("esc_total", "")
    counter.inc(message='say "hi"\\now\non two lines')
    (line,) = counter.render()
    assert line == (
        'esc_total{message="say \\"hi\\"\\\\now\\non two lines"} 1'
    )


def test_escaped_labels_stay_single_line():
    counter = Counter("one_line_total", "")
    counter.inc(path="a\nb")
    (line,) = counter.render()
    assert "\n" not in line


def test_histogram_sum_uses_plain_float_format():
    histogram = Histogram("lat", "", buckets=(1.0,))
    histogram.observe(0.25)
    histogram.observe(0.25)
    lines = histogram.render()
    assert "lat_sum 0.5" in lines          # not repr() -> "0.5" w/o quotes
    histogram2 = Histogram("lat2", "", buckets=(1.0,))
    histogram2.observe(2.0)
    assert "lat2_sum 2" in histogram2.render()


def test_histogram_reset_drops_observations():
    histogram = Histogram("ages", "", buckets=(1.0, 10.0))
    histogram.observe(0.5, endpoint="predict")
    assert histogram.count(endpoint="predict") == 1
    histogram.reset()
    assert histogram.count(endpoint="predict") == 0
    assert histogram.render() == []
