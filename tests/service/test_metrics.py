"""Prometheus text rendering of counters, gauges, and histograms."""

import math

import pytest

from repro.service.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    parse_exposition,
    render_exposition,
)


def test_counter_labels_and_render():
    registry = MetricsRegistry()
    counter = registry.counter("reqs_total", "Requests.")
    counter.inc(endpoint="predict", status="200")
    counter.inc(2, endpoint="predict", status="200")
    counter.inc(endpoint="compare", status="400")
    assert counter.value(endpoint="predict", status="200") == 3
    text = registry.render()
    assert "# TYPE reqs_total counter" in text
    assert 'reqs_total{endpoint="predict",status="200"} 3' in text
    assert 'reqs_total{endpoint="compare",status="400"} 1' in text


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("c", "").inc(-1)


def test_gauge_set_and_overwrite():
    registry = MetricsRegistry()
    gauge = registry.gauge("cache_entries", "Entries.")
    gauge.set(5)
    gauge.set(3)
    assert gauge.value() == 3
    assert "cache_entries 3" in registry.render()


def test_histogram_cumulative_buckets():
    histogram = Histogram("lat", "Latency.", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        histogram.observe(value, endpoint="predict")
    lines = histogram.render()
    assert 'lat_bucket{endpoint="predict",le="0.01"} 1' in lines
    assert 'lat_bucket{endpoint="predict",le="0.1"} 3' in lines
    assert 'lat_bucket{endpoint="predict",le="1"} 4' in lines
    assert 'lat_bucket{endpoint="predict",le="+Inf"} 5' in lines
    assert histogram.count(endpoint="predict") == 5


def test_histogram_boundary_lands_in_bucket():
    histogram = Histogram("lat", "", buckets=(0.1, 1.0))
    histogram.observe(0.1)
    assert 'lat_bucket{le="0.1"} 1' in histogram.render()


def test_registry_same_name_same_instrument():
    registry = MetricsRegistry()
    a = registry.counter("x_total", "")
    b = registry.counter("x_total", "")
    assert a is b
    with pytest.raises(TypeError):
        registry.gauge("x_total", "")


# ----------------------------------------------------------------------
# exposition-format escaping


def test_label_values_escape_quotes_backslashes_newlines():
    registry = MetricsRegistry()
    counter = registry.counter("esc_total", "")
    counter.inc(message='say "hi"\\now\non two lines')
    (line,) = counter.render()
    assert line == (
        'esc_total{message="say \\"hi\\"\\\\now\\non two lines"} 1'
    )


def test_escaped_labels_stay_single_line():
    counter = Counter("one_line_total", "")
    counter.inc(path="a\nb")
    (line,) = counter.render()
    assert "\n" not in line


def test_histogram_sum_uses_plain_float_format():
    histogram = Histogram("lat", "", buckets=(1.0,))
    histogram.observe(0.25)
    histogram.observe(0.25)
    lines = histogram.render()
    assert "lat_sum 0.5" in lines          # not repr() -> "0.5" w/o quotes
    histogram2 = Histogram("lat2", "", buckets=(1.0,))
    histogram2.observe(2.0)
    assert "lat2_sum 2" in histogram2.render()


def test_histogram_reset_drops_observations():
    histogram = Histogram("ages", "", buckets=(1.0, 10.0))
    histogram.observe(0.5, endpoint="predict")
    assert histogram.count(endpoint="predict") == 1
    histogram.reset()
    assert histogram.count(endpoint="predict") == 0
    assert histogram.render() == []


def test_histogram_count_sum_consistent_after_reset():
    """Post-reset observations must rebuild a coherent family: the
    ``+Inf`` bucket, ``_count``, and observation count all agree."""
    histogram = Histogram("lat", "", buckets=(0.1, 1.0))
    histogram.observe(0.05, endpoint="predict")
    histogram.observe(5.0, endpoint="predict")
    histogram.reset()
    histogram.observe(0.5, endpoint="predict")
    lines = histogram.render()
    assert 'lat_bucket{endpoint="predict",le="+Inf"} 1' in lines
    assert 'lat_count{endpoint="predict"} 1' in lines
    assert 'lat_sum{endpoint="predict"} 0.5' in lines
    assert histogram.count(endpoint="predict") == 1


# ----------------------------------------------------------------------
# exposition parsing (the /metrics/cluster merge path)


def test_parse_render_round_trip_is_identity():
    registry = MetricsRegistry()
    counter = registry.counter("reqs_total", "Requests.")
    counter.inc(3, endpoint="predict", status="200")
    registry.gauge("cache_entries", "Entries.").set(7.5)
    histogram = registry.histogram("lat", "Latency.", buckets=(0.1, 1.0))
    histogram.observe(0.05, endpoint="predict")
    text = registry.render()
    families = parse_exposition(text)
    rendered = render_exposition(families.values())
    assert parse_exposition(rendered) == families


def test_parse_groups_histogram_series_under_family():
    histogram = Histogram("lat", "Latency.", buckets=(0.1,))
    histogram.observe(0.05)
    text = "\n".join(["# HELP lat Latency.", "# TYPE lat histogram",
                      *histogram.render()]) + "\n"
    families = parse_exposition(text)
    assert set(families) == {"lat"}
    names = {sample.name for sample in families["lat"].samples}
    assert names == {"lat_bucket", "lat_sum", "lat_count"}


def test_parse_inf_bucket_value():
    families = parse_exposition(
        '# TYPE lat histogram\nlat_bucket{le="+Inf"} 4\n'
        "lat_sum 2\nlat_count 4\n")
    [bucket] = [s for s in families["lat"].samples
                if s.name == "lat_bucket"]
    assert dict(bucket.labels)["le"] == "+Inf"
    assert bucket.value == 4.0


def test_render_orders_le_buckets_numerically_per_labelset():
    """``le`` must ascend *within* each labelset even when lexicographic
    order disagrees (0.5 < 10 numerically, "10" < "0.5" nowhere)."""
    histogram = Histogram("lat", "", buckets=(0.5, 10.0))
    histogram.observe(0.1, endpoint="a")
    histogram.observe(20.0, endpoint="b")
    families = parse_exposition("# TYPE lat histogram\n"
                                + "\n".join(histogram.render()) + "\n")
    rendered = render_exposition(families.values())
    for endpoint in ("a", "b"):
        bounds = [line.split('le="')[1].split('"')[0]
                  for line in rendered.splitlines()
                  if f'endpoint="{endpoint}"' in line and "le=" in line]
        assert bounds == ["0.5", "10", "+Inf"]


def test_label_escaping_survives_parse_round_trip():
    registry = MetricsRegistry()
    counter = registry.counter("esc_total", "Escapes.")
    tricky = 'say "hi"\\now\non two lines'
    counter.inc(message=tricky)
    families = parse_exposition(registry.render())
    [sample] = families["esc_total"].samples
    assert dict(sample.labels)["message"] == tricky
    # And a second round trip through render is stable too.
    again = parse_exposition(render_exposition(families.values()))
    [sample2] = again["esc_total"].samples
    assert dict(sample2.labels)["message"] == tricky


def test_parse_special_values():
    families = parse_exposition("g_inf +Inf\ng_ninf -Inf\ng_nan NaN\n")
    assert math.isinf(families["g_inf"].samples[0].value)
    assert families["g_ninf"].samples[0].value == -math.inf
    assert math.isnan(families["g_nan"].samples[0].value)


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError):
        parse_exposition("this is not a metric line at all {\n")
    with pytest.raises(ValueError):
        parse_exposition('m{unterminated="yes\n')


def test_parse_untyped_series_without_type_header():
    families = parse_exposition("mystery 42\n")
    assert families["mystery"].kind == "untyped"
    assert families["mystery"].samples[0].value == 42.0
