"""Multi-backend integration: router over three real server processes.

This is the ISSUE acceptance scenario run for real -- three
``python -m repro serve`` subprocesses, a router sharding across them,
mixed traffic through both the sync and async clients, and a backend
killed mid-run without a single client-visible error.  Marked
``slow``-ish by nature (three interpreter startups), so everything
shares one module-scoped cluster.
"""

import asyncio
import json
import urllib.request

import pytest

from repro.service import AsyncReproClient, RemoteError, ReproClient
from repro.service.cluster import spawn_backends

from .conftest import (
    SAXPY,
    http_get,
    http_post,
    metrics_values,
    running_router,
    saxpy_variant,
)


@pytest.fixture(scope="module")
def cluster():
    backends = spawn_backends(3, workers=0, cache_size=256)
    try:
        yield backends
    finally:
        for backend in backends:
            backend.terminate()


def backend_metric(url: str, series: str) -> float:
    with urllib.request.urlopen(f"{url}/metrics", timeout=10) as response:
        return metrics_values(response.read().decode()).get(series, 0.0)


def test_cluster_backends_report_shard_identity(cluster):
    for index, backend in enumerate(cluster):
        with urllib.request.urlopen(f"{backend.url}/healthz",
                                    timeout=10) as response:
            body = json.loads(response.read())
        assert body["shard"] == f"{index}/3"


def test_mixed_batch_spans_shards_with_affinity(cluster):
    urls = [backend.url for backend in cluster]
    with running_router(urls) as router:
        base = f"http://127.0.0.1:{router.port}"
        sources = [saxpy_variant(i) for i in range(12)]

        hits_before = {u: backend_metric(u, "repro_cache_hits_total")
                       for u in urls}

        # Sync client: one JSON-array batch fans out across all shards.
        with ReproClient(base) as client:
            first = client.predict_batch(
                [{"source": source} for source in sources])
            assert all(not isinstance(r, RemoteError) for r in first)
            assert all(not r.cached for r in first)

            # Same batch again: every item must hit the cache of the
            # shard that owns it -- this is the affinity proof.  If
            # routing were random, repeats would land on cold shards.
            second = client.predict_batch(
                [{"source": source} for source in sources])
            assert all(r.cached for r in second)

        hits_after = {u: backend_metric(u, "repro_cache_hits_total")
                      for u in urls}
        new_hits = {u: hits_after[u] - hits_before[u] for u in urls}
        assert sum(new_hits.values()) == len(sources)
        # The keyspace split actually used more than one backend.
        assert sum(1 for value in new_hits.values() if value > 0) >= 2

        # Async client against the same router: typed responses, all
        # warm now, plus compare/kernels crossing their own key types.
        async def async_leg():
            async with AsyncReproClient(base) as client:
                responses = await asyncio.gather(
                    *(client.predict(source) for source in sources[:6]))
                assert all(r.cached for r in responses)
                comparison = await client.compare(SAXPY, saxpy_variant(0))
                assert comparison.verdict == "first_always"

        asyncio.run(async_leg())

        # Router metrics agree: forwards went to >= 2 shards, all ok.
        _, text = http_get(router.port, "/metrics")
        metrics = metrics_values(text)
        ok_series = [series for series in metrics
                     if series.startswith("repro_router_forwards_total")
                     and 'outcome="ok"' in series]
        assert len(ok_series) >= 2
        assert metrics["repro_router_backends"] == 3


def test_kill_one_backend_mid_run_zero_client_errors(cluster):
    """The acceptance criterion: SIGKILL one of three shards between
    two batches; the router completes everything with no errors."""
    urls = [backend.url for backend in cluster]
    with running_router(urls, forward_timeout=5.0) as router:
        base = f"http://127.0.0.1:{router.port}"
        with ReproClient(base, timeout=30) as client:
            warm = client.predict_batch(
                [{"source": saxpy_variant(100 + i)} for i in range(9)])
            assert all(not isinstance(r, RemoteError) for r in warm)

            victim = cluster[1]
            victim.kill()
            assert not victim.alive()

            # The router has NOT probed yet (first failure is discovered
            # mid-forward) -- the group forward to the dead shard fails,
            # per-item failover re-routes to the survivors.
            after = client.predict_batch(
                [{"source": saxpy_variant(100 + i)} for i in range(9)])
            assert all(not isinstance(r, RemoteError) for r in after), after
            assert all(r.cost for r in after)

            # Single requests keep working too.
            response = client.predict(saxpy_variant(200))
            assert response.cost == "3*n + 10"  # variants add one op

        # A probe that sampled the victim pre-kill can land a stale
        # success; the down state converges within one probe round.
        import time

        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            _, health = http_get(router.port, "/healthz")
            report = json.loads(health)
            if not report["backends"][victim.url]["healthy"]:
                break
            time.sleep(0.05)
        assert report["live_backends"] == 2
        assert report["backends"][victim.url]["healthy"] is False
        assert report["status"] == "ok"

        _, text = http_get(router.port, "/metrics")
        metrics = metrics_values(text)
        assert metrics["repro_router_failovers_total"] >= 1
        assert metrics['repro_router_backend_up{shard="%s"}'
                       % victim.url] == 0.0


def test_clean_shutdown_leaves_no_orphans(cluster):
    """Graceful terminate: every process exits and reports a returncode.

    ``cluster`` is module-scoped, so this runs last (file order) and
    doubles as the teardown check; the fixture's terminate() then
    no-ops on already-dead processes.
    """
    survivors = [backend for backend in cluster if backend.alive()]
    assert survivors, "earlier tests killed everything?"
    for backend in survivors:
        returncode = backend.terminate()
        assert returncode is not None
        assert not backend.alive()
