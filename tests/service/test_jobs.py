"""Job subsystem core: store durability, manager lifecycle, adoption.

Everything here runs against inline engines (``workers=0``) and real
store directories -- no HTTP.  The wire surface is covered by
``test_jobs_http.py`` / ``test_jobs_router.py``; the search-level
bit-identical resume property by
``tests/transform/test_search_checkpoint.py``.
"""

import json
import threading
import time

import pytest

from repro.service import PredictionEngine
from repro.service.engine import _machine_fingerprint
from repro.service.jobs import (
    JobManager,
    TERMINAL_STATUSES,
    _params_key,
    job_affinity_key,
    parse_job_path,
    public_view,
)
from repro.service.jobstore import CHECKPOINT_VERSION, JobStore, valid_job_id
from repro.service.protocol import request_from_dict

from .conftest import SAXPY, saxpy_variant

TWO_LOOPS = """
program two
  integer n, i, j
  real x(n), y(n), z(n)
  do i = 1, n
    y(i) = y(i) + 2.0 * x(i)
  end do
  do j = 1, n
    z(j) = z(j) + y(j)
  end do
end
"""


def wait_for(predicate, timeout=30.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached in time")


@pytest.fixture
def engine():
    instance = PredictionEngine(workers=0, cache_size=64)
    yield instance
    instance.close()


def make_manager(engine, tmp_path, **kwargs):
    kwargs.setdefault("slots", 1)
    return JobManager(engine, JobStore(tmp_path / "jobs"), **kwargs)


# ----------------------------------------------------------------------
# path / id helpers


def test_job_affinity_key_is_digest_prefix():
    assert job_affinity_key("abc123.deadbeef") == "abc123"
    assert job_affinity_key("noprefix") == "noprefix"


def test_parse_job_path():
    assert parse_job_path("/restructure/jobs/j1") == ("j1", False)
    assert parse_job_path("/restructure/jobs/j1/events") == ("j1", True)
    assert parse_job_path("/restructure/jobs") is None
    assert parse_job_path("/restructure") is None


def test_valid_job_id_rejects_path_traversal():
    assert valid_job_id("abc.123")
    assert not valid_job_id("../etc/passwd")
    assert not valid_job_id("a/b")
    assert not valid_job_id("")
    assert not valid_job_id(".hidden")
    assert not valid_job_id("x" * 200)


# ----------------------------------------------------------------------
# store


def test_store_record_roundtrip_and_update(tmp_path):
    store = JobStore(tmp_path)
    record = store.create("d.1", {"status": "queued", "rounds": 0})
    assert record["job_id"] == "d.1"
    assert store.get("d.1")["status"] == "queued"
    updated = store.update("d.1", status="running", rounds=2)
    assert updated["rounds"] == 2
    assert store.get("d.1")["status"] == "running"
    assert store.update("missing.1", status="running") is None
    assert store.get("missing.1") is None
    store.delete("d.1")
    assert store.get("d.1") is None


def test_store_events_dedup_from_round_and_torn_tail(tmp_path):
    store = JobStore(tmp_path)
    store.append_event("d.1", {"round": 1, "best_cost": "a"})
    store.append_event("d.1", {"round": 2, "best_cost": "b"})
    # A second writer (brief double-ownership) repeats round 2 with a
    # different payload: first write must win.
    store.append_event("d.1", {"round": 2, "best_cost": "b-dup"})
    store.append_event("d.1", {"round": 3, "best_cost": "c"})
    store.append_event("d.1", {"final": True, "status": "done", "round": 3})
    # Torn tail after a crash mid-append: never fatal, never yielded.
    with open(store.events_path("d.1"), "a") as handle:
        handle.write('{"round": 4, "best')

    events = store.events("d.1")
    rounds = [e["round"] for e in events if not e.get("final")]
    assert rounds == [1, 2, 3]
    assert [e for e in events if e["round"] == 2][0]["best_cost"] == "b"
    assert events[-1]["final"] is True

    resumed = store.events("d.1", from_round=2)
    assert [e["round"] for e in resumed if not e.get("final")] == [3]
    assert resumed[-1]["final"] is True


def test_checkpoint_compat_is_strict(tmp_path):
    store = JobStore(tmp_path)
    kwargs = dict(digest="d", fingerprint="f", params_key="p")
    store.save_checkpoint("d.1", rounds=3, state={"frontier": [1, 2]},
                          **kwargs)
    rounds, state = store.load_checkpoint("d.1", **kwargs)
    assert rounds == 3 and state == {"frontier": [1, 2]}

    for drift in ({"digest": "other"}, {"fingerprint": "other"},
                  {"params_key": "other"}):
        assert store.load_checkpoint("d.1", **{**kwargs, **drift}) is None

    # Version drift: rewrite the envelope with a bumped version.
    with open(store.checkpoint_path("d.1")) as handle:
        envelope = json.load(handle)
    envelope["version"] = CHECKPOINT_VERSION + 1
    with open(store.checkpoint_path("d.1"), "w") as handle:
        handle.write(json.dumps(envelope))
    assert store.load_checkpoint("d.1", **kwargs) is None

    store.drop_checkpoint("d.1")


# ----------------------------------------------------------------------
# manager lifecycle


def test_submit_runs_to_done_and_warms_result_cache(engine, tmp_path):
    manager = make_manager(engine, tmp_path).start()
    try:
        record = manager.submit({"source": SAXPY, "depth": 2})
        job_id = record["job_id"]
        assert record["status"] == "queued"
        assert job_affinity_key(job_id) == record["digest"]

        done = wait_for(lambda: (manager.status(job_id) or {}).get(
            "status") in TERMINAL_STATUSES)
        final = manager.status(job_id)
        assert done and final["status"] == "done"
        assert final["result"]["sequence"]
        assert final["rounds"] >= 1

        events = manager.events(job_id)
        rounds = [e["round"] for e in events if not e.get("final")]
        assert rounds == sorted(set(rounds))
        assert events[-1]["final"] and events[-1]["status"] == "done"
        # Checkpoint is dropped once the job is terminal.
        assert manager.store.load_checkpoint(
            job_id, digest=final["digest"],
            fingerprint=_machine_fingerprint("power"),
            params_key="") is None

        # The sync endpoint must now hit the cache with the same answer.
        sync = engine.handle("restructure", {"source": SAXPY, "depth": 2})
        assert sync["cached"] is True
        assert sync["sequence"] == final["result"]["sequence"]
        assert sync["cost"] == final["result"]["cost"]
    finally:
        manager.close()


def test_public_view_hides_internal_fields(engine, tmp_path):
    manager = make_manager(engine, tmp_path)
    record = manager.submit({"source": SAXPY})
    view = public_view(record)
    assert view["job_id"] == record["job_id"]
    assert view["status"] == "queued"
    assert "request" not in view
    assert "heartbeat" not in view
    assert "cancel_requested" not in view
    manager.close()


def test_submit_rejects_bad_payloads(engine, tmp_path):
    manager = make_manager(engine, tmp_path)
    with pytest.raises(Exception):
        manager.submit({"source": SAXPY, "priority": 99})
    with pytest.raises(Exception):
        manager.submit({"source": SAXPY, "machine": "nonsense"})
    with pytest.raises(Exception):
        manager.submit({"source": "not fortran ("})
    with pytest.raises(Exception):
        manager.submit({"source": SAXPY, "trace": True})  # no trace on jobs
    manager.close()


def test_priority_orders_the_queue(engine, tmp_path):
    # Manager not started: the heap is inspectable before any pop.
    manager = make_manager(engine, tmp_path)
    low = manager.submit({"source": saxpy_variant(1), "priority": -5})
    high = manager.submit({"source": saxpy_variant(2), "priority": 5})
    mid = manager.submit({"source": saxpy_variant(3)})
    import heapq

    order = []
    while manager._queue:
        order.append(heapq.heappop(manager._queue)[2])
    assert order == [high["job_id"], mid["job_id"], low["job_id"]]
    manager.close()


def test_cancel_queued_job_finalizes_immediately(engine, tmp_path):
    manager = make_manager(engine, tmp_path)   # not started: stays queued
    record = manager.submit({"source": SAXPY})
    job_id = record["job_id"]
    cancelled = manager.cancel(job_id)
    assert cancelled["status"] == "cancelled"
    events = manager.events(job_id)
    assert events and events[-1]["final"]
    assert events[-1]["status"] == "cancelled"
    # Cancelling a terminal job is a no-op returning the record.
    assert manager.cancel(job_id)["status"] == "cancelled"
    assert manager.cancel("nope.1") is None
    manager.close()


def test_cancel_running_job_stops_at_round_boundary(engine, tmp_path):
    manager = make_manager(engine, tmp_path).start()
    try:
        record = manager.submit({
            "source": TWO_LOOPS, "depth": 6, "max_nodes": 4000,
            "beam_width": 1,
        })
        job_id = record["job_id"]
        wait_for(lambda: (manager.status(job_id) or {}).get("rounds", 0) >= 1)
        state = manager.status(job_id)
        if state["status"] in TERMINAL_STATUSES:
            pytest.skip("search finished before cancel could land")
        manager.cancel(job_id)
        wait_for(lambda: (manager.status(job_id) or {}).get(
            "status") in TERMINAL_STATUSES)
        final = manager.status(job_id)
        assert final["status"] == "cancelled"
        assert manager.events(job_id)[-1]["status"] == "cancelled"
    finally:
        manager.close()


# ----------------------------------------------------------------------
# adoption + checkpoint resume


def orphan_job(store, engine, payload, stop_after):
    """A job record as a SIGKILLed shard would leave it.

    Runs the search for real but stops it after ``stop_after`` rounds,
    persisting the events and checkpoint exactly as a runner would,
    then writes a ``running`` record owned by a dead process with a
    stale heartbeat.
    """
    request = request_from_dict("restructure_job", payload)
    restructure = request.to_restructure()
    from repro.ir.digest import program_digest
    from repro.ir.parser import parse_program

    digest = program_digest(parse_program(request.source))
    fingerprint = _machine_fingerprint(request.machine)
    params = _params_key(restructure)
    job_id = f"{digest}.orphan01"

    def on_round(progress):
        store.append_event(job_id, {
            "job_id": job_id, "round": progress.round,
            "best_sequence": progress.best_sequence,
            "best_cost": str(progress.best_cost),
            "expanded": progress.expanded,
            "frontier_size": progress.frontier_size,
        })
        store.save_checkpoint(
            job_id, digest=digest, fingerprint=fingerprint,
            params_key=params, rounds=progress.round,
            state=progress.checkpoint)
        return progress.round < stop_after

    partial = engine.run_restructure_job(restructure, on_round=on_round)
    assert "error" not in partial
    store.create(job_id, {
        "status": "running", "digest": digest,
        "machine": request.machine, "priority": request.priority,
        "request": dict(payload),
        "owner": "pid:0.deadshard", "heartbeat": time.time() - 3600,
        "created": time.time() - 3600, "rounds": stop_after,
        "adopted": 0, "cancel_requested": False,
        "best_sequence": None, "best_cost": None,
        "result": None, "error": None,
    })
    return job_id


def test_stale_job_is_adopted_and_resumed_to_the_same_answer(tmp_path):
    payload = {"source": TWO_LOOPS, "depth": 3, "max_nodes": 400}
    baseline_engine = PredictionEngine(workers=0, cache_size=64)
    baseline = baseline_engine.run_restructure_job(
        request_from_dict("restructure_job", payload).to_restructure())
    baseline_engine.close()
    assert "error" not in baseline

    engine = PredictionEngine(workers=0, cache_size=64)
    store = JobStore(tmp_path / "jobs")
    job_id = orphan_job(store, engine, payload, stop_after=2)

    manager = JobManager(engine, store, slots=1, stale_after=0.1)
    manager.start()
    try:
        # A status read is the adoption hook (the router lands reads for
        # a dead shard's jobs on its successor, which calls this).
        adopted = manager.status(job_id)
        assert adopted["owner"] == manager.owner
        assert adopted["adopted"] == 1

        wait_for(lambda: (manager.status(job_id) or {}).get(
            "status") in TERMINAL_STATUSES)
        final = manager.status(job_id)
        assert final["status"] == "done"

        # Resumed answer is bit-identical to the uninterrupted run.
        assert final["result"]["sequence"] == baseline["sequence"]
        assert final["result"]["cost"] == baseline["cost"]
        assert final["result"]["program"] == baseline["program"]

        # The event log carries every round exactly once: 1..K from the
        # dead shard, K+1.. from the adopter, no overlap.
        events = manager.events(job_id)
        rounds = [e["round"] for e in events if not e.get("final")]
        assert rounds == sorted(set(rounds))
        assert rounds[0] == 1
        assert rounds == list(range(1, rounds[-1] + 1))
        assert events[-1]["final"] and events[-1]["status"] == "done"
    finally:
        manager.close()
        engine.close()


def test_jobs_running_locally_are_never_adopted(engine, tmp_path):
    manager = make_manager(engine, tmp_path, stale_after=0.01)
    # Not started: the job sits in _local as queued with an aging
    # heartbeat; a status read from the SAME process must not bump
    # adopted (only another process's manager may).
    record = manager.submit({"source": SAXPY})
    time.sleep(0.05)
    seen = manager.status(record["job_id"])
    assert seen["adopted"] == 0
    assert seen["status"] == "queued"
    manager.close()


def test_concurrent_submits_all_complete(engine, tmp_path):
    manager = make_manager(engine, tmp_path, slots=2).start()
    try:
        ids = []
        lock = threading.Lock()

        def submit(index):
            record = manager.submit({"source": saxpy_variant(index)})
            with lock:
                ids.append(record["job_id"])

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(set(ids)) == 6

        wait_for(lambda: all(
            (manager.status(job_id) or {}).get("status") == "done"
            for job_id in ids))
        for job_id in ids:
            events = manager.events(job_id)
            assert events[-1]["final"]
    finally:
        manager.close()


def test_export_metrics_publishes_gauges(engine, tmp_path):
    manager = make_manager(engine, tmp_path, slots=3)
    manager.export_metrics()
    rendered = engine.metrics.render()
    assert "repro_job_slots 3" in rendered
    assert "repro_jobs_queued 0" in rendered
    assert "repro_jobs_running 0" in rendered
    manager.close()
