"""Router behaviour for async jobs: digest affinity, relay, failover,
and the digest-memo LRU cap.
"""

import time

import pytest

from repro.service import JobStore, ReproClient
from repro.service.router import _DigestMemo

from .conftest import (
    SAXPY,
    dead_port,
    http_get,
    metrics_values,
    running_job_server,
    running_router,
    saxpy_variant,
)


def router_client(router):
    return ReproClient(f"http://127.0.0.1:{router.port}")


# ----------------------------------------------------------------------
# digest memo LRU (unit + wire)


def test_digest_memo_is_a_bounded_lru():
    memo = _DigestMemo(maxsize=3)
    digests = [memo.digest(saxpy_variant(i)) for i in range(5)]
    assert len(set(digests)) == 5
    assert len(memo) == 3
    assert memo.evictions == 2
    # Hitting a resident entry refreshes it (LRU, not FIFO): variant 4
    # is resident, so inserting one more evicts variant 2, not 4.
    assert memo.digest(saxpy_variant(4)) == digests[4]
    memo.digest(saxpy_variant(9))
    assert memo.evictions == 3
    assert memo.digest(saxpy_variant(4)) == digests[4]
    assert memo.evictions == 3   # still resident -> no new eviction


def test_digest_memo_eviction_metrics_exported(tmp_path):
    with running_job_server(tmp_path / "store") as backend:
        url = f"http://127.0.0.1:{backend.port}"
        with running_router([url], digest_memo_size=3) as router:
            with router_client(router) as client:
                for i in range(5):
                    client.predict(saxpy_variant(i))
            _, text = http_get(router.port, "/metrics")
            values = metrics_values(text)
            assert values["repro_router_digest_memo_size"] == 3
            assert values["repro_router_digest_memo_entries"] <= 3
            assert values["repro_router_digest_memo_evictions_total"] >= 2


# ----------------------------------------------------------------------
# job routing through the router


@pytest.fixture
def cluster(tmp_path):
    """Two job-enabled shards sharing one store, behind a router."""
    store = tmp_path / "store"
    with running_job_server(store, slots=1, stale_after=0.5) as first:
        with running_job_server(store, slots=1, stale_after=0.5) as second:
            urls = [f"http://127.0.0.1:{first.port}",
                    f"http://127.0.0.1:{second.port}"]
            with running_router(urls) as router:
                yield router, store, (first, second)


def test_job_lifecycle_through_router(cluster):
    router, _, _ = cluster
    with router_client(router) as client:
        submitted = client.submit_restructure(SAXPY, depth=2)
        assert submitted.status in ("queued", "running")
        final = client.wait(submitted.job_id, timeout=30)
        assert final.status == "done"
        assert final.result["sequence"]

        # Events relay through the router byte-for-byte.
        events = list(client.iter_events(submitted.job_id))
        assert events[-1]["final"] is True
        rounds = [e["round"] for e in events if not e.get("final")]
        assert rounds == sorted(set(rounds))

        # Cancel of a finished job answers through the router too.
        cancelled = client.cancel_job(submitted.job_id)
        assert cancelled.status == "done"

    _, text = http_get(router.port, "/metrics")
    values = metrics_values(text)
    assert values['repro_router_jobs_total{route="submit"}'] == 1
    assert values['repro_router_jobs_total{route="status"}'] >= 1
    assert values['repro_router_jobs_total{route="events"}'] == 1
    assert values['repro_router_jobs_total{route="cancel"}'] == 1


def test_follow_streams_live_rounds_through_router(cluster):
    router, _, _ = cluster
    with router_client(router) as client:
        submitted = client.submit_restructure(SAXPY, depth=3,
                                              max_nodes=600)
        seen = list(client.follow(submitted.job_id))
        rounds = [e["round"] for e in seen if not e.get("final")]
        assert rounds == sorted(set(rounds))
        assert seen[-1]["final"] is True
        assert client.wait(submitted.job_id, timeout=10).status == "done"


def test_jobs_never_degrade_to_router_local_engine(tmp_path):
    # Even with local_fallback on, a job request with no live shard is
    # a 503: the router's inline engine has no job store to run it.
    url = f"http://127.0.0.1:{dead_port()}"
    with running_router([url], local_fallback=True,
                        probe_interval=30) as router:
        with router_client(router) as client:
            with pytest.raises(Exception) as excinfo:
                client.submit_restructure(SAXPY)
            assert getattr(excinfo.value, "status", None) == 503
            with pytest.raises(Exception) as excinfo:
                client.job_status("abc.123")
            assert getattr(excinfo.value, "status", None) == 503


def test_orphaned_job_read_through_router_is_adopted(cluster, tmp_path):
    """A job owned by a dead shard finishes on whichever live shard the
    router lands the status read on."""
    router, store_dir, _ = cluster
    store = JobStore(store_dir)
    digest = "f" * 64
    job_id = f"{digest}.orphan42"
    store.create(job_id, {
        "status": "running", "digest": digest, "machine": "power",
        "request": {"source": SAXPY, "machine": "power", "depth": 2,
                    "max_nodes": 200, "beam_width": 1},
        "rounds": 0, "priority": 0, "adopted": 0,
        "owner": "pid:0.deadshard", "heartbeat": time.time() - 3600,
        "created": time.time() - 3600, "cancel_requested": False,
        "best_sequence": None, "best_cost": None,
        "result": None, "error": None,
    })
    with router_client(router) as client:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            record = client.job_status(job_id)
            if record.status == "done":
                break
            time.sleep(0.05)
        assert record.status == "done"
        assert record.adopted >= 1
        assert record.result["sequence"] is not None
