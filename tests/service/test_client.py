"""Client-library tests: typed responses, typed errors, pooling, async."""

import asyncio

import pytest

from repro.service import (
    AsyncReproClient,
    BadRequestError,
    PredictResponse,
    RemoteError,
    ReproClient,
    TransportError,
)
from repro.service.protocol import (
    CompareResponse,
    KernelsResponse,
    RestructureResponse,
)

from .conftest import SAXPY, dead_port, saxpy_variant

LOOP = """
program loop
  integer n, i
  real a(n)
  do i = 1, n
    a(i) = a(i) + 1.0
  end do
end
"""


@pytest.fixture
def client(server):
    with ReproClient(f"http://127.0.0.1:{server.port}") as instance:
        yield instance


# ----------------------------------------------------------------------
# sync client


def test_predict_returns_typed_response(client):
    response = client.predict(SAXPY, bindings={"n": 100})
    assert isinstance(response, PredictResponse)
    assert response.cost == "3*n + 8"
    assert response.cycles == "308"
    assert response.machine == "power"
    assert not response.cached
    assert client.predict(SAXPY, bindings={"n": 100}).cached


def test_compare_and_kernels_and_restructure(client):
    comparison = client.compare(SAXPY, SAXPY)
    assert isinstance(comparison, CompareResponse)
    assert comparison.verdict == "equal"

    kernels = client.kernels("power")
    assert isinstance(kernels, KernelsResponse)
    assert {row.kernel for row in kernels.rows} >= {"matmul", "jacobi"}

    restructured = client.restructure(LOOP, workload={"n": 16},
                                      depth=1, max_nodes=10)
    assert isinstance(restructured, RestructureResponse)
    assert restructured.cost


def test_bad_source_raises_bad_request_with_request_id(client):
    with pytest.raises(BadRequestError) as excinfo:
        client.predict("this is not fortran")
    error = excinfo.value
    assert error.status == 400
    assert error.error in ("ParseError", "LexError")
    assert error.request_id  # propagated, so the failure is traceable
    assert error.request_id == client.last_request_id


def test_schema_violation_maps_to_bad_request(client):
    with pytest.raises(BadRequestError) as excinfo:
        client.predict(SAXPY, machine="no-such-machine")
    assert excinfo.value.status == 400


def test_request_id_is_caller_controllable(server, client):
    import urllib.request

    client.predict(SAXPY, request_id="my-request-7")
    assert client.last_request_id == "my-request-7"
    # And the server really echoes it on the wire.
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/healthz",
        headers={"X-Request-Id": "my-request-8"})
    with urllib.request.urlopen(request, timeout=10) as response:
        assert response.headers.get("X-Request-Id") == "my-request-8"


def test_connection_pool_reuses_connections(client):
    for _ in range(3):
        client.predict(SAXPY)
    # Sequential keep-alive calls ride one pooled connection.
    assert client._pool._idle.qsize() == 1


def test_batch_mixes_successes_and_typed_errors(client):
    results = client.predict_batch([
        {"source": SAXPY},
        {"source": "garbage ("},
        {"source": saxpy_variant(1)},
    ])
    assert isinstance(results[0], PredictResponse)
    assert isinstance(results[1], RemoteError)
    assert results[1].status == 400
    assert isinstance(results[2], PredictResponse)


def test_transport_error_on_dead_port():
    with ReproClient(f"http://127.0.0.1:{dead_port()}",
                     timeout=2, retries=1) as client:
        with pytest.raises(TransportError) as excinfo:
            client.predict(SAXPY)
    assert excinfo.value.request_id


def test_healthz_and_metrics(client):
    assert client.healthz()["status"] == "ok"
    assert "repro_http_requests_total" in client.metrics()


# ----------------------------------------------------------------------
# async client


def test_async_client_basics(server):
    async def scenario():
        async with AsyncReproClient(
                f"http://127.0.0.1:{server.port}") as client:
            response = await client.predict(SAXPY, bindings={"n": 100})
            assert response.cost == "3*n + 8"
            assert response.cycles == "308"

            health = await client.healthz()
            assert health["status"] == "ok"

            comparison = await client.compare(SAXPY, SAXPY)
            assert comparison.verdict == "equal"

            with pytest.raises(BadRequestError) as excinfo:
                await client.predict("not fortran")
            assert excinfo.value.status == 400
            assert excinfo.value.request_id

    asyncio.run(scenario())


def test_async_client_concurrent_requests_share_pool(server):
    async def scenario():
        async with AsyncReproClient(
                f"http://127.0.0.1:{server.port}", pool_size=4) as client:
            sources = [saxpy_variant(i) for i in range(6)]
            responses = await asyncio.gather(
                *(client.predict(source) for source in sources))
            assert all(r.cost for r in responses)
            assert len({r.digest for r in responses}) == len(sources)
            # The pool kept at most pool_size idle connections.
            assert len(client._idle) <= 4

            batch = await client.predict_batch(
                [{"source": source} for source in sources])
            assert all(isinstance(r, PredictResponse) for r in batch)
            assert all(r.cached for r in batch)  # warmed just above

    asyncio.run(scenario())


def test_async_transport_error_on_dead_port():
    async def scenario():
        async with AsyncReproClient(f"http://127.0.0.1:{dead_port()}",
                                    timeout=2, retries=0) as client:
            with pytest.raises(TransportError):
                await client.predict(SAXPY)

    asyncio.run(scenario())
