"""Engine behaviour: caching, batching, errors, worker pools."""

import pytest

from repro.cost import reset_placement_cache
from repro.service import (
    CompareRequest,
    KernelsRequest,
    PredictRequest,
    PredictionEngine,
    RestructureRequest,
    ServiceError,
)

SAXPY = """
program saxpy
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""

# Same program, different formatting: must share a cache entry.
SAXPY_REFORMATTED = """
program saxpy
  integer n
  integer i
  real x(n)
  real y(n)
  real alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""

DAXPY_VARIANT = """
program saxpy
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i) + 1.0
  end do
end
"""


@pytest.fixture
def engine():
    with PredictionEngine(workers=0, cache_size=32) as eng:
        yield eng


def test_predict_symbolic_and_point(engine):
    response = engine.predict(
        PredictRequest(source=SAXPY, bindings={"n": 100}))
    assert response.cost == "3*n + 8"
    assert response.cycles == "308"
    assert response.variables == ("n",)
    assert not response.cached


def test_cache_hit_on_identical_request(engine):
    first = engine.predict(PredictRequest(source=SAXPY))
    second = engine.predict(PredictRequest(source=SAXPY))
    assert not first.cached and second.cached
    assert second.cost == first.cost
    assert engine.cache.stats.hits == 1


def test_cache_is_content_addressed(engine):
    first = engine.predict(PredictRequest(source=SAXPY))
    reformatted = engine.predict(PredictRequest(source=SAXPY_REFORMATTED))
    assert reformatted.cached                 # structural equality collides
    assert reformatted.digest == first.digest
    variant = engine.predict(PredictRequest(source=DAXPY_VARIANT))
    assert not variant.cached                 # real change misses
    assert variant.digest != first.digest


def test_cache_key_covers_inputs(engine):
    engine.predict(PredictRequest(source=SAXPY))
    different_machine = engine.predict(
        PredictRequest(source=SAXPY, machine="scalar"))
    different_backend = engine.predict(
        PredictRequest(source=SAXPY, backend="naive"))
    different_point = engine.predict(
        PredictRequest(source=SAXPY, bindings={"n": 7}))
    assert not different_machine.cached
    assert not different_backend.cached
    assert not different_point.cached


def test_batch_preserves_order_and_isolates_errors(engine):
    responses = engine.batch([
        PredictRequest(source=SAXPY),
        PredictRequest(source="this is not fortran ("),
        KernelsRequest(machine="power"),
    ])
    assert responses[0].cost == "3*n + 8"
    assert isinstance(responses[1], ServiceError)
    assert responses[1].envelope["status"] == 400
    assert len(responses[2].rows) >= 10


def test_compare_and_restructure(engine):
    comparison = engine.compare(
        CompareRequest(first=SAXPY, second=DAXPY_VARIANT,
                       domain={"n": [1, 1000]}))
    assert comparison.verdict in ("first_always", "second_always",
                                  "depends", "equal", "unknown")
    assert "verdict:" in comparison.report

    restructured = engine.restructure(
        RestructureRequest(source=SAXPY, workload={"n": 512}, depth=1,
                           max_nodes=50))
    assert restructured.sequence  # "(original)" or a transform chain
    assert restructured.cost


def test_handle_wire_errors(engine):
    missing = engine.handle("predict", {})
    assert missing["error"] == "ProtocolError" and missing["status"] == 400
    unknown_machine = engine.handle(
        "predict", {"source": SAXPY, "machine": "cray"})
    assert unknown_machine["status"] == 400
    bad_kind = engine.handle("frobnicate", {})
    assert bad_kind["status"] == 400


def test_errors_are_not_cached(engine):
    for _ in range(2):
        result = engine.handle("predict", {"source": SAXPY, "machine": "cray"})
        assert "error" in result
    assert len(engine.cache) == 0


def test_persistent_cache_warm_start(tmp_path):
    path = str(tmp_path / "service.jsonl")
    with PredictionEngine(workers=0, cache_size=32, cache_path=path) as eng:
        assert not eng.predict(PredictRequest(source=SAXPY)).cached
    with PredictionEngine(workers=0, cache_size=32, cache_path=path) as eng:
        warmed = eng.predict(PredictRequest(source=SAXPY))
        assert warmed.cached
        assert warmed.cost == "3*n + 8"


def test_metrics_counters(engine):
    engine.predict(PredictRequest(source=SAXPY))
    engine.predict(PredictRequest(source=SAXPY))
    requests = engine.metrics.counter("repro_engine_requests_total")
    assert requests.value(kind="predict", outcome="computed") == 1
    assert requests.value(kind="predict", outcome="cache_hit") == 1
    engine.export_cache_metrics()
    assert engine.metrics.gauge("repro_cache_hits_total").value() == 1


@pytest.mark.parametrize("executor", ["process", "thread"])
def test_worker_pool_batch(executor):
    with PredictionEngine(workers=2, cache_size=32,
                          executor=executor) as eng:
        responses = eng.batch([
            PredictRequest(source=SAXPY),
            PredictRequest(source=DAXPY_VARIANT),
            PredictRequest(source=SAXPY, bindings={"n": 10}),
        ])
        assert [isinstance(r, ServiceError) for r in responses] == [False] * 3
        assert responses[0].cost == "3*n + 8"
        assert responses[2].cycles == "38"
        # Second round is served entirely from the in-process cache.
        again = eng.batch([PredictRequest(source=SAXPY)])
        assert again[0].cached


# ----------------------------------------------------------------------
# cost-table fingerprints in cache keys


def test_cache_key_includes_cost_table_fingerprint(engine, monkeypatch):
    from repro.machine import registry as registry_mod
    from repro.machine.registry import get_machine

    first = engine.predict(PredictRequest(source=SAXPY))
    assert engine.predict(PredictRequest(source=SAXPY)).cached

    # Simulate recalibration: same machine name, different fingerprint.
    machine = get_machine("power")
    registry_mod._FINGERPRINT_MEMO.pop("power", None)
    monkeypatch.setattr(type(machine), "fingerprint",
                        lambda self: "deadbeefdeadbeef")
    try:
        recalibrated = engine.predict(PredictRequest(source=SAXPY))
    finally:
        registry_mod._FINGERPRINT_MEMO.pop("power", None)
    assert not recalibrated.cached        # stale entry no longer matches
    assert recalibrated.cost == first.cost


def test_fingerprint_covers_cost_table():
    from repro.machine.machine import cost_table_fingerprint
    from repro.machine.registry import get_machine

    power = get_machine("power")
    risc = get_machine("alpha")
    assert cost_table_fingerprint(power) != cost_table_fingerprint(risc)
    assert cost_table_fingerprint(power) == power.fingerprint()
    assert len(power.fingerprint()) == 16


# ----------------------------------------------------------------------
# tracing through the engine


def test_trace_block_on_request(engine):
    from repro.service import engine as engine_mod

    # The worker-side predictor pool and the placement memo both
    # short-circuit repeat work; start cold so the full pipeline (and
    # its spans) actually runs.
    engine_mod._predictors.clear()
    reset_placement_cache()
    response = engine.predict(PredictRequest(source=SAXPY, trace=True))
    names = {span["name"] for span in response.trace}
    assert {"predict", "translate.specialize", "cost.place",
            "aggregate.loop"} <= names


def test_untraced_request_has_no_trace_block(engine):
    result = engine.handle("predict", {"source": SAXPY})
    assert "trace" not in result


def test_cached_response_stays_trace_free(engine):
    engine.predict(PredictRequest(source=SAXPY, trace=True))
    hit = engine.predict(PredictRequest(source=SAXPY, trace=True))
    assert hit.cached
    # A hit never re-runs the pipeline; it reports only the lookup.
    assert [span["name"] for span in hit.trace] == ["engine.execute"]
    assert hit.trace[0]["attrs"]["cached"] is True


def test_engine_ingests_spans_into_active_tracer(engine):
    from repro.obs import Tracer
    from repro.service import engine as engine_mod

    engine_mod._predictors.clear()
    reset_placement_cache()
    tracer = Tracer(metrics=engine.metrics)
    with tracer.activate():
        engine.handle("predict", {"source": SAXPY})
    names = [span["name"] for span in tracer.export()]
    assert "engine.execute" in names
    assert "cost.place" in names
    histogram = engine.metrics.histogram("repro_phase_seconds")
    assert histogram.count(phase="cost.place") > 0


def test_cache_lookup_counters_by_endpoint(engine):
    engine.handle("predict", {"source": SAXPY})
    engine.handle("predict", {"source": SAXPY})
    lookups = engine.metrics.counter("repro_cache_requests_total")
    assert lookups.value(endpoint="predict", result="miss") == 1
    assert lookups.value(endpoint="predict", result="hit") == 1


def test_entry_age_histogram_snapshots_current_residents(engine):
    engine.handle("predict", {"source": SAXPY})
    engine.export_cache_metrics()
    ages = engine.metrics.histogram("repro_cache_entry_age_seconds")
    assert ages.count(endpoint="predict") == 1
    engine.export_cache_metrics()      # re-scrape must not double-count
    assert ages.count(endpoint="predict") == 1


def test_eviction_telemetry(tmp_path):
    with PredictionEngine(workers=0, cache_size=1) as engine:
        engine.handle("predict", {"source": SAXPY})
        engine.handle("predict", {"source": DAXPY_VARIANT})
        evictions = engine.metrics.counter(
            "repro_cache_endpoint_evictions_total")
        assert evictions.value(endpoint="predict") == 1
        age_hist = engine.metrics.histogram("repro_cache_evicted_age_seconds")
        assert age_hist.count(endpoint="predict") == 1


@pytest.mark.parametrize("executor", ["process", "thread"])
def test_worker_pool_returns_trace(executor):
    from repro.service import engine as engine_mod

    engine_mod._predictors.clear()   # thread workers share this pool
    reset_placement_cache()
    with PredictionEngine(workers=2, cache_size=8,
                          executor=executor) as engine:
        response = engine.predict(PredictRequest(source=SAXPY, trace=True))
        names = {span["name"] for span in response.trace}
        assert "predict" in names and "cost.place" in names


def test_batch_dedups_identical_misses(engine):
    """Three identical predicts in one batch: one execution, three answers."""
    batch = [("predict", {"source": SAXPY})] * 3 + \
            [("predict", {"source": DAXPY_VARIANT})]
    results = engine.handle_batch(batch)
    assert all("error" not in r for r in results)
    assert results[0]["cost"] == results[1]["cost"] == results[2]["cost"]
    requests = engine.metrics.counter("repro_engine_requests_total")
    assert requests.value(kind="predict", outcome="computed") == 2
    assert requests.value(kind="predict", outcome="deduplicated") == 2
    lookups = engine.metrics.counter("repro_cache_requests_total")
    assert lookups.value(endpoint="predict", result="miss") == 2
    assert lookups.value(endpoint="predict", result="deduplicated") == 2
    # The representative's answer landed in the cache exactly once.
    assert engine.handle("predict", {"source": SAXPY})["cached"]


def test_batch_dedup_keeps_traced_duplicates_separate(engine):
    """A trace-requesting duplicate computes on its own (honest trace)."""
    results = engine.handle_batch([
        ("predict", {"source": SAXPY}),
        ("predict", {"source": SAXPY, "trace": True}),
    ])
    assert "trace" not in results[0]
    assert results[1]["trace"]          # its own spans, not a copy
    requests = engine.metrics.counter("repro_engine_requests_total")
    assert requests.value(kind="predict", outcome="deduplicated") == 0


def test_batch_dedup_on_worker_pool():
    """Dedup happens engine-side, before chunks are formed."""
    from repro.service import engine as engine_mod

    engine_mod._predictors.clear()
    reset_placement_cache()
    with PredictionEngine(workers=2, cache_size=8,
                          executor="thread") as engine:
        batch = [("predict", {"source": SAXPY})] * 6
        results = engine.handle_batch(batch)
        assert len({r["cost"] for r in results}) == 1
        requests = engine.metrics.counter("repro_engine_requests_total")
        assert requests.value(kind="predict", outcome="computed") == 1
        assert requests.value(kind="predict", outcome="deduplicated") == 5


def test_arena_gauges_exported(engine):
    from repro.cost import place_batch, reset_arenas
    from repro.machine import power_machine
    from repro.translate.stream import Instr

    reset_arenas()
    streams = [[Instr(0, "fpu_arith"), Instr(1, "fpu_arith", deps=(0,))]] * 3
    place_batch(power_machine(), streams, use_memo=False)
    engine.export_cache_metrics()
    assert engine.metrics.gauge("repro_arena_streams_total").value() == 3
    assert engine.metrics.gauge("repro_arena_dedup_total").value() == 2
    assert engine.metrics.gauge("repro_arena_drops_total").value() == 2
