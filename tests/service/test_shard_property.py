"""Hypothesis properties of the consistent-hash ring.

The router's correctness rests on three ring invariants, so they get
property coverage rather than example coverage:

1. **Single ownership** -- every key is owned by exactly one live node,
   and the preference walk enumerates each node exactly once, owner
   first.
2. **Bounded remapping** -- removing one of K nodes moves only the keys
   that node owned (everyone else's owner is *unchanged*, an exact
   property), and that slice is ~1/K of the keyspace (a statistical
   bound from the vnode balance).
3. **Cross-process determinism** -- the ring derives from SHA-256 of
   the membership only, so two router processes (different hosts,
   different ``PYTHONHASHSEED``) route every digest identically.
"""

import json
import subprocess
import sys

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.shard import HashRing

_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789.-",
    min_size=1, max_size=16,
)
_node_sets = st.lists(_names, min_size=1, max_size=8, unique=True)
_keys = st.text(min_size=0, max_size=64)


@given(nodes=_node_sets, key=_keys)
def test_every_key_has_exactly_one_owner(nodes, key):
    ring = HashRing(nodes)
    owner = ring.owner(key)
    assert owner in ring.nodes
    walk = list(ring.preference(key))
    assert walk[0] == owner
    assert sorted(walk) == sorted(ring.nodes)  # each node exactly once


@given(nodes=_node_sets, key=_keys, data=st.data())
def test_owner_is_independent_of_insertion_order(nodes, key, data):
    shuffled = data.draw(st.permutations(nodes))
    assert HashRing(nodes).owner(key) == HashRing(shuffled).owner(key)


@settings(max_examples=50)
@given(nodes=st.lists(_names, min_size=2, max_size=8, unique=True),
       data=st.data())
def test_removing_one_node_remaps_only_its_keys(nodes, data):
    victim = data.draw(st.sampled_from(nodes))
    ring = HashRing(nodes)
    keys = [f"sample-key-{i}" for i in range(300)]
    before = {key: ring.owner(key) for key in keys}

    ring.remove(victim)
    moved = 0
    for key in keys:
        after = ring.owner(key)
        if before[key] == victim:
            moved += 1
            assert after != victim
        else:
            # The exact consistent-hashing property: keys not owned by
            # the removed node NEVER change owner.
            assert after == before[key]

    # Statistical balance bound: the victim owned ~1/K of the keyspace
    # (64 vnodes keep the worst share well under 2.5x fair, and the
    # keyspace fraction bounds the sampled fraction in expectation).
    assert moved / len(keys) <= min(1.0, 2.5 / len(nodes)) + 0.05


@settings(max_examples=50)
@given(nodes=_node_sets, key=_keys)
def test_adding_a_node_only_steals_keys_for_itself(nodes, key):
    ring = HashRing(nodes)
    before = ring.owner(key)
    ring.add("zz-new-node")
    after = ring.owner(key)
    assert after in (before, "zz-new-node")


def test_ring_assignment_is_deterministic_across_processes():
    """Two interpreters with different hash seeds agree on every owner."""
    nodes = ["http://10.0.0.1:8081", "http://10.0.0.2:8081",
             "http://10.0.0.3:8081"]
    keys = [f"digest-{i:04x}" for i in range(64)]
    script = (
        "import json, sys\n"
        "from repro.service.shard import HashRing\n"
        "nodes, keys = json.load(sys.stdin)\n"
        "ring = HashRing(nodes)\n"
        "print(json.dumps({k: ring.owner(k) for k in keys}))\n"
    )
    payload = json.dumps([nodes, keys])

    def owners_in_subprocess(hash_seed: str) -> dict:
        import os

        import repro

        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        src = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            input=payload, capture_output=True, text=True,
            env=env, timeout=60, check=True,
        )
        return json.loads(result.stdout)

    local = {key: HashRing(nodes).owner(key) for key in keys}
    assert owners_in_subprocess("0") == local
    assert owners_in_subprocess("424242") == local
