"""Shared service-test machinery: managed servers, routers, and faults.

Every server or router a test starts goes through the context managers
here, so sockets are closed and threads joined even when the test body
(or an assertion inside it) fails -- the ad-hoc start/stop in early
tests leaked listening sockets on failure paths and could leave later
runs fighting ``EADDRINUSE``.

:class:`FlakyBackend` is the fault-injection harness: an HTTP-aware
reverse proxy wrapped around a *real* backend that injects one fault
per scheduled request -- connection drops, mid-body disconnects,
synthetic 500s, latency spikes -- then behaves normally.  Router tests
point the ring at the proxy's port, so every failover path is
exercised against genuine sockets, not mocks.
"""

from __future__ import annotations

import contextlib
import http.client
import json
import threading
import time
import urllib.request
from collections import deque
from http.server import BaseHTTPRequestHandler, HTTPServer
from socketserver import ThreadingMixIn

import pytest

from repro.service import PredictionEngine, make_router, make_server

SAXPY = """
program saxpy
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""


def saxpy_variant(index: int) -> str:
    """A family of structurally distinct programs (distinct digests)."""
    return SAXPY.replace("alpha * x(i)", f"alpha * x(i) + {index}.0")


# ----------------------------------------------------------------------
# managed lifecycles


@contextlib.contextmanager
def running_server(*, workers: int = 0, cache_size: int = 64,
                   **server_kwargs):
    """A live backend on an ephemeral port; always stopped on exit."""
    engine = PredictionEngine(workers=workers, cache_size=cache_size)
    instance = make_server(engine, host="127.0.0.1", port=0, **server_kwargs)
    instance.start_background()
    try:
        yield instance
    finally:
        instance.stop()


@contextlib.contextmanager
def running_job_server(store_dir, *, workers=0, cache_size=64,
                       slots=1, stale_after=5.0, owner=None,
                       **server_kwargs):
    """A live backend with the async-job subsystem attached.

    Point several at one ``store_dir`` to exercise cross-shard
    adoption: whichever server receives a read for a stale job
    re-queues and resumes it.
    """
    engine = PredictionEngine(workers=workers, cache_size=cache_size)
    engine.attach_jobs(store_dir, slots=slots, stale_after=stale_after)
    if owner is not None:
        engine.jobs.owner = owner
    instance = make_server(engine, host="127.0.0.1", port=0, **server_kwargs)
    instance.start_background()
    try:
        yield instance
    finally:
        instance.stop()


@contextlib.contextmanager
def running_router(backends, **kwargs):
    """A live router over ``backends`` URLs; always stopped on exit."""
    kwargs.setdefault("probe_interval", 0.2)
    kwargs.setdefault("probe_timeout", 0.5)
    kwargs.setdefault("backoff", 0.01)
    router = make_router(backends, host="127.0.0.1", port=0, **kwargs)
    router.start_background()
    try:
        yield router
    finally:
        router.stop()


@pytest.fixture
def server():
    with running_server(workers=0, cache_size=32) as instance:
        yield instance


# ----------------------------------------------------------------------
# plain-HTTP helpers (tests that want to see raw wire behaviour)


def http_post(port: int, path: str, payload, timeout: float = 10.0):
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


def http_get(port: int, path: str, timeout: float = 10.0):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return response.status, response.read().decode("utf-8")


def metrics_values(text: str) -> dict[str, float]:
    """Parse a Prometheus exposition body into ``{series: value}``."""
    out: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        try:
            out[series] = float(value)
        except ValueError:
            continue
    return out


# ----------------------------------------------------------------------
# fault injection


class _FlakyHandler(BaseHTTPRequestHandler):
    server: "FlakyBackend"
    protocol_version = "HTTP/1.1"
    timeout = 30

    def log_message(self, format, *args):  # noqa: A002 -- quiet
        pass

    def do_GET(self):  # noqa: N802 -- http.server API
        self._handle("GET")

    def do_POST(self):  # noqa: N802 -- http.server API
        self._handle("POST")

    def _handle(self, method: str) -> None:
        # Always drain the request body first: answering a fault with
        # the body still unread desyncs the keep-alive stream (the next
        # request line would be parsed out of the old body).
        length = int(self.headers.get("Content-Length") or 0)
        request_body = self.rfile.read(length) if length else None
        fault = self.server.next_fault(self.path)
        self.server.record(self.path, fault)
        if fault.startswith("slow:"):
            time.sleep(float(fault.split(":", 1)[1]))
            fault = "ok"
        if fault == "refuse":
            # Drop the connection without a response: the caller sees a
            # reset / empty status line, like a crashed backend.
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:
                pass
            return
        if fault == "error":
            body = json.dumps({
                "error": "InjectedFault",
                "message": "fault injection: synthetic 500",
                "status": 500,
            }).encode()
            self.send_response(500)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return

        status, headers, body = self._forward(method, request_body)
        if fault == "truncate":
            # Promise the full body, deliver half, drop the connection:
            # the caller sees IncompleteRead mid-body.
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body[: max(1, len(body) // 2)])
            self.wfile.flush()
            self.close_connection = True
            try:
                self.connection.close()
            except OSError:
                pass
            return
        self.send_response(status)
        self.send_header("Content-Type",
                         headers.get("content-type", "application/json"))
        self.send_header("Content-Length", str(len(body)))
        request_id = self.headers.get("X-Request-Id")
        if request_id:
            self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)

    def _forward(self, method: str,
                 body: bytes | None) -> tuple[int, dict[str, str], bytes]:
        connection = http.client.HTTPConnection(
            *self.server.upstream, timeout=30)
        try:
            headers = {}
            if body is not None:
                headers["Content-Type"] = "application/json"
            request_id = self.headers.get("X-Request-Id")
            if request_id:
                headers["X-Request-Id"] = request_id
            connection.request(method, self.path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
            return (response.status,
                    {k.lower(): v for k, v in response.getheaders()},
                    payload)
        finally:
            connection.close()


class FlakyBackend(ThreadingMixIn, HTTPServer):
    """An HTTP reverse proxy that injects one fault per scheduled request.

    Faults (consumed in FIFO order by matching requests; unscheduled
    requests pass through):

    * ``"refuse"``   -- drop the connection without any response bytes;
    * ``"error"``    -- answer a synthetic 500 envelope locally;
    * ``"truncate"`` -- relay the upstream response but cut the body in
      half mid-send;
    * ``"slow:S"``   -- sleep S seconds, then relay normally (a latency
      spike; pair with a short router ``forward_timeout``).

    ``only_paths`` restricts fault consumption (e.g. to ``/predict``) so
    health probes keep succeeding while data requests misbehave --
    exactly the half-dead backend that is hardest on a router.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, upstream_url: str, *, only_paths=("/predict",
                                                         "/compare",
                                                         "/restructure",
                                                         "/kernels")):
        super().__init__(("127.0.0.1", 0), _FlakyHandler)
        host, _, port = upstream_url.rpartition("//")[2].partition(":")
        self.upstream = (host or "127.0.0.1", int(port))
        self.only_paths = tuple(only_paths)
        self._plan: deque[str] = deque()
        self._lock = threading.Lock()
        self.log: list[tuple[str, str]] = []   # (path, fault) per request
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server_address[1]}"

    def schedule(self, *faults: str) -> None:
        with self._lock:
            self._plan.extend(faults)

    def next_fault(self, path: str) -> str:
        base = path.split("?", 1)[0]
        if base not in self.only_paths:
            return "ok"
        with self._lock:
            return self._plan.popleft() if self._plan else "ok"

    def record(self, path: str, fault: str) -> None:
        with self._lock:
            self.log.append((path, fault))

    def start_background(self) -> "FlakyBackend":
        self._thread = threading.Thread(
            target=self.serve_forever, name="flaky-backend", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


@contextlib.contextmanager
def flaky_proxy(upstream_url: str, **kwargs):
    proxy = FlakyBackend(upstream_url, **kwargs)
    proxy.start_background()
    try:
        yield proxy
    finally:
        proxy.stop()


@pytest.fixture
def flaky_backend():
    """Factory fixture: ``flaky_backend(url)`` -> started proxy."""
    proxies: list[FlakyBackend] = []

    def factory(upstream_url: str, **kwargs) -> FlakyBackend:
        proxy = FlakyBackend(upstream_url, **kwargs)
        proxy.start_background()
        proxies.append(proxy)
        return proxy

    yield factory
    for proxy in proxies:
        proxy.stop()


def dead_port() -> int:
    """A port nobody listens on (bound, then released)."""
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]
