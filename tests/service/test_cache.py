"""LRU behaviour, stats, and JSON-lines persistence of ResultCache."""

import json

from repro.service.cache import ResultCache


def test_hit_miss_accounting():
    cache = ResultCache(maxsize=4)
    assert cache.get("a") is None
    cache.put("a", {"v": 1})
    assert cache.get("a") == {"v": 1}
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.5


def test_lru_eviction_order():
    cache = ResultCache(maxsize=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    cache.get("a")                  # refresh "a": "b" is now LRU
    cache.put("c", {"v": 3})
    assert "a" in cache and "c" in cache
    assert "b" not in cache
    assert cache.stats.evictions == 1


def test_overwrite_does_not_evict():
    cache = ResultCache(maxsize=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    cache.put("a", {"v": 10})
    assert len(cache) == 2
    assert cache.stats.evictions == 0
    assert cache.get("a") == {"v": 10}


def test_persistence_roundtrip(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(maxsize=8, path=path)
    cache.put("k1", {"cost": "3*n + 8"})
    cache.put("k2", {"cost": "5*n"})
    cache.put("k1", {"cost": "updated"})

    warmed = ResultCache(maxsize=8, path=path)
    assert len(warmed) == 2
    assert warmed.get("k1") == {"cost": "updated"}  # later line wins
    assert warmed.get("k2") == {"cost": "5*n"}


def test_load_respects_maxsize(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(maxsize=16, path=path)
    for i in range(10):
        cache.put(f"k{i}", {"v": i})

    small = ResultCache(maxsize=3, path=path)
    assert len(small) == 3
    # The newest entries survive the trim.
    assert "k9" in small and "k7" in small
    assert "k0" not in small


def test_load_skips_corrupt_lines(tmp_path):
    path = tmp_path / "cache.jsonl"
    path.write_text(
        json.dumps({"key": "good", "value": {"v": 1}}) + "\n"
        + "{torn-write\n"
        + json.dumps({"no_key": True}) + "\n"
    )
    cache = ResultCache(maxsize=4, path=path)
    assert len(cache) == 1
    assert cache.get("good") == {"v": 1}


def test_compact_rewrites_file(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(maxsize=2, path=path)
    for i in range(6):
        cache.put(f"k{i}", {"v": i})
    assert len(path.read_text().splitlines()) == 6
    cache.compact()
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    warmed = ResultCache(maxsize=2, path=path)
    assert "k5" in warmed and "k4" in warmed


# ----------------------------------------------------------------------
# telemetry: endpoints, entry ages, eviction records


def test_endpoint_of_takes_key_prefix():
    from repro.service.cache import endpoint_of

    assert endpoint_of("predict|abc123|power|fp=ff") == "predict"
    assert endpoint_of("kernels") == "kernels"


def test_put_reports_eviction_with_endpoint_and_age():
    cache = ResultCache(maxsize=1)
    assert cache.put("predict|old", {"v": 1}) is None
    evicted = cache.put("compare|new", {"v": 2})
    assert evicted is not None
    assert evicted.key == "predict|old"
    assert evicted.endpoint == "predict"
    assert evicted.age >= 0.0


def test_overwrite_returns_no_eviction():
    cache = ResultCache(maxsize=1)
    cache.put("k", {"v": 1})
    assert cache.put("k", {"v": 2}) is None


def test_entry_ages_track_residents():
    cache = ResultCache(maxsize=4)
    cache.put("predict|a", {"v": 1})
    cache.put("compare|b", {"v": 2})
    ages = cache.entry_ages()
    assert set(ages) == {"predict|a", "compare|b"}
    assert all(age >= 0.0 for age in ages.values())
    cache.clear()
    assert cache.entry_ages() == {}


def test_persistence_keeps_timestamps(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(maxsize=8, path=path)
    cache.put("k1", {"cost": "3*n + 8"})
    with open(path) as handle:
        record = json.loads(handle.readline())
    assert record["ts"] > 0

    warmed = ResultCache(maxsize=8, path=path)
    # The reloaded age reflects the original insertion, not load time.
    assert warmed.entry_ages()["k1"] >= 0.0
    warmed.compact()
    with open(path) as handle:
        record = json.loads(handle.readline())
    assert record["ts"] > 0


def test_legacy_lines_without_ts_still_load(tmp_path):
    path = tmp_path / "cache.jsonl"
    path.write_text(json.dumps({"key": "k", "value": {"v": 1}}) + "\n")
    cache = ResultCache(maxsize=8, path=path)
    assert cache.get("k") == {"v": 1}
    assert cache.entry_ages()["k"] >= 0.0


# ----------------------------------------------------------------------
# aux request blocks (surrogate training data riding on cache lines)


def test_aux_blocks_persist_and_reload(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(maxsize=8, path=path)
    req = {"source": "end", "machine": "power", "bindings": {"n": "4"}}
    cache.put("predict|a", {"cycles": "20"}, aux=req)
    cache.put("predict|b", {"cycles": "30"})       # aux-free line

    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert records[0]["req"] == req
    assert "req" not in records[1]

    warmed = ResultCache(maxsize=8, path=path)
    assert warmed.get("predict|a") == {"cycles": "20"}
    warmed.compact()
    records = {r["key"]: r.get("req")
               for r in map(json.loads, path.read_text().splitlines())}
    assert records == {"predict|a": req, "predict|b": None}


def test_compact_preserves_aux_blocks(tmp_path):
    path = tmp_path / "cache.jsonl"
    cache = ResultCache(maxsize=8, path=path)
    req = {"source": "end", "machine": "power", "bindings": {"n": "9"}}
    for _ in range(3):                              # duplicate appends
        cache.put("predict|a", {"cycles": "20"}, aux=req)
    cache.compact()
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["req"] == req


def test_eviction_drops_aux(tmp_path):
    cache = ResultCache(maxsize=1)
    cache.put("predict|a", {"v": 1}, aux={"machine": "power"})
    cache.put("predict|b", {"v": 2})
    assert "predict|a" not in cache
    assert cache._aux == {}
