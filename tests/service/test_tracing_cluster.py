"""End-to-end observability: stitched cross-process traces, cluster
metrics aggregation, request-id propagation, and the disabled-mode
zero-allocation guarantee.

The pid assertions need *real* OS process boundaries, so those tests
spawn ``repro serve`` subprocesses via :mod:`repro.service.cluster`;
everything else runs against in-process servers for speed.
"""

from __future__ import annotations

import contextlib
import json
import time
import urllib.error
import urllib.request

from repro.ir.digest import program_digest
from repro.ir.parser import parse_program
from repro.obs.slo import Objective, SloTracker
from repro.service import ReproClient
from repro.service.cluster import spawn_backend
from repro.service.metrics import parse_exposition

from .conftest import (
    SAXPY,
    flaky_proxy,
    http_get,
    running_job_server,
    running_router,
    running_server,
    saxpy_variant,
)


def _fetch_spans(port: int, request_id: str) -> list[dict]:
    try:
        _, body = http_get(port, f"/debug/trace/{request_id}?format=spans")
    except urllib.error.HTTPError:
        return []
    return json.loads(body)["spans"]


def _poll_trace(port: int, request_id: str, *, require_names=(),
                min_pids: int = 1, timeout: float = 20.0) -> list[dict]:
    """Deposits happen after the response is written; poll briefly."""
    deadline = time.monotonic() + timeout
    spans: list[dict] = []
    while time.monotonic() < deadline:
        spans = _fetch_spans(port, request_id)
        if (len({s["pid"] for s in spans}) >= min_pids
                and set(require_names) <= {s["name"] for s in spans}):
            return spans
        time.sleep(0.1)
    return spans     # let the caller's assertions show what arrived


def _poll_engine_trace(server, request_id: str, timeout: float = 10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        spans = server.engine.traces.get(request_id)
        if spans:
            return spans
        time.sleep(0.05)
    return None


# ----------------------------------------------------------------------
# stitched traces across real process boundaries


def test_routed_predict_trace_spans_two_processes():
    backend = spawn_backend()
    try:
        with running_router([backend.url], tracing=True) as router:
            with ReproClient(f"http://127.0.0.1:{router.port}") as client:
                response = client.predict(SAXPY)
                assert response.cost
                request_id = client.last_request_id
            spans = _poll_trace(
                router.port, request_id, min_pids=2,
                require_names={"router.handle", "router.forward",
                               "server.handle"})
            assert len({s["pid"] for s in spans}) >= 2
            assert len({s["trace_id"] for s in spans}) == 1

            by_name = {s["name"]: s for s in spans}
            forward = by_name["router.forward"]
            handle = by_name["router.handle"]
            assert forward["parent_id"] == handle["span_id"]
            # The shard's root span parents under the router's forward
            # span -- that is the cross-process stitch.
            assert by_name["server.handle"]["parent_id"] == \
                forward["span_id"]
            assert by_name["server.handle"]["pid"] != handle["pid"]

            # And the default format is one loadable Chrome trace.
            _, body = http_get(router.port, f"/debug/trace/{request_id}")
            chrome = json.loads(body)
            pids = {e["pid"] for e in chrome["traceEvents"]
                    if e.get("ph") == "X"}
            assert len(pids) >= 2
    finally:
        backend.terminate()


def test_async_job_trace_spans_two_processes(tmp_path):
    backend = spawn_backend(
        extra_args=("--job-store", str(tmp_path / "jobs")))
    try:
        with running_router([backend.url], tracing=True) as router:
            with ReproClient(f"http://127.0.0.1:{router.port}") as client:
                submitted = client.submit_restructure(
                    SAXPY, depth=1, max_nodes=16)
                request_id = client.last_request_id
                client.wait(submitted.job_id, timeout=90)
            spans = _poll_trace(
                router.port, request_id, min_pids=2,
                require_names={"router.handle", "job.submit", "job.run",
                               "job.finish"})
            names = {s["name"] for s in spans}
            assert {"router.handle", "job.submit", "job.run",
                    "job.round", "job.finish"} <= names
            assert len({s["pid"] for s in spans}) >= 2
            assert len({s["trace_id"] for s in spans}) == 1
            # The job runner's root span joins the submit's trace even
            # though it ran later, on another thread, in the shard.
            job_run = next(s for s in spans if s["name"] == "job.run")
            assert job_run["parent_id"] is not None
    finally:
        backend.terminate()


# ----------------------------------------------------------------------
# cluster metrics aggregation


def _predict_total(families) -> float:
    family = families.get("repro_http_requests_total")
    if family is None:
        return 0.0
    return sum(s.value for s in family.samples
               if dict(s.labels).get("endpoint") == "predict")


def _predict_latency_count(families) -> float:
    family = families.get("repro_http_request_seconds")
    if family is None:
        return 0.0
    return sum(s.value for s in family.samples
               if s.name.endswith("_count")
               and dict(s.labels).get("endpoint") == "predict")


def test_cluster_metrics_merge_equals_per_shard_sum():
    with contextlib.ExitStack() as stack:
        servers = [stack.enter_context(running_server()) for _ in range(3)]
        urls = [f"http://127.0.0.1:{s.port}" for s in servers]
        router = stack.enter_context(running_router(urls))
        with ReproClient(f"http://127.0.0.1:{router.port}") as client:
            for index in range(9):
                client.predict(saxpy_variant(index))
        # Requests are observed after their responses go out; wait for
        # all nine to land in the shard registries before scraping.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            shard_texts = [http_get(s.port, "/metrics")[1] for s in servers]
            if sum(_predict_total(parse_exposition(t))
                   for t in shard_texts) == 9.0:
                break
            time.sleep(0.05)
        _, cluster_text = http_get(router.port, "/metrics/cluster")

    cluster = parse_exposition(cluster_text)
    shard_families = [parse_exposition(text) for text in shard_texts]

    assert _predict_total(cluster) == sum(
        _predict_total(f) for f in shard_families) == 9.0
    assert _predict_latency_count(cluster) == sum(
        _predict_latency_count(f) for f in shard_families) == 9.0

    # Every merged sample names its shard; the router's own registry
    # rides along under shard="router".
    predict_shards = {
        dict(s.labels)["shard"]
        for s in cluster["repro_http_requests_total"].samples}
    assert predict_shards <= set(urls)
    router_family = cluster["repro_router_http_requests_total"]
    assert {dict(s.labels)["shard"]
            for s in router_family.samples} == {"router"}

    # Gauges gain synthetic max/min aggregates.
    cache_shards = {dict(s.labels)["shard"]
                    for s in cluster["repro_cache_entries"].samples}
    assert {"max", "min"} <= cache_shards


def _poll_metrics(port: int, needle: str, timeout: float = 10.0) -> str:
    """Scrape /metrics until ``needle`` appears.

    The request that should produce it is observed *after* its response
    bytes go out, so an immediate scrape can race the bookkeeping.
    """
    deadline = time.monotonic() + timeout
    text = ""
    while time.monotonic() < deadline:
        _, text = http_get(port, "/metrics")
        if needle in text:
            return text
        time.sleep(0.05)
    return text


def test_router_metrics_include_slo_gauges():
    tracker = SloTracker({"predict": Objective(p95=10.0, error_ratio=0.5)})
    with running_server() as server:
        url = f"http://127.0.0.1:{server.port}"
        with running_router([url], slo=tracker) as router:
            with ReproClient(f"http://127.0.0.1:{router.port}") as client:
                client.predict(SAXPY)
            text = _poll_metrics(
                router.port, 'repro_slo_requests{endpoint="predict"} 1')
    assert 'repro_slo_requests{endpoint="predict"} 1' in text
    assert ('repro_slo_latency_burn_rate{endpoint="predict",'
            'quantile="p95"}') in text


def test_server_metrics_include_slo_gauges():
    tracker = SloTracker({"*": Objective(p99=10.0)})
    with running_server(slo=tracker) as server:
        with ReproClient(f"http://127.0.0.1:{server.port}") as client:
            client.predict(SAXPY)
        text = _poll_metrics(
            server.port, 'repro_slo_requests{endpoint="predict"} 1')
    assert 'repro_slo_requests{endpoint="predict"} 1' in text
    assert ('repro_slo_latency_burn_rate{endpoint="predict",'
            'quantile="p99"}') in text


# ----------------------------------------------------------------------
# request-id propagation on every hop


def test_router_minted_request_id_reaches_the_shard():
    with running_server() as shard:
        url = f"http://127.0.0.1:{shard.port}"
        with running_router([url], tracing=True) as router:
            request = urllib.request.Request(
                f"http://127.0.0.1:{router.port}/predict",
                data=json.dumps({"source": SAXPY}).encode(),
                headers={"Content-Type": "application/json"})
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 200
                request_id = response.headers["X-Request-Id"]
        assert request_id
        # The shard deposited its trace under the *router's* id --
        # proof the generated id rode the forward hop.
        assert _poll_engine_trace(shard, request_id) is not None


def test_request_id_propagates_across_failover():
    with running_server() as primary_upstream, running_server() as healthy:
        with flaky_proxy(
                f"http://127.0.0.1:{primary_upstream.port}") as flaky:
            healthy_url = f"http://127.0.0.1:{healthy.port}"
            with running_router([flaky.url, healthy_url],
                                tracing=True, retries=2) as router:
                # Find a program whose ring owner is the flaky proxy, so
                # the first attempt fails and the retry hits `healthy`.
                source = None
                for index in range(64):
                    candidate = saxpy_variant(index)
                    key = program_digest(parse_program(candidate))
                    if next(iter(router.ring.preference(key))) == flaky.url:
                        source = candidate
                        break
                assert source is not None, "no variant routed to the proxy"
                flaky.schedule("error")
                request = urllib.request.Request(
                    f"http://127.0.0.1:{router.port}/predict",
                    data=json.dumps({"source": source}).encode(),
                    headers={"Content-Type": "application/json"})
                with urllib.request.urlopen(request, timeout=30) as response:
                    assert response.status == 200
                    request_id = response.headers["X-Request-Id"]
                assert ("/predict", "error") in flaky.log
            # The *failover* hop carried the same id: the healthy shard
            # deposited its trace under it.
            assert _poll_engine_trace(healthy, request_id) is not None


def test_events_relay_carries_request_id_and_stamped_events(tmp_path):
    with running_job_server(tmp_path / "store") as shard:
        url = f"http://127.0.0.1:{shard.port}"
        with running_router([url], tracing=True) as router:
            with ReproClient(f"http://127.0.0.1:{router.port}") as client:
                submitted = client.submit_restructure(
                    SAXPY, depth=1, max_nodes=16)
                submit_rid = client.last_request_id
                follow_rid = "follow-rid-for-relay-test"
                events = list(client.follow(
                    submitted.job_id, request_id=follow_rid))
        assert events and events[-1].get("final")
        # Every event is stamped with the *submitting* request's id and
        # trace id, so a stream consumer can pull the stitched trace.
        for event in events:
            assert event["request_id"] == submit_rid
            assert event["trace_id"]
        # The relay hop forwarded the follow request's id to the shard.
        assert _poll_engine_trace(shard, follow_rid) is not None


# ----------------------------------------------------------------------
# disabled-mode fast path: no tracer, no spans, anywhere


def test_disabled_tracing_constructs_no_tracers_or_spans(
        tmp_path, monkeypatch):
    import repro.obs.tracer as tracer_mod

    counts = {"tracer": 0, "span": 0}
    original_tracer_init = tracer_mod.Tracer.__init__
    original_span_init = tracer_mod.Span.__init__

    def counting_tracer_init(self, *args, **kwargs):
        counts["tracer"] += 1
        original_tracer_init(self, *args, **kwargs)

    def counting_span_init(self, *args, **kwargs):
        counts["span"] += 1
        original_span_init(self, *args, **kwargs)

    monkeypatch.setattr(tracer_mod.Tracer, "__init__", counting_tracer_init)
    monkeypatch.setattr(tracer_mod.Span, "__init__", counting_span_init)

    with running_job_server(tmp_path / "store", tracing=False) as shard:
        url = f"http://127.0.0.1:{shard.port}"
        with running_router([url], tracing=False) as router:
            with ReproClient(f"http://127.0.0.1:{router.port}") as client:
                assert client.predict(SAXPY).cost
                submitted = client.submit_restructure(
                    SAXPY, depth=1, max_nodes=16)
                client.wait(submitted.job_id, timeout=90)

    assert counts == {"tracer": 0, "span": 0}
