"""Batch-aware scheduling: weight classes, chunked light work, split
restructures, and placement-memo telemetry."""

import pytest

from repro.cost import reset_placement_cache
from repro.service import (
    PredictRequest,
    PredictionEngine,
    RestructureRequest,
)
from repro.service.engine import _is_heavy, _Pending, _request_to_dict

MATMUL = """
program mm
  integer n, i, j, k
  real a(n,n), b(n,n), c(n,n)
  do i = 1, n
    do j = 1, n
      do k = 1, n
        c(i,j) = c(i,j) + a(i,k) * b(k,j)
      end do
    end do
  end do
end
"""

SAXPY = """
program saxpy
  integer n, i
  real x(n), y(n), alpha
  do i = 1, n
    y(i) = y(i) + alpha * x(i)
  end do
end
"""


def _restructure_item(beam_width=2, depth=2, max_nodes=60):
    return ("restructure", _request_to_dict(RestructureRequest(
        source=MATMUL, workload={"n": 16}, depth=depth,
        max_nodes=max_nodes, beam_width=beam_width)))


def _predict_item(n):
    return ("predict", _request_to_dict(
        PredictRequest(source=SAXPY, bindings={"n": n})))


@pytest.fixture
def reference():
    """The inline (serial) answer every scheduling mode must reproduce."""
    with PredictionEngine(workers=0) as engine:
        result = engine.handle(*_restructure_item())
    assert "error" not in result
    return result


def test_unknown_scheduling_policy_rejected():
    with pytest.raises(ValueError):
        PredictionEngine(scheduling="fancy")


def test_weight_classes():
    def entry(kind, payload):
        from repro.service.protocol import request_from_dict
        return _Pending(0, kind, dict(payload), "k", False,
                        request_from_dict(kind, payload))

    assert not _is_heavy(entry(*_predict_item(4)))
    assert _is_heavy(entry(*_restructure_item()))
    # A shallow, tightly bounded restructure rides in a light chunk.
    assert not _is_heavy(entry("restructure", {
        "source": SAXPY, "workload": {"n": 8}, "depth": 1, "max_nodes": 20}))
    assert _is_heavy(entry("kernels", {"machine": "power"}))


@pytest.mark.parametrize("scheduling", ["weighted", "naive"])
def test_mixed_batch_matches_inline(scheduling, reference):
    items = [_restructure_item()] + [_predict_item(n) for n in range(1, 7)]
    with PredictionEngine(workers=2, executor="thread",
                          scheduling=scheduling) as engine:
        results = engine.handle_batch(items)
    assert results[0]["sequence"] == reference["sequence"]
    assert results[0]["cost"] == reference["cost"]
    assert results[0]["nodes_expanded"] == reference["nodes_expanded"]
    for result in results[1:]:
        assert "error" not in result
        assert result["cost"] == "3*n + 8"


def test_split_restructure_through_process_pool(reference):
    items = [_restructure_item(), _predict_item(3)]
    with PredictionEngine(workers=2, executor="process",
                          scheduling="weighted") as engine:
        results = engine.handle_batch(items)
    assert results[0]["sequence"] == reference["sequence"]
    assert results[0]["cost"] == reference["cost"]
    assert "error" not in results[1]


def test_light_requests_finish_before_heavy():
    order = []
    items = [_restructure_item()] + [_predict_item(n) for n in range(1, 9)]
    with PredictionEngine(workers=2, executor="thread") as engine:
        engine.handle_batch(items, on_result=lambda i, r: order.append(i))
    assert set(order) == set(range(len(items)))
    # The heavy restructure (index 0) lands last: light chunks are
    # submitted first and the split driver never fills the pool.
    assert order[-1] == 0


def test_task_shape_telemetry():
    items = [_restructure_item()] + [_predict_item(n) for n in range(1, 9)]
    with PredictionEngine(workers=2, executor="thread") as engine:
        engine.handle_batch(items)
        tasks = engine.metrics.counter("repro_engine_tasks_total")
        assert tasks.value(shape="chunk") >= 1
        assert tasks.value(shape="split") == 1
        assert tasks.value(shape="search_round") >= 1
        assert tasks.value(shape="single") == 0


def test_naive_scheduling_uses_single_tasks():
    items = [_predict_item(n) for n in range(1, 5)]
    with PredictionEngine(workers=2, executor="thread",
                          scheduling="naive") as engine:
        engine.handle_batch(items)
        tasks = engine.metrics.counter("repro_engine_tasks_total")
        assert tasks.value(shape="single") == len(items)
        assert tasks.value(shape="chunk") == 0


def test_beam_width_is_part_of_the_cache_key():
    with PredictionEngine(workers=0) as engine:
        narrow = engine.handle(*_restructure_item(beam_width=1))
        wide = engine.handle(*_restructure_item(beam_width=4))
        assert not narrow["cached"]
        assert not wide["cached"]          # different beam -> different key
        assert engine.handle(*_restructure_item(beam_width=4))["cached"]


def test_placement_cache_metrics_exposed():
    from repro.service import engine as engine_mod

    # Cold caches all the way down: a warm IncrementalPredictor would
    # answer the whole search from memory without placing any stream.
    engine_mod._predictors.clear()
    reset_placement_cache()
    with PredictionEngine(workers=0) as engine:
        engine.handle(*_restructure_item())
        counter = engine.metrics.counter(
            "repro_placement_cache_requests_total")
        assert counter.value(result="miss") > 0
        # A search revisits mostly-identical bodies, so hits dominate.
        assert counter.value(result="hit") > counter.value(result="miss")
        engine.export_cache_metrics()
        entries = engine.metrics.gauge("repro_placement_cache_entries")
        assert entries.value() > 0


def test_on_result_fires_for_cache_hits_and_errors():
    seen = {}
    with PredictionEngine(workers=0) as engine:
        engine.handle(*_predict_item(5))
        engine.handle_batch(
            [_predict_item(5), ("predict", {"source": "not fortran ("})],
            on_result=lambda i, r: seen.update({i: r}))
    assert seen[0]["cached"] is True
    assert seen[1]["error"] == "ParseError"
