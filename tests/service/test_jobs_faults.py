"""Event-stream behaviour under transport faults.

A :class:`FlakyBackend` proxy sits between the client and a real
job-enabled backend and injects truncations and connection drops on
the events path only, so submission and status traffic stay healthy
while the stream misbehaves -- the exact failure mode of a shard dying
mid-stream.
"""

import asyncio

import pytest

from repro.service import AsyncReproClient, ReproClient, ServerError
from repro.service.client import TransportError

from .conftest import SAXPY, flaky_proxy, running_job_server


@pytest.fixture
def finished_job(tmp_path):
    """A backend with one completed job; yields ``(backend, job_id)``."""
    with running_job_server(tmp_path / "store", slots=1) as backend:
        with ReproClient(f"http://127.0.0.1:{backend.port}") as client:
            submitted = client.submit_restructure(SAXPY, depth=2)
            final = client.wait(submitted.job_id, timeout=30)
            assert final.status == "done"
        yield backend, submitted.job_id


def events_path(job_id):
    return f"/restructure/jobs/{job_id}/events"


def test_truncated_stream_raises_transport_error(finished_job):
    backend, job_id = finished_job
    with flaky_proxy(f"http://127.0.0.1:{backend.port}",
                     only_paths=(events_path(job_id),)) as proxy:
        proxy.schedule("truncate")
        with ReproClient(proxy.url) as client:
            with pytest.raises(TransportError) as excinfo:
                list(client.iter_events(job_id))
    message = str(excinfo.value).lower()
    assert "event stream" in message or "incomplete" in message
    assert "truncate" in [fault for _, fault in proxy.log]


def test_refused_stream_raises_transport_error(finished_job):
    backend, job_id = finished_job
    with flaky_proxy(f"http://127.0.0.1:{backend.port}",
                     only_paths=(events_path(job_id),)) as proxy:
        proxy.schedule("refuse")
        with ReproClient(proxy.url) as client:
            with pytest.raises(TransportError):
                list(client.iter_events(job_id))


def test_synthetic_500_raises_server_error(finished_job):
    backend, job_id = finished_job
    with flaky_proxy(f"http://127.0.0.1:{backend.port}",
                     only_paths=(events_path(job_id),)) as proxy:
        proxy.schedule("error")
        with ReproClient(proxy.url) as client:
            with pytest.raises(ServerError):
                list(client.iter_events(job_id))


def test_follow_resumes_past_faults_without_duplicates(finished_job):
    backend, job_id = finished_job
    with flaky_proxy(f"http://127.0.0.1:{backend.port}",
                     only_paths=(events_path(job_id),)) as proxy:
        # First attach truncates mid-stream, second is refused outright,
        # third succeeds; follow() must splice the three into one clean
        # sequence via from_round resume.
        proxy.schedule("truncate", "refuse")
        with ReproClient(proxy.url) as client:
            events = list(client.follow(job_id))
            reference = list(client.iter_events(job_id))

    rounds = [e["round"] for e in events if not e.get("final")]
    assert rounds == sorted(set(rounds)), "duplicate or reordered rounds"
    assert events[-1]["final"] is True
    assert sum(1 for e in events if e.get("final")) == 1
    reference_rounds = [e["round"] for e in reference
                        if not e.get("final")]
    assert rounds[-1] == reference_rounds[-1]
    faults = [fault for _, fault in proxy.log]
    assert faults.count("truncate") == 1 and faults.count("refuse") == 1


def test_follow_gives_up_after_retry_budget(finished_job):
    backend, job_id = finished_job
    with flaky_proxy(f"http://127.0.0.1:{backend.port}",
                     only_paths=(events_path(job_id),)) as proxy:
        proxy.schedule(*(["refuse"] * 8))
        with ReproClient(proxy.url) as client:
            with pytest.raises(TransportError):
                list(client.follow(job_id, max_retries=3, poll=0.01))


def test_async_client_stream_and_truncation(finished_job):
    backend, job_id = finished_job

    async def happy():
        async with AsyncReproClient(
                f"http://127.0.0.1:{backend.port}") as client:
            events = []
            async for event in client.iter_events(job_id):
                events.append(event)
            return events

    events = asyncio.run(happy())
    assert events[-1]["final"] is True
    rounds = [e["round"] for e in events if not e.get("final")]
    assert rounds == sorted(set(rounds))

    with flaky_proxy(f"http://127.0.0.1:{backend.port}",
                     only_paths=(events_path(job_id),)) as proxy:

        async def truncated():
            async with AsyncReproClient(proxy.url) as client:
                async for _ in client.iter_events(job_id):
                    pass

        proxy.schedule("truncate")
        with pytest.raises(TransportError):
            asyncio.run(truncated())
