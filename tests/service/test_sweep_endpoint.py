"""The /sweep endpoint: protocol, engine, server, router, clients."""

import http.client
import json

import pytest

from repro.service import (
    AsyncReproClient,
    BadRequestError,
    PredictionEngine,
    ProtocolError,
    ReproClient,
    SweepRequest,
    SweepResponse,
    request_from_dict,
    response_from_dict,
    response_to_dict,
)

from .conftest import SAXPY, http_post, running_router, running_server


def _post_any(port, path, payload):
    """POST that returns (status, body) even for 4xx/5xx responses."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request(
            "POST", path, body=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


# ----------------------------------------------------------------------
# protocol


def test_request_validation():
    request = request_from_dict("sweep", {"source": SAXPY})
    assert isinstance(request, SweepRequest)
    assert request.widths is None
    with pytest.raises(ProtocolError):
        request_from_dict("sweep", {"source": ""})
    with pytest.raises(ProtocolError):
        request_from_dict("sweep", {"source": SAXPY, "widths": []})
    with pytest.raises(ProtocolError):
        request_from_dict("sweep", {"source": SAXPY, "widths": [0]})
    with pytest.raises(ProtocolError):
        request_from_dict("sweep", {"source": SAXPY, "widths": [True]})
    with pytest.raises(ProtocolError):
        request_from_dict("sweep", {"source": SAXPY,
                                    "branch_miss_rate": 1.5})
    with pytest.raises(ProtocolError):
        request_from_dict("sweep", {"source": SAXPY, "bogus": 1})


def test_response_roundtrip():
    engine = PredictionEngine(workers=0, cache_size=8)
    result = engine.handle("sweep", {
        "source": SAXPY, "bindings": {"n": 64}, "widths": [1, 4],
    })
    assert "error" not in result
    response = response_from_dict("sweep", result)
    assert isinstance(response, SweepResponse)
    assert response.widths == (1, 4)
    assert response.points[0].width == 1
    assert response_to_dict(response) == result


# ----------------------------------------------------------------------
# engine


def test_engine_sweep_and_cache():
    engine = PredictionEngine(workers=0, cache_size=8)
    request = SweepRequest(source=SAXPY, widths=[1, 2, 8],
                           bindings={"n": 128})
    first = engine.sweep(request)
    assert first.saturation_width in (1, 2, 8)
    assert [p.width for p in first.points] == [1, 2, 8]
    assert first.instructions > 0
    second = engine.sweep(request)
    assert second.cached is True
    assert second.points == first.points


def test_engine_cache_key_separates_parameters():
    engine = PredictionEngine(workers=0, cache_size=16)
    base = {"source": SAXPY, "bindings": {"n": 32}}
    a = engine.handle("sweep", dict(base))
    b = engine.handle("sweep", {**base, "widths": [1, 2]})
    c = engine.handle("sweep", {**base, "branch_miss_rate": 0.05})
    assert a["cached"] is b["cached"] is c["cached"] is False
    assert {len(a["points"]), len(b["points"])} == {5, 2}
    assert c["points"][-1]["cycles"] > a["points"][-1]["cycles"]


def test_engine_sweep_not_stale_after_recalibration():
    """The symbolic-ladder memo must retire with the machine instance."""
    from repro.calib import (
        SimulatorOracle,
        calibrate_machine,
        register_calibrated,
        result_to_payload,
    )
    from repro.machine import power_machine
    from repro.machine.registry import _FACTORIES

    payload = result_to_payload(
        calibrate_machine(power_machine(), SimulatorOracle(power_machine()),
                          name="power-sweep-recal"))
    name = register_calibrated(payload)
    try:
        engine = PredictionEngine(workers=0, cache_size=32)
        request = {"source": SAXPY, "machine": name,
                   "bindings": {"n": 80}, "widths": [1, 4]}
        first = engine.handle("sweep", dict(request))
        assert "error" not in first
        # A second binding warms the symbolic memo on the hot path.
        engine.handle("sweep", {**request, "bindings": {"n": 81}})

        # Retrain: fpu ops get slower, same machine name.
        retrained = dict(payload)
        retrained["table"] = {
            op: ({**spec, "costs": [
                {**c, "noncoverable": c["noncoverable"] + 2}
                for c in spec["costs"]
            ]} if op.startswith("fpu") else spec)
            for op, spec in payload["table"].items()
        }
        register_calibrated(retrained)
        fresh = engine.handle("sweep", dict(request))
        assert fresh["cached"] is False
        assert fresh["points"][-1]["placement_cycles"] > \
            first["points"][-1]["placement_cycles"]
        assert fresh["points"][-1]["fingerprint"] != \
            first["points"][-1]["fingerprint"]
    finally:
        _FACTORIES.pop(name, None)


def test_engine_unbound_variable_is_client_error():
    engine = PredictionEngine(workers=0, cache_size=8)
    result = engine.handle("sweep", {"source": SAXPY})
    assert result["status"] == 400


# ----------------------------------------------------------------------
# server + clients


def test_sweep_over_http(server):
    port = server.server_address[1]
    status, body = http_post(port, "/sweep", {
        "source": SAXPY, "bindings": {"n": 100}, "widths": [1, 2, 4],
    })
    assert status == 200
    assert [p["width"] for p in body["points"]] == [1, 2, 4]
    assert body["points"][0]["ipc"] == 1.0

    status, body = _post_any(port, "/sweep", {"source": "garbage("})
    assert status == 400
    assert "error" in body


def test_sync_client_sweep(server):
    port = server.server_address[1]
    with ReproClient(f"http://127.0.0.1:{port}") as client:
        response = client.sweep(SAXPY, bindings={"n": 100},
                                widths=[2, 8], branch_miss_rate=0.01)
        assert isinstance(response, SweepResponse)
        assert response.widths == (2, 8)
        assert response.points[0].penalty_cycles > 0
        with pytest.raises(BadRequestError):
            client.sweep(SAXPY, widths=[99])


def test_async_client_sweep(server):
    import asyncio

    port = server.server_address[1]

    async def go():
        async with AsyncReproClient(f"http://127.0.0.1:{port}") as client:
            return await client.sweep(SAXPY, bindings={"n": 100})

    response = asyncio.run(go())
    assert response.saturation_width in response.widths


def test_sweep_through_router():
    with running_server() as a, running_server() as b:
        urls = [f"http://127.0.0.1:{s.server_address[1]}" for s in (a, b)]
        with running_router(urls) as router:
            port = router.server_address[1]
            with ReproClient(f"http://127.0.0.1:{port}") as client:
                first = client.sweep(SAXPY, bindings={"n": 100})
                assert first.cached is False
                # Digest affinity: the repeat lands on the same shard
                # and hits its cache.
                again = client.sweep(SAXPY, bindings={"n": 100})
                assert again.cached is True
                assert again.points == first.points


def test_sweep_metrics_exported(server):
    port = server.server_address[1]
    http_post(port, "/sweep", {"source": SAXPY, "bindings": {"n": 10}})
    with ReproClient(f"http://127.0.0.1:{port}") as client:
        text = client.metrics()
    assert "repro_sweep_runs_total" in text
    assert "repro_calib_runs_total" in text
    assert 'repro_engine_requests_total{kind="sweep",outcome="computed"} 1' \
        in text
