"""Wire surface of the async-job endpoints plus the JSON error envelope
for wrong methods (405) and handler-machinery errors (501).

Raw ``http.client`` is used throughout: these tests assert framing
(SSE fields, chunked ndjson, Allow headers), not just payloads.
"""

import http.client
import json
import time

import pytest

from repro.service import ReproClient

from .conftest import SAXPY, http_post, running_job_server, running_server


def raw_request(port, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        connection.request(method, path, body=payload,
                           headers=headers or {})
        response = connection.getresponse()
        return (response.status,
                {k.lower(): v for k, v in response.getheaders()},
                response.read())
    finally:
        connection.close()


def read_sse_frames(port, path):
    """Parse a full SSE stream into ``[(id, event, data_dict), ...]``."""
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        assert response.status == 200
        assert response.headers["Content-Type"] == "text/event-stream"
        frames, current = [], {}
        while True:
            line = response.readline()
            if not line:
                break
            text = line.decode().rstrip("\r\n")
            if not text:
                if "data" in current:
                    frames.append((current.get("id"), current.get("event"),
                                   json.loads(current["data"])))
                current = {}
                continue
            name, _, value = text.partition(":")
            current[name] = value.strip()
        return frames
    finally:
        connection.close()


@pytest.fixture
def job_server(tmp_path):
    with running_job_server(tmp_path / "jobs", slots=1) as instance:
        yield instance


def submit(port, payload):
    status, _, body = raw_request(port, "POST", "/restructure/jobs", payload)
    return status, json.loads(body)


def wait_done(port, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, _, body = raw_request(
            port, "GET", f"/restructure/jobs/{job_id}")
        record = json.loads(body)
        if record.get("status") in ("done", "error", "cancelled"):
            return record
        time.sleep(0.02)
    raise AssertionError("job never reached a terminal status")


# ----------------------------------------------------------------------
# happy path


def test_submit_returns_202_then_streams_and_completes(job_server):
    port = job_server.port
    status, record = submit(port, {"source": SAXPY, "depth": 2})
    assert status == 202
    assert record["status"] == "queued"
    job_id = record["job_id"]
    assert record["digest"] == job_id.split(".")[0]

    frames = read_sse_frames(port, f"/restructure/jobs/{job_id}/events")
    assert frames, "stream delivered nothing"
    kinds = [event for _, event, _ in frames]
    assert all(kind == "round" for kind in kinds[:-1])
    assert kinds[-1] == "done"
    rounds = [data["round"] for _, _, data in frames[:-1]]
    assert rounds == sorted(set(rounds))
    assert all(data["best_cost"] for _, _, data in frames[:-1])
    # The SSE id field carries the round for Last-Event-ID style resume.
    assert [int(i) for i, _, _ in frames[:-1]] == rounds

    final = wait_done(port, job_id)
    assert final["status"] == "done"
    assert final["result"]["sequence"]
    assert final["rounds"] == rounds[-1]

    # The job warmed the shard's result cache: the synchronous endpoint
    # answers instantly with the identical result.
    status, sync = http_post(port, "/restructure",
                             {"source": SAXPY, "depth": 2})
    assert status == 200
    assert sync["cached"] is True
    assert sync["sequence"] == final["result"]["sequence"]


def test_events_from_round_replays_no_duplicates(job_server):
    port = job_server.port
    _, record = submit(port, {"source": SAXPY, "depth": 2})
    job_id = record["job_id"]
    wait_done(port, job_id)

    full = read_sse_frames(port, f"/restructure/jobs/{job_id}/events")
    all_rounds = [d["round"] for _, _, d in full if not d.get("final")]
    assert len(all_rounds) >= 2

    cut = all_rounds[0]
    resumed = read_sse_frames(
        port, f"/restructure/jobs/{job_id}/events?from_round={cut}")
    resumed_rounds = [d["round"] for _, _, d in resumed
                      if not d.get("final")]
    assert resumed_rounds == [r for r in all_rounds if r > cut]
    assert resumed[-1][2].get("final") is True

    # from_round past the end: just the final event.
    tail = read_sse_frames(
        port,
        f"/restructure/jobs/{job_id}/events?from_round={all_rounds[-1]}")
    assert len(tail) == 1 and tail[0][2]["final"] is True


def test_events_ndjson_is_chunked_jsonl(job_server):
    port = job_server.port
    _, record = submit(port, {"source": SAXPY, "depth": 2})
    job_id = record["job_id"]
    wait_done(port, job_id)

    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        connection.request(
            "GET", f"/restructure/jobs/{job_id}/events?format=ndjson")
        response = connection.getresponse()
        assert response.status == 200
        assert response.headers["Content-Type"] == "application/x-ndjson"
        assert response.headers.get("Transfer-Encoding") == "chunked"
        events = [json.loads(line) for line in response.read().splitlines()]
    finally:
        connection.close()
    assert events[-1]["final"] is True
    rounds = [e["round"] for e in events if not e.get("final")]
    assert rounds == sorted(set(rounds))


def test_cancel_via_delete(job_server):
    port = job_server.port
    # A heavier search so cancel lands before completion (if the race
    # is lost the job is already done -- also a valid cancel response).
    _, record = submit(port, {"source": SAXPY, "depth": 6,
                              "max_nodes": 4000})
    job_id = record["job_id"]
    status, _, body = raw_request(port, "DELETE",
                                  f"/restructure/jobs/{job_id}")
    assert status == 200
    cancelled = json.loads(body)
    assert cancelled["job_id"] == job_id
    final = wait_done(port, job_id)
    assert final["status"] in ("cancelled", "done")


def test_job_error_surfaces_envelope(job_server):
    port = job_server.port
    status, record = submit(port, {"source": "this is not fortran ("})
    assert status == 400
    assert record["error"]

    status, _, body = raw_request(port, "GET", "/restructure/jobs/nope.404")
    assert status == 404
    assert json.loads(body)["error"] == "NotFound"

    status, _, body = raw_request(port, "GET",
                                  "/restructure/jobs/nope.404/events")
    assert status == 404

    status, _, body = raw_request(port, "DELETE", "/restructure/jobs/nope.1")
    assert status == 404


def test_jobs_disabled_returns_503():
    with running_server() as instance:
        status, _, body = raw_request(instance.port, "POST",
                                      "/restructure/jobs",
                                      {"source": SAXPY})
        assert status == 503
        envelope = json.loads(body)
        assert envelope["error"] == "JobsUnavailable"
        assert "--job-store" in envelope["message"]
        status, _, _ = raw_request(instance.port, "GET",
                                   "/restructure/jobs/x.1")
        assert status == 503


def test_client_wraps_the_job_surface(job_server):
    base = f"http://127.0.0.1:{job_server.port}"
    with ReproClient(base) as client:
        submitted = client.submit_restructure(SAXPY, depth=2)
        assert submitted.status == "queued"
        final = client.wait(submitted.job_id, timeout=30)
        assert final.status == "done"
        assert final.result["sequence"]

        events = list(client.iter_events(submitted.job_id))
        assert events[-1]["final"] is True
        rounds = [e["round"] for e in events if not e.get("final")]
        assert rounds == sorted(set(rounds))

        followed = list(client.follow(submitted.job_id))
        assert [e.get("round") for e in followed] == \
            [e.get("round") for e in events]


# ----------------------------------------------------------------------
# wrong methods -> JSON envelopes (never the stdlib HTML page)


@pytest.mark.parametrize("method,path,allow", [
    ("DELETE", "/predict", "POST"),
    ("PUT", "/restructure", "POST"),
    ("PATCH", "/compare", "POST"),
    ("DELETE", "/kernels", "GET"),
    ("HEAD", "/healthz", "GET"),
    ("GET", "/predict", "POST"),
    ("DELETE", "/restructure/jobs", "POST"),
])
def test_wrong_method_is_json_405_with_allow(server, method, path, allow):
    status, headers, body = raw_request(server.port, method, path)
    assert status == 405
    assert headers["content-type"] == "application/json"
    assert headers["allow"] == allow
    envelope = json.loads(body) if method != "HEAD" else {
        "error": "MethodNotAllowed", "status": 405}
    assert envelope["error"] == "MethodNotAllowed"
    assert envelope["status"] == 405


def test_post_to_job_id_path_is_405(job_server):
    status, headers, body = raw_request(
        job_server.port, "POST", "/restructure/jobs/some.job",
        {"x": 1})
    assert status == 405
    assert headers["allow"] == "GET, DELETE"
    status, headers, _ = raw_request(
        job_server.port, "POST", "/restructure/jobs/some.job/events",
        {"x": 1})
    assert status == 405
    assert headers["allow"] == "GET"


def test_unknown_method_is_json_not_html(server):
    status, headers, body = raw_request(server.port, "FROB", "/predict")
    assert status == 501
    assert headers["content-type"] == "application/json"
    envelope = json.loads(body)
    assert envelope["status"] == 501
    assert "<html" not in body.decode().lower()


def test_wrong_method_on_unknown_path_is_404(server):
    status, _, body = raw_request(server.port, "DELETE", "/nope")
    assert status == 404
    assert json.loads(body)["error"] == "NotFound"
