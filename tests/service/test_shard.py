"""Unit tests for the consistent-hash ring."""

import pytest

from repro.service.shard import HashRing, ring_position


def test_empty_ring_has_no_owner():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.owner("abc")
    assert list(ring.preference("abc")) == []
    assert ring.ownership() == {}


def test_single_node_owns_everything():
    ring = HashRing(["only"])
    assert ring.owner("x") == "only"
    assert ring.ownership() == {"only": 1.0}


def test_add_is_idempotent_and_remove_unknown_raises():
    ring = HashRing(["a", "b"])
    ring.add("a")
    assert len(ring) == 2
    with pytest.raises(KeyError):
        ring.remove("c")
    ring.remove("b")
    assert ring.nodes == frozenset({"a"})


def test_rejects_bad_arguments():
    with pytest.raises(ValueError):
        HashRing(vnodes=0)
    with pytest.raises(ValueError):
        HashRing([""])


def test_ownership_sums_to_one_and_is_roughly_balanced():
    ring = HashRing([f"node-{i}" for i in range(4)], vnodes=128)
    ownership = ring.ownership()
    assert abs(sum(ownership.values()) - 1.0) < 1e-12
    for share in ownership.values():
        # 128 vnodes keep every share within a factor ~2 of fair.
        assert 0.25 / 2 < share < 0.25 * 2


def test_preference_yields_each_node_once_owner_first():
    ring = HashRing(["a", "b", "c", "d"])
    order = list(ring.preference("some-digest"))
    assert sorted(order) == ["a", "b", "c", "d"]
    assert order[0] == ring.owner("some-digest")


def test_preference_alive_filter_skips_without_reordering():
    ring = HashRing(["a", "b", "c"])
    full = list(ring.preference("key-1"))
    filtered = list(ring.preference("key-1",
                                    alive=lambda n: n != full[0]))
    assert filtered == full[1:]


def test_ring_position_is_pure_sha256():
    # Independent of PYTHONHASHSEED and stable across releases: pin one
    # value so an accidental change to the hash scheme (which would
    # silently remap every deployment's keyspace) fails loudly.
    assert ring_position("node#0") == int.from_bytes(
        __import__("hashlib").sha256(b"node#0").digest()[:8], "big")


def test_owner_matches_preference_under_churn():
    ring = HashRing(["a", "b", "c", "d", "e"])
    keys = [f"digest-{i}" for i in range(100)]
    before = {k: ring.owner(k) for k in keys}
    ring.remove("c")
    for key in keys:
        assert next(iter(ring.preference(key))) == ring.owner(key)
        if before[key] != "c":
            assert ring.owner(key) == before[key]
