"""Fault-injection tests for the shard router.

Every scenario runs real sockets: backends are genuine
:class:`PredictionServer` instances, faults come from the
:class:`FlakyBackend` reverse proxy in conftest, and the assertions are
the ISSUE acceptance criteria -- the client sees zero errors while the
router absorbs refusals, 500s, truncated bodies, and latency spikes.
"""

import json
import time

import pytest

from repro.ir.digest import program_digest
from repro.ir.parser import parse_program
from repro.service import PredictionEngine, ReproClient, make_server
from repro.service.shard import HashRing

from .conftest import (
    dead_port,
    http_get,
    http_post,
    metrics_values,
    running_router,
    running_server,
    saxpy_variant,
)


def variant_owned_by(backend_urls, owner_url, *, vnodes=64):
    """A program whose digest the ring assigns to ``owner_url``.

    Routing is content-addressed, so a fault test must pick a program
    that actually lands on the faulty shard -- this walks the variant
    family until the ring (same vnode count as the router) agrees.
    """
    ring = HashRing(backend_urls, vnodes=vnodes)
    for index in range(512):
        source = saxpy_variant(index)
        key = program_digest(parse_program(source))
        if ring.owner(key) == owner_url:
            return source
    raise AssertionError(f"no variant owned by {owner_url}")


def _predict_ok(router, source):
    status, body = http_post(router.port, "/predict", {"source": source})
    assert status == 200, body
    assert "error" not in body, body
    return body


def _post_any(port, path, payload):
    """POST that returns (status, body) even for 4xx/5xx responses."""
    import http.client

    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        connection.request(
            "POST", path, body=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


SAXPY_BROKEN = "program nope\n  do i = 1,\nend\n"


def router_metrics(router):
    _, text = http_get(router.port, "/metrics")
    return metrics_values(text)


# ----------------------------------------------------------------------
# failover: the faulted shard never becomes a client-visible error


@pytest.mark.parametrize("fault", ["refuse", "error", "truncate"])
def test_failover_hides_single_shard_fault(fault, server, flaky_backend):
    proxy = flaky_backend(f"http://127.0.0.1:{server.port}")
    with running_server() as healthy:
        backends = [proxy.url, f"http://127.0.0.1:{healthy.port}"]
        source = variant_owned_by(backends, proxy.url)
        with running_router(backends) as router:
            proxy.schedule(fault)
            body = _predict_ok(router, source)
            assert body["cost"] == "3*n + 10"  # variants add one op

            metrics = router_metrics(router)
            assert metrics["repro_router_failovers_total"] >= 1
            bad = ("server_error" if fault == "error"
                   else "connection_error")
            assert metrics[
                'repro_router_forwards_total'
                f'{{outcome="{bad}",shard="{proxy.url}"}}'] == 1
            # The answer came from the healthy replica.
            healthy_url = backends[1]
            assert metrics[
                'repro_router_forwards_total'
                f'{{outcome="ok",shard="{healthy_url}"}}'] >= 1


def test_latency_spike_times_out_and_fails_over(server, flaky_backend):
    proxy = flaky_backend(f"http://127.0.0.1:{server.port}")
    with running_server() as healthy:
        backends = [proxy.url, f"http://127.0.0.1:{healthy.port}"]
        source = variant_owned_by(backends, proxy.url)
        with running_router(backends, forward_timeout=0.5) as router:
            proxy.schedule("slow:3")
            started = time.monotonic()
            _predict_ok(router, source)
            # Bounded by the forward timeout, not the 3s spike.
            assert time.monotonic() - started < 2.5

            metrics = router_metrics(router)
            assert metrics[
                'repro_router_forwards_total'
                f'{{outcome="timeout",shard="{proxy.url}"}}'] == 1
            assert metrics["repro_router_failovers_total"] >= 1


def test_burst_of_faults_is_fully_absorbed(server, flaky_backend):
    """A mixed fault burst across many requests: zero client errors."""
    proxy = flaky_backend(f"http://127.0.0.1:{server.port}")
    with running_server() as healthy:
        backends = [proxy.url, f"http://127.0.0.1:{healthy.port}"]
        with running_router(backends) as router:
            proxy.schedule("refuse", "error", "truncate",
                           "refuse", "error")
            with ReproClient(f"http://127.0.0.1:{router.port}") as client:
                for index in range(12):
                    response = client.predict(saxpy_variant(index))
                    assert response.cost  # typed success, never an error


def test_batch_completes_despite_faulty_shard(server, flaky_backend):
    proxy = flaky_backend(f"http://127.0.0.1:{server.port}")
    with running_server() as healthy:
        backends = [proxy.url, f"http://127.0.0.1:{healthy.port}"]
        with running_router(backends) as router:
            # Enough faults to kill the whole sub-batch forward *and*
            # the first per-item failover attempt at the flaky shard.
            proxy.schedule(*["refuse"] * 8)
            batch = [{"source": saxpy_variant(i)} for i in range(10)]
            status, results = http_post(router.port, "/predict", batch)
            assert status == 200
            assert len(results) == 10
            assert all("error" not in r for r in results), results


# ----------------------------------------------------------------------
# retry budget and error pass-through


def test_retry_budget_is_bounded(server, flaky_backend):
    """retries=0 and a failing owner: the 5xx surfaces to the client."""
    proxy = flaky_backend(f"http://127.0.0.1:{server.port}")
    with running_router([proxy.url], retries=0,
                        local_fallback=False) as router:
        proxy.schedule("error")
        status, body = _post_any(router.port, "/predict",
                                 {"source": saxpy_variant(0)})
        assert status == 500
        assert body["error"] == "InjectedFault"
        metrics = router_metrics(router)
        assert metrics["repro_router_failovers_total"] == 0  # never bumped


def test_client_errors_pass_through_without_failover(server):
    """A 4xx is deterministic: no retry, no failover, same envelope."""
    with running_server() as other:
        backends = [f"http://127.0.0.1:{server.port}",
                    f"http://127.0.0.1:{other.port}"]
        with running_router(backends) as router:
            status, body = _post_any(router.port, "/predict",
                                     {"source": SAXPY_BROKEN})
            assert status == 400
            assert body["error"] in ("ParseError", "LexError")
            metrics = router_metrics(router)
            assert metrics["repro_router_failovers_total"] == 0


# ----------------------------------------------------------------------
# degraded mode: every backend down


def test_all_backends_down_serves_inline():
    backends = [f"http://127.0.0.1:{dead_port()}",
                f"http://127.0.0.1:{dead_port()}"]
    with running_router(backends, retries=1, forward_timeout=0.5) as router:
        body = _predict_ok(router, saxpy_variant(3))
        assert body["cost"] == "3*n + 10"  # variants add one op

        status, health = http_get(router.port, "/healthz")
        assert status == 200
        report = json.loads(health)
        assert report["status"] == "degraded"
        assert report["live_backends"] == 0

        metrics = router_metrics(router)
        assert metrics['repro_router_degraded_total{kind="predict"}'] == 1


def test_all_backends_down_without_fallback_is_503():
    backends = [f"http://127.0.0.1:{dead_port()}"]
    with running_router(backends, retries=0, forward_timeout=0.5,
                        local_fallback=False) as router:
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"http://127.0.0.1:{router.port}/predict",
            data=json.dumps({"source": saxpy_variant(0)}).encode(),
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 503

        status, health = http_get(router.port, "/healthz")
        assert status == 200
        assert json.loads(health)["status"] == "down"


# ----------------------------------------------------------------------
# health: passive marking and probe-driven recovery


def test_dead_backend_is_marked_down_then_recovers():
    with running_server() as stable:
        with running_server() as doomed:
            doomed_port = doomed.port
            backends = [f"http://127.0.0.1:{stable.port}",
                        f"http://127.0.0.1:{doomed_port}"]
            doomed_url = backends[1]
            source = variant_owned_by(backends, doomed_url)

            with running_router(backends, forward_timeout=1.0) as router:
                _predict_ok(router, source)          # served by its owner
                doomed.stop()

                # Passive path: the very next forward fails over and
                # marks the backend down.  A probe that sampled the
                # backend while it was still alive may land a stale
                # success just after, so the down state converges
                # within one probe round rather than instantly.
                _predict_ok(router, source)
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    _, health = http_get(router.port, "/healthz")
                    report = json.loads(health)
                    if not report["backends"][doomed_url]["healthy"]:
                        break
                    time.sleep(0.05)
                assert report["backends"][doomed_url]["healthy"] is False
                assert report["status"] == "ok"      # one live shard left

                # Recovery: resurrect the backend on the same port
                # (SO_REUSEADDR) and let the 0.2s probe loop find it.
                engine = PredictionEngine(workers=0, cache_size=8)
                revived = make_server(engine, host="127.0.0.1",
                                      port=doomed_port)
                revived.start_background()
                try:
                    deadline = time.monotonic() + 5
                    while time.monotonic() < deadline:
                        _, health = http_get(router.port, "/healthz")
                        report = json.loads(health)
                        if report["backends"][doomed_url]["healthy"]:
                            break
                        time.sleep(0.05)
                    assert report["backends"][doomed_url]["healthy"] is True
                    # And traffic for its keys goes home again.
                    _predict_ok(router, source)
                    metrics = router_metrics(router)
                    assert metrics[
                        'repro_router_forwards_total'
                        f'{{outcome="ok",shard="{doomed_url}"}}'] >= 2
                finally:
                    revived.stop()


def test_half_dead_backend_flaps_down_then_probe_restores_it(
        server, flaky_backend):
    """Data requests fail but /healthz still answers: the passive mark
    takes the shard out, the active probe (which the proxy lets through)
    puts it back -- the loop the ISSUE calls 'passive failure marking
    plus /healthz polling'."""
    proxy = flaky_backend(f"http://127.0.0.1:{server.port}")
    with running_server() as healthy:
        backends = [proxy.url, f"http://127.0.0.1:{healthy.port}"]
        source = variant_owned_by(backends, proxy.url)
        with running_router(backends) as router:
            proxy.schedule("refuse")
            _predict_ok(router, source)               # failover, mark down

            deadline = time.monotonic() + 5
            recovered = False
            while time.monotonic() < deadline:
                _, health = http_get(router.port, "/healthz")
                if json.loads(health)["backends"][proxy.url]["healthy"]:
                    recovered = True
                    break
                time.sleep(0.05)
            assert recovered                           # probe marked it up
            _predict_ok(router, source)                # traffic returns
