"""Strict wire-schema behaviour of the service protocol."""

from fractions import Fraction

import pytest

from repro.service.protocol import (
    CompareRequest,
    KernelRow,
    KernelsResponse,
    PredictRequest,
    PredictResponse,
    ProtocolError,
    RestructureRequest,
    error_envelope,
    parse_bindings,
    parse_domain,
    request_from_dict,
    response_from_dict,
    response_to_dict,
)

SAXPY = "program p\n  integer n, i\n  real x(n)\n  do i = 1, n\n    x(i) = x(i) + 1.0\n  end do\nend\n"


def test_predict_request_roundtrip():
    request = request_from_dict("predict", {
        "source": SAXPY, "machine": "power", "bindings": {"n": 100},
    })
    assert isinstance(request, PredictRequest)
    assert request.backend == "aggressive"
    assert parse_bindings(request.bindings) == {"n": Fraction(100)}


def test_unknown_field_rejected():
    with pytest.raises(ProtocolError, match="unknown field"):
        request_from_dict("predict", {"source": SAXPY, "sauce": 1})


def test_missing_required_field_rejected():
    with pytest.raises(ProtocolError, match="missing field"):
        request_from_dict("predict", {"machine": "power"})


def test_non_object_body_rejected():
    with pytest.raises(ProtocolError, match="JSON object"):
        request_from_dict("predict", ["not", "an", "object"])


def test_unknown_kind_rejected():
    with pytest.raises(ProtocolError, match="unknown request kind"):
        request_from_dict("frobnicate", {})


def test_bad_backend_rejected():
    with pytest.raises(ProtocolError, match="backend"):
        request_from_dict("predict", {"source": SAXPY, "backend": "gcc"})


def test_bad_bindings_rejected():
    with pytest.raises(ProtocolError, match="bad binding"):
        request_from_dict("predict",
                          {"source": SAXPY, "bindings": {"n": "not-a-number"}})


def test_compare_domain_parsing():
    request = request_from_dict("compare", {
        "first": SAXPY, "second": SAXPY, "domain": {"n": [1, 1000]},
    })
    assert isinstance(request, CompareRequest)
    domain = parse_domain(request.domain)
    assert domain["n"].lo == 1 and domain["n"].hi == 1000


def test_bad_domain_rejected():
    with pytest.raises(ProtocolError, match="lo, hi"):
        request_from_dict("compare",
                          {"first": SAXPY, "second": SAXPY,
                           "domain": {"n": "1:1000"}})


def test_restructure_bounds_checked():
    with pytest.raises(ProtocolError, match="depth"):
        request_from_dict("restructure", {"source": SAXPY, "depth": 99})
    with pytest.raises(ProtocolError, match="max_nodes"):
        request_from_dict("restructure", {"source": SAXPY, "max_nodes": 0})
    request = request_from_dict("restructure", {"source": SAXPY})
    assert isinstance(request, RestructureRequest)
    assert request.depth == 2


def test_response_dict_roundtrip():
    response = PredictResponse(
        cost="3*n + 8", digest="d" * 64, machine="power",
        backend="aggressive", variables=("n",), cycles="308",
    )
    data = response_to_dict(response)
    assert data["cost"] == "3*n + 8" and data["cached"] is False
    rebuilt = response_from_dict("predict", data)
    assert rebuilt == response


def test_kernels_response_roundtrip():
    response = KernelsResponse(
        machine="power",
        rows=(KernelRow("f1", 11, 9, 22.22),),
    )
    data = response_to_dict(response)
    assert data["rows"][0]["kernel"] == "f1"
    rebuilt = response_from_dict("kernels", data)
    assert rebuilt.rows[0].predicted == 11


def test_error_envelope_shape():
    envelope = error_envelope(ValueError("boom"), status=400)
    assert envelope == {"error": "ValueError", "message": "boom",
                        "status": 400}
