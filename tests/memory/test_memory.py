"""Tests for the cache-line counting model vs the reference simulator."""

from fractions import Fraction

import pytest

from repro.ir import parse_program, SymbolTable
from repro.machine import power_machine
from repro.memory import (
    MemoryCostModel,
    SetAssociativeCache,
    analyze_reference,
    collect_references,
    count_nest_lines,
    pages_touched,
    simulate_nest_misses,
    tlb_cost,
)
from repro.symbolic import PerfExpr


def _setup(src):
    prog = parse_program(src)
    return prog.body[0], SymbolTable.from_program(prog), power_machine()


STREAM = """
program t
  integer n, i
  real a(n), b(n)
  do i = 1, n
    a(i) = b(i) + 1.0
  end do
end
"""


def test_cache_basic_lru():
    machine = power_machine()
    cache = SetAssociativeCache(machine.memory)
    assert not cache.access(0)      # miss
    assert cache.access(4)          # same 64-byte line: hit
    assert cache.access(0)
    assert not cache.access(64)     # next line: miss
    assert cache.misses == 2 and cache.hits == 2


def test_cache_eviction():
    machine = power_machine()
    geometry = machine.memory
    cache = SetAssociativeCache(geometry)
    # Touch (associativity + 1) lines mapping to the same set.
    stride = geometry.cache_line_bytes * cache.sets
    for k in range(geometry.cache_associativity + 1):
        cache.access(k * stride)
    assert not cache.access(0)  # evicted


def test_stream_lines_spatial_locality():
    loop, symtab, machine = _setup(STREAM)
    model = count_nest_lines(loop, symtab, machine.memory)
    # 4-byte reals, 64-byte lines: n/16 lines per array.
    lines = model.total_lines()
    assert lines.evaluate({"n": 160}) == 20


def test_stream_model_matches_simulator():
    loop, symtab, machine = _setup(STREAM)
    n = 256
    misses, total = simulate_nest_misses(
        loop, symtab, machine.memory, {"n": n}, {"a": (n,), "b": (n,)}
    )
    model = count_nest_lines(loop, symtab, machine.memory)
    predicted = model.total_lines().evaluate({"n": n})
    assert abs(float(predicted) - misses) / misses < 0.1
    assert total == 2 * n


def test_column_vs_row_traversal():
    """Once the cache is too small to carry lines across the inner loop,
    row-major traversal of a Fortran array touches 16x more lines."""
    from repro.machine import MemoryGeometry

    small = MemoryGeometry(cache_size_bytes=4096, cache_line_bytes=64)
    # Concrete bounds: the capacity check needs numeric footprints
    # (symbolic bounds stay optimistic cold-miss, by design).
    col_src = """
program t
  integer i, j
  real a(256,256)
  do j = 1, 256
    do i = 1, 256
      a(i,j) = 1.0
    end do
  end do
end
"""
    row_src = col_src.replace("a(i,j)", "a(j,i)")
    col_loop, symtab, _ = _setup(col_src)
    row_loop, symtab2, _ = _setup(row_src)
    col = count_nest_lines(col_loop, symtab, small)
    row = count_nest_lines(row_loop, symtab2, small)
    col_lines = col.total_lines().evaluate({})
    row_lines = row.total_lines().evaluate({})
    assert col_lines < row_lines
    assert row_lines / col_lines >= 4


def test_row_traversal_simulator_agrees_directionally():
    from repro.machine import MemoryGeometry

    small = MemoryGeometry(
        cache_size_bytes=4096, cache_line_bytes=64, cache_associativity=4
    )
    row_src = """
program t
  integer i, j
  real a(256,256)
  do j = 1, 256
    do i = 1, 256
      a(j,i) = 1.0
    end do
  end do
end
"""
    loop, symtab, _ = _setup(row_src)
    n = 256
    misses, _ = simulate_nest_misses(
        loop, symtab, small, {}, {"a": (n, n)}
    )
    # Reuse distance exceeds the 4 KiB cache: nearly every access misses.
    assert misses > n * n / 16 * 4
    model = count_nest_lines(loop, symtab, small)
    predicted = model.total_lines().evaluate({})
    assert abs(float(predicted) - misses) / misses < 0.2


def test_invariant_reference_counts_once():
    src = """
program t
  integer n, i
  real a(n), x(10)
  do i = 1, n
    a(i) = a(i) + x(3)
  end do
end
"""
    loop, symtab, machine = _setup(src)
    model = count_nest_lines(loop, symtab, machine.memory)
    x_ref = next(r for r in model.refs if r.name == "x")
    assert x_ref.lines.evaluate({"n": 10000}) == 1


def test_capacity_spill_detected_for_concrete_large_footprint():
    src = """
program t
  integer i, j
  real b(1048576)
  do j = 1, 8
    do i = 1, 1048576
      b(i) = b(i) + 1.0
    end do
  end do
end
"""
    loop, symtab, machine = _setup(src)
    model = count_nest_lines(loop, symtab, machine.memory)
    b_ref = model.refs[0]
    assert b_ref.capacity_spill
    # 4 MiB footprint >> 64 KiB cache: every outer iteration refetches.
    expected = 8 * 1048576 // 16
    assert b_ref.lines.evaluate({}) == expected


def test_reference_behavior_classification():
    src = """
program t
  integer n, i, j
  real a(n,n)
  do i = 1, n
    do j = 1, n
      a(i,j) = a(j,i) + 1.0
    end do
  end do
end
"""
    loop, symtab, _ = _setup(src)
    refs = collect_references(loop.body)
    assert len(refs) == 2
    b1 = analyze_reference(refs[0], symtab, ("i", "j"))
    level_j = b1.behavior_at("j")
    assert level_j.moves
    aji = next(r for r in refs if str(r) == "a(j, i)")
    b2 = analyze_reference(aji, symtab, ("i", "j"))
    assert b2.behavior_at("j").contiguous_stride == 1


def test_memory_cost_model_facade():
    loop, symtab, machine = _setup(STREAM)
    model = MemoryCostModel(machine)
    cost = model.loop_cost(loop, symtab)
    assert "n" in cost.poly.variables()
    value = cost.evaluate({"n": 1600})
    # 200 lines * 12 cycles = 2400 plus TLB terms.
    assert value >= 2400


def test_tlb_and_pages():
    machine = power_machine()
    footprint = PerfExpr.const(machine.memory.page_bytes * 10)
    assert pages_touched(footprint, machine.memory).constant_value() == 10
    cost = tlb_cost(footprint, machine.memory)
    assert cost.constant_value() == 10 * machine.memory.tlb_miss_cycles


def test_page_fault_cost_resident_fraction():
    from repro.memory import page_fault_cost

    machine = power_machine()
    footprint = PerfExpr.const(machine.memory.page_bytes * 4)
    none_resident = page_fault_cost(footprint, machine.memory, Fraction(0))
    all_resident = page_fault_cost(footprint, machine.memory, Fraction(1))
    assert none_resident.constant_value() == 4 * machine.memory.page_fault_cycles
    assert all_resident.constant_value() == 0
    with pytest.raises(ValueError):
        page_fault_cost(footprint, machine.memory, Fraction(2))


def test_aggregator_memory_integration():
    from repro.aggregate import CostAggregator

    loop, symtab, machine = _setup(STREAM)
    base = CostAggregator(machine, symtab).cost_stmts((loop,))
    with_mem = CostAggregator(
        machine, symtab,
        memory_model=MemoryCostModel(machine), include_memory=True,
    ).cost_stmts((loop,))
    assert with_mem.evaluate({"n": 1000}) > base.evaluate({"n": 1000})
