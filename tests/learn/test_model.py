"""Ridge + split-conformal model: solvers, coverage, artifacts."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.learn.model as model_mod
from repro.learn import (
    FEATURE_DIM,
    ConformalModel,
    HAVE_NUMPY,
    fit_conformal,
    load_artifact,
    save_artifact,
    solve_ridge,
)


def _synthetic(n, d=6, noise=0.5, seed=0):
    # positive weights keep targets cycle-like (non-negative): the
    # conformal interval floors its lower bound at zero, so negative
    # truths would sit below any achievable interval by construction
    rng = random.Random(seed)
    true_w = [rng.uniform(0.1, 2.0) for _ in range(d)]
    true_w[0] += 100.0
    rows, ys = [], []
    for _ in range(n):
        row = [1.0] + [rng.uniform(0, 50) for _ in range(d - 1)]
        rows.append(row)
        ys.append(sum(w * v for w, v in zip(true_w, row))
                  + rng.gauss(0, noise))
    return rows, ys, true_w


def test_ridge_recovers_linear_weights():
    rows, ys, true_w = _synthetic(200, noise=0.0)
    weights = solve_ridge(rows, ys, ridge=1e-9)
    assert max(abs(a - b) for a, b in zip(weights, true_w)) < 1e-6


@pytest.mark.skipif(not HAVE_NUMPY, reason="parity needs both solvers")
def test_fallback_solver_matches_numpy():
    rows, ys, _ = _synthetic(120, d=FEATURE_DIM, noise=1.0, seed=3)
    fast = solve_ridge(rows, ys)
    model_mod.HAVE_NUMPY = False
    try:
        slow = solve_ridge(rows, ys)
    finally:
        model_mod.HAVE_NUMPY = True
    assert max(abs(a - b) for a, b in zip(fast, slow)) < 1e-8


def test_fit_returns_none_when_too_thin():
    rows, ys, _ = _synthetic(10)
    assert fit_conformal(rows, ys) is None
    # enough points but coverage unattainable at this calibration size
    rows, ys, _ = _synthetic(30)
    assert fit_conformal(rows, ys, coverage=0.999) is None


def test_fit_rejects_bad_coverage():
    rows, ys, _ = _synthetic(60)
    with pytest.raises(ValueError):
        fit_conformal(rows, ys, coverage=1.0)


def test_interval_floors_at_zero():
    model = ConformalModel(
        fingerprint="fp", machine="power", version=1, feature_version=1,
        coverage=0.9, weights=(1.0, 0.0), quantile=100.0,
        n_train=10, n_cal=10, trained_at=0.0)
    mid, lo, hi = model.predict([5.0, 0.0])
    assert mid == 5.0 and lo == 0.0 and hi == 105.0


@given(st.sampled_from(range(20)), st.sampled_from([0.8, 0.9]))
@settings(max_examples=15, deadline=None)
def test_conformal_coverage_on_synthetic_noise(seed, coverage):
    """Property: empirical held-out coverage stays near nominal.

    The split-conformal guarantee is distribution-free, so it must
    hold on noisy synthetic data regardless of the seed.  The seed
    pool is fixed and the calibration slice large (200 points) so the
    12-point tolerance sits far outside conditional-coverage wobble.
    """
    rows_all, ys_all, _ = _synthetic(1600, noise=3.0, seed=seed)
    rows, ys = rows_all[:600], ys_all[:600]
    rows_t, ys_t = rows_all[600:], ys_all[600:]
    model = fit_conformal(rows, ys, coverage=coverage,
                          fingerprint="fp", machine="power")
    assert model is not None
    hits = 0
    for row, y in zip(rows_t, ys_t):
        _, lo, hi = model.predict(row)
        hits += lo <= y <= hi
    empirical = hits / len(ys_t)
    assert empirical >= coverage - 0.12
    assert not math.isnan(model.quantile)
    # misfit only widens intervals, never breaks the guarantee
    assert model.quantile > 0


def test_artifact_round_trip(tmp_path):
    rows, ys, _ = _synthetic(100, d=FEATURE_DIM, seed=7)
    model = fit_conformal(rows, ys, fingerprint="fp1", machine="power",
                          version=3)
    path = tmp_path / "models.json"
    save_artifact(path, {"fp1": model})
    loaded = load_artifact(path)
    assert set(loaded) == {"fp1"}
    got = loaded["fp1"]
    assert got.version == 3
    assert got.machine == "power"
    assert got.weights == model.weights
    assert got.quantile == model.quantile


def test_artifact_tolerates_garbage(tmp_path):
    path = tmp_path / "models.json"
    assert load_artifact(path) == {}            # missing
    path.write_text("{not json")
    assert load_artifact(path) == {}            # corrupt
    path.write_text('{"format": "something-else", "models": {}}')
    assert load_artifact(path) == {}            # wrong format
    path.write_text(
        '{"format": "repro-surrogate-v1", "feature_version": -1,'
        ' "models": {}}')
    assert load_artifact(path) == {}            # stale feature layout


def test_artifact_skips_wrong_width_models(tmp_path):
    rows, ys, _ = _synthetic(100, d=FEATURE_DIM)
    good = fit_conformal(rows, ys, fingerprint="good", machine="power")
    bad = ConformalModel(
        fingerprint="bad", machine="wide", version=1,
        feature_version=good.feature_version, coverage=0.9,
        weights=(1.0, 2.0), quantile=1.0, n_train=1, n_cal=1,
        trained_at=0.0)
    path = tmp_path / "models.json"
    save_artifact(path, {"good": good, "bad": bad})
    assert set(load_artifact(path)) == {"good"}
