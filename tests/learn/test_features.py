"""Feature extraction: determinism, kernel invariance, memo behavior."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    HAVE_NUMPY,
    set_arena_numpy,
    set_placement_kernel,
)
from repro.learn import (
    FEATURE_DIM,
    StaticFeatures,
    extract_static,
    feature_cache_stats,
    feature_vector,
    peek_static,
    reset_feature_cache,
)

SAXPY = """
subroutine saxpy(n, a)
  integer n, i
  real a, x(n), y(n)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end
"""

NESTED = """
subroutine nest(n, m)
  integer n, m, i, j
  real a(100), b(100), c(100)
  do i = 1, n
    do j = 1, m
      a(j) = b(j) * c(j) + a(j)
    end do
    c(i) = a(i) + 2.0
  end do
end
"""

BRANCHY = """
subroutine pick(n, t)
  integer n, i, t
  real a(n), b(n)
  do i = 1, n
    if (t .gt. 0) then
      a(i) = a(i) * 2.0
    else
      b(i) = b(i) + 1.0
    end if
  end do
end
"""

PROGRAMS = {"saxpy": SAXPY, "nested": NESTED, "branchy": BRANCHY}


@pytest.fixture(autouse=True)
def _fresh_memo():
    reset_feature_cache()
    yield
    reset_feature_cache()


def test_static_features_shape():
    static = extract_static(NESTED, "power")
    assert isinstance(static, StaticFeatures)
    assert static.variables == {"n", "m"}
    assert len(static.blocks) >= 2
    x = feature_vector(static, {"n": Fraction(8), "m": Fraction(4)})
    assert len(x) == FEATURE_DIM
    assert x[0] == 1.0          # bias


def test_vector_scales_with_trip_counts():
    static = extract_static(SAXPY, "power")
    small = feature_vector(static, {"n": 10})
    large = feature_vector(static, {"n": 1000})
    # Weighted slots grow with the trip count; structural slots do not.
    assert sum(large[1:]) > sum(small[1:])
    assert large[-1] == small[-1]


def test_unbound_variables_return_none():
    static = extract_static(NESTED, "power")
    assert feature_vector(static, {"n": 4}) is None
    assert feature_vector(static, {}) is None


def test_empty_trip_count_clamps_to_zero():
    static = extract_static(SAXPY, "power")
    empty = feature_vector(static, {"n": 0})
    negative = feature_vector(static, {"n": -5})
    assert empty == negative    # both clamp the loop away entirely


def test_memo_hits_and_peek():
    assert peek_static(SAXPY, "power") is None      # cold: memo only
    static = extract_static(SAXPY, "power")
    assert peek_static(SAXPY, "power") is static    # warmed by extract
    assert extract_static(SAXPY, "power") is static
    stats = feature_cache_stats()
    assert stats["hits"] >= 1 and stats["misses"] == 1


def test_unknown_machine_raises_keyerror():
    with pytest.raises(KeyError):
        extract_static(SAXPY, "no-such-machine")
    assert peek_static(SAXPY, "no-such-machine") is None


def test_machine_changes_features():
    power = extract_static(SAXPY, "power")
    scalar = extract_static(SAXPY, "scalar")
    assert power.fingerprint != scalar.fingerprint
    a = feature_vector(power, {"n": 16})
    b = feature_vector(scalar, {"n": 16})
    assert a != b


# ----------------------------------------------------------------------
# kernel / lowering invariance (the fast tier must answer identically
# regardless of which exact-path kernel the process is configured with)


@pytest.mark.parametrize("name,source", sorted(PROGRAMS.items()))
def test_features_identical_across_placement_kernels(name, source):
    vectors = {}
    for kernel in ("legacy", "fused", "arena"):
        previous = set_placement_kernel(kernel)
        try:
            reset_feature_cache()
            static = extract_static(source, "power")
            vectors[kernel] = (
                static.digest,
                static.base,
                tuple((str(w), vec) for w, vec in static.blocks),
            )
        finally:
            set_placement_kernel(previous)
    assert vectors["legacy"] == vectors["fused"] == vectors["arena"]


@pytest.mark.skipif(not HAVE_NUMPY, reason="needs numpy for both lowerings")
def test_features_identical_across_arena_lowerings():
    outs = {}
    for enabled in (False, True):
        previous = set_arena_numpy(enabled)
        try:
            reset_feature_cache()
            static = extract_static(NESTED, "power")
            outs[enabled] = feature_vector(static, {"n": 12, "m": 7})
        finally:
            set_arena_numpy(previous)
    assert outs[False] == outs[True]


@given(
    st.sampled_from(sorted(PROGRAMS)),
    st.integers(0, 200),
    st.integers(0, 200),
    st.sampled_from(["legacy", "fused", "arena"]),
)
@settings(max_examples=60, deadline=None)
def test_vector_bit_identical_under_kernel_property(name, n, m, kernel):
    """Property: the full vector at any point is bit-identical whatever
    placement kernel is active -- features never run placement."""
    source = PROGRAMS[name]
    bindings = {"n": n, "m": m, "t": 1}
    reset_feature_cache()
    baseline = feature_vector(extract_static(source, "power"), bindings)
    previous = set_placement_kernel(kernel)
    try:
        reset_feature_cache()
        static = extract_static(source, "power")
        assert feature_vector(static, bindings) == baseline
    finally:
        set_placement_kernel(previous)


@given(st.sampled_from(sorted(PROGRAMS)), st.integers(1, 500),
       st.integers(1, 500))
@settings(max_examples=60, deadline=None)
def test_extraction_deterministic_property(name, n, m):
    source = PROGRAMS[name]
    reset_feature_cache()
    first = feature_vector(extract_static(source, "power"),
                           {"n": n, "m": m, "t": 0})
    reset_feature_cache()
    second = feature_vector(extract_static(source, "power"),
                            {"n": n, "m": m, "t": 0})
    assert first == second
