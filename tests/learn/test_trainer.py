"""Surrogate lifecycle: harvest, retrain, drift, persistence, bootstrap."""

import json

import pytest

from repro.learn import Surrogate, SurrogateConfig, train_from_cache
from repro.service.protocol import PredictRequest

SAXPY = """
subroutine saxpy(n, a)
  integer n, i
  real a, x(n), y(n)
  do i = 1, n
    y(i) = y(i) + a * x(i)
  end do
end
"""

TRIAD = """
subroutine triad(n)
  integer n, i
  real a(n), b(n), c(n)
  do i = 1, n
    a(i) = b(i) + 2.0 * c(i)
  end do
end
"""


def _request(n, *, fidelity="fast", tolerance=None, source=SAXPY):
    return PredictRequest(
        source=source, machine="power", bindings={"n": n},
        fidelity=fidelity, tolerance=tolerance)


def _truth(n, *, slope=12.0, fixed=30.0):
    return fixed + slope * n


def _harvest(surrogate, sizes, truth=_truth, source=SAXPY):
    for n in sizes:
        surrogate.observe(_request(n, source=source), truth(n))
    surrogate.drain()


def _inline_surrogate(**overrides):
    config = SurrogateConfig(background=False, min_samples=20,
                             retrain_every=10_000, **overrides)
    return Surrogate(config)


def test_cold_surrogate_falls_through():
    surrogate = _inline_surrogate()
    assert surrogate.serve(_request(16)) is None
    stats = surrogate.stats()
    assert stats["served"] == 0
    assert stats["fallthrough"] >= 1


def test_harvest_then_serve_with_interval():
    surrogate = _inline_surrogate()
    _harvest(surrogate, range(1, 41))
    response = surrogate.serve(_request(25))
    assert response is not None
    assert response["fidelity"] == "fast"
    assert response["cached"] is False
    assert response["model_version"] == 1
    lo, hi = response["interval"]
    mid = float(response["cycles"])
    assert lo <= mid <= hi
    # the truth is exactly linear in the features, so the fit is tight
    assert abs(mid - _truth(25)) < 1.0


def test_auto_refuses_wide_interval():
    surrogate = _inline_surrogate()
    _harvest(surrogate, range(1, 41))
    assert surrogate.serve(_request(25, fidelity="auto",
                                    tolerance=1e-9)) is None
    assert surrogate.serve(_request(25, fidelity="auto",
                                    tolerance=10.0)) is not None
    reasons = surrogate.stats()["fallthrough_reasons"]
    assert reasons.get("wide_interval", 0) >= 1


def test_exact_requests_never_served():
    surrogate = _inline_surrogate()
    _harvest(surrogate, range(1, 41))
    # serving policy lives in the engine; the surrogate itself still
    # refuses requests without bindings regardless of model state
    assert surrogate.serve(PredictRequest(source=SAXPY, machine="power",
                                          fidelity="fast")) is None


def test_drift_triggers_retrain():
    # threshold 3.0: in-distribution |err|/half-width hovers near the
    # coverage quantile (ratio ~<1) and must NOT trigger; a regime
    # shift pushes the ratio to the hundreds and must.
    surrogate = _inline_surrogate(drift_threshold=3.0, drift_window=8)
    _harvest(surrogate, range(1, 41))
    baseline = surrogate.stats()["retrains"]
    assert baseline == 1
    version = surrogate.serve(_request(30))["model_version"]
    # shift the world: same programs, radically different costs
    _harvest(surrogate, range(41, 61),
             truth=lambda n: _truth(n, slope=400.0, fixed=9000.0))
    stats = surrogate.stats()
    assert stats["retrains"] > baseline
    response = surrogate.serve(_request(50))
    assert response is not None
    assert response["model_version"] > version


def test_artifact_persists_and_reloads(tmp_path):
    store = tmp_path / "surrogate.json"
    surrogate = _inline_surrogate(store=str(store))
    _harvest(surrogate, range(1, 41))
    assert surrogate.serve(_request(12)) is not None
    surrogate.close()
    assert store.exists()

    warm = _inline_surrogate(store=str(store))
    response = warm.serve(_request(12))
    assert response is not None
    assert response["model_version"] == 1


def test_multiple_programs_one_model():
    surrogate = _inline_surrogate()
    _harvest(surrogate, range(1, 31))
    _harvest(surrogate, range(1, 31), source=TRIAD,
             truth=lambda n: 50.0 + 9.0 * n)
    # joint refit over the shared reservoir so both programs' feature
    # directions are in the fit (the first model saw only saxpy data)
    surrogate.train_now()
    for source, truth in ((SAXPY, _truth),
                          (TRIAD, lambda n: 50.0 + 9.0 * n)):
        response = surrogate.serve(_request(20, source=source))
        assert response is not None
        assert abs(float(response["cycles"]) - truth(20)) < 5.0


def test_background_thread_drains_queue():
    config = SurrogateConfig(background=True, min_samples=20,
                             retrain_every=10_000)
    surrogate = Surrogate(config)
    try:
        for n in range(1, 41):
            surrogate.observe(_request(n), _truth(n))
        surrogate.drain()
        assert surrogate.serve(_request(10)) is not None
    finally:
        surrogate.close()


def test_train_from_cache_bootstrap(tmp_path):
    cache_path = tmp_path / "cache.jsonl"
    lines = []
    for n in range(1, 41):
        lines.append(json.dumps({
            "key": f"predict|whatever|{n}",
            "value": {"cycles": str(_truth(n))},
            "ts": 1.0,
            "req": {"source": SAXPY, "machine": "power",
                    "backend": "auto", "include_memory": False,
                    "bindings": {"n": str(n)}},
        }))
    lines.append(json.dumps({"key": "parse|x", "value": {}, "ts": 1.0}))
    lines.append("not json at all")
    cache_path.write_text("\n".join(lines) + "\n")

    store = tmp_path / "models.json"
    summary = train_from_cache(str(cache_path), store=str(store))
    assert summary["samples"] == 40
    assert summary["skipped"] >= 1
    assert "power" in summary["models"]
    assert store.exists()

    warm = _inline_surrogate(store=str(store))
    assert warm.serve(_request(20)) is not None


def test_train_from_cache_empty(tmp_path):
    cache_path = tmp_path / "cache.jsonl"
    cache_path.write_text("")
    summary = train_from_cache(str(cache_path),
                               store=str(tmp_path / "m.json"))
    assert summary["samples"] == 0
    assert summary["models"] == {}


def test_stats_shape():
    surrogate = _inline_surrogate()
    stats = surrogate.stats()
    for key in ("served", "fallthrough", "retrains", "samples",
                "models", "fallthrough_reasons"):
        assert key in stats
