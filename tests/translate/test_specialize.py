"""Tests for level-1 specialization and level-2 atomic mapping."""

import pytest

from repro.ir import IntConst, SymbolTable, parse_expression
from repro.ir.types import ScalarType
from repro.machine import get_machine, power_machine, scalar_machine
from repro.translate import (
    UnsupportedOperation,
    power_expansion,
    resolve_basic_op,
    specialize_binop,
    specialize_intrinsic,
    specialize_unop,
)

INT = ScalarType.INTEGER
REAL = ScalarType.REAL
DOUBLE = ScalarType.DOUBLE


def test_arith_specialization_by_type():
    assert specialize_binop("+", INT, INT) == ["iadd"]
    assert specialize_binop("+", REAL, REAL) == ["fadd"]
    assert specialize_binop("+", INT, REAL) == ["fadd"]
    assert specialize_binop("+", REAL, DOUBLE) == ["dadd"]
    assert specialize_binop("/", INT, INT) == ["idiv"]
    assert specialize_binop("-", DOUBLE, DOUBLE) == ["dsub"]


def test_integer_multiply_value_specialization():
    """Paper: multiplier in [-128, 127] uses the 3-cycle multiply."""
    assert specialize_binop("*", INT, INT, IntConst(5)) == ["imul_small"]
    assert specialize_binop("*", INT, INT, IntConst(127)) == ["imul_small"]
    assert specialize_binop("*", INT, INT, IntConst(128)) == ["imul"]
    assert specialize_binop("*", INT, INT, IntConst(-128)) == ["imul_small"]
    assert specialize_binop("*", INT, INT, IntConst(-129)) == ["imul"]
    # Unknown multiplier: general multiply.
    assert specialize_binop("*", INT, INT, parse_expression("n")) == ["imul"]
    # Float multiply is never value-specialized.
    assert specialize_binop("*", REAL, REAL, IntConst(2)) == ["fmul"]


def test_comparison_specialization():
    assert specialize_binop(".lt.", INT, INT) == ["icmp"]
    assert specialize_binop(".eq.", REAL, INT) == ["fcmp"]
    assert specialize_binop(".ge.", DOUBLE, REAL) == ["dcmp"]


def test_logical_specialization():
    assert specialize_binop(".and.", ScalarType.LOGICAL, ScalarType.LOGICAL) == ["land"]
    assert specialize_binop(".or.", ScalarType.LOGICAL, ScalarType.LOGICAL) == ["lor"]
    assert specialize_unop(".not.", ScalarType.LOGICAL) == ["lnot"]
    assert specialize_unop("-", REAL) == ["fneg"]


def test_power_expansion():
    assert power_expansion(REAL, IntConst(0)) == []
    assert power_expansion(REAL, IntConst(1)) == []
    assert power_expansion(REAL, IntConst(2)) == ["fmul"]
    assert power_expansion(REAL, IntConst(3)) == ["fmul", "fmul"]
    assert power_expansion(REAL, IntConst(4)) == ["fmul", "fmul"]
    assert power_expansion(REAL, IntConst(8)) == ["fmul"] * 3
    assert power_expansion(INT, IntConst(2)) == ["imul"]
    # Non-constant or large exponents call the runtime.
    assert power_expansion(REAL, parse_expression("n")) == ["call"]
    assert power_expansion(REAL, IntConst(20)) == ["call"]


def test_intrinsic_specialization():
    table = SymbolTable()
    e = parse_expression
    assert specialize_intrinsic("sqrt", table, (e("x"),)) == ["fsqrt"]
    assert specialize_intrinsic("abs", table, (e("i"),)) == ["iabs"]
    assert specialize_intrinsic("abs", table, (e("x"),)) == ["fabs"]
    assert specialize_intrinsic("max", table, (e("x"), e("y"))) == ["fmax"]
    assert specialize_intrinsic("max", table, (e("x"), e("y"), e("z"))) == ["fmax"] * 2
    assert specialize_intrinsic("mod", table, (e("i"), e("j"))) == ["idiv", "imul", "isub"]
    assert specialize_intrinsic("sin", table, (e("x"),)) == ["call"]
    assert specialize_intrinsic("myfunc", table, (e("x"),)) == ["call"]


def test_conversion_specialization():
    table = SymbolTable()
    e = parse_expression
    assert specialize_intrinsic("int", table, (e("x"),)) == ["cvt_fi"]
    assert specialize_intrinsic("int", table, (e("i"),)) == []
    assert specialize_intrinsic("real", table, (e("i"),)) == ["cvt_if"]
    assert specialize_intrinsic("real", table, (e("x"),)) == []
    assert specialize_intrinsic("dble", table, (e("x"),)) == ["cvt_fd"]


def test_resolve_basic_op_direct():
    machine = power_machine()
    assert resolve_basic_op(machine, "fadd") == ("fpu_arith",)
    assert resolve_basic_op(machine, "fma") == ("fpu_arith",)
    assert resolve_basic_op(machine, "imul_small") == ("fxu_mul3",)


def test_resolve_basic_op_fallback():
    """fma on the scalar machine decomposes to multiply + add."""
    machine = scalar_machine()
    assert resolve_basic_op(machine, "fma") == ("alu_fmul", "alu_fadd")
    assert resolve_basic_op(machine, "imul_small") == ("alu_imul",)


def test_resolve_basic_op_errors():
    machine = power_machine()
    with pytest.raises(UnsupportedOperation):
        resolve_basic_op(machine, "frobnicate")


def test_resolution_covers_vocabulary_everywhere():
    from repro.translate import ALL_BASIC_OPS

    for name in ("power", "scalar", "wide"):
        machine = get_machine(name)
        for op in sorted(ALL_BASIC_OPS):
            atomics = resolve_basic_op(machine, op)
            assert atomics, f"{op} on {name}"
            for atomic in atomics:
                assert atomic in machine.table
