"""Tests for pattern recognition, register pressure, and streams."""

import pytest

from repro.ir import parse_fragment
from repro.translate import (
    InstrStream,
    RegisterPressure,
    carried_scalar_chain,
    find_reductions,
    is_axpy_loop,
    is_inner_product_loop,
)
from repro.translate.stream import Instr, reindex


# -- pattern recognition ------------------------------------------------------

def test_find_scalar_sum_reduction():
    stmts = parse_fragment("s = s + a(i)\n")
    (red,) = find_reductions(stmts)
    assert red.target == "s" and red.op == "+"


def test_find_reversed_operand_reduction():
    stmts = parse_fragment("s = a(i) + s\n")
    (red,) = find_reductions(stmts)
    assert red.target == "s"


def test_find_product_reduction():
    stmts = parse_fragment("p = p * a(i)\n")
    (red,) = find_reductions(stmts)
    assert red.op == "*"


def test_subtraction_reduction_only_left():
    assert find_reductions(parse_fragment("s = s - a(i)\n"))
    # s = a(i) - s is NOT an accumulation (sign alternates).
    assert not find_reductions(parse_fragment("s = a(i) - s\n"))


def test_array_element_reduction():
    stmts = parse_fragment("c(i,j) = c(i,j) + a(i,k) * b(k,j)\n")
    (red,) = find_reductions(stmts)
    assert red.target.startswith("array:c")


def test_self_referencing_rhs_rejected():
    # s appears inside the added expression too: not a simple reduction.
    assert not find_reductions(parse_fragment("s = s + s * a(i)\n"))


def test_is_inner_product_loop():
    (loop,) = parse_fragment(
        "do i = 1, n\n  s = s + a(i) * b(i)\nend do\n"
    )
    assert is_inner_product_loop(loop)
    (not_ip,) = parse_fragment("do i = 1, n\n  s = s + a(i)\nend do\n")
    assert not is_inner_product_loop(not_ip)
    (two_stmt,) = parse_fragment(
        "do i = 1, n\n  s = s + a(i) * b(i)\n  x = 1.0\nend do\n"
    )
    assert not is_inner_product_loop(two_stmt)


def test_is_axpy_loop():
    (loop,) = parse_fragment(
        "do i = 1, n\n  y(i) = y(i) + alpha * x(i)\nend do\n"
    )
    assert is_axpy_loop(loop)
    (other,) = parse_fragment("do i = 1, n\n  y(i) = x(i)\nend do\n")
    assert not is_axpy_loop(other)


def test_carried_scalar_chain():
    assert carried_scalar_chain(parse_fragment("s = s * 0.5\n"))
    assert carried_scalar_chain(parse_fragment("t = s\ns = t + 1.0\n"))
    assert not carried_scalar_chain(parse_fragment("a(i) = b(i)\n"))
    # Write-only scalar: no chain.
    assert not carried_scalar_chain(parse_fragment("s = a(i)\n"))


# -- register pressure ----------------------------------------------------------

def test_register_pressure_no_spill_under_budget():
    regs = RegisterPressure(fp_budget=8, int_budget=8)
    for i in range(4):  # budget - reserved = 4
        assert regs.note_load(f"v{i}", is_float=True) is None
    assert regs.spills == 0


def test_register_pressure_spills_fifo():
    regs = RegisterPressure(fp_budget=8, int_budget=8)
    for i in range(5):
        regs.note_load(f"v{i}", is_float=True)
    assert regs.spills == 1
    # v0 was evicted first.
    assert "v0" not in regs.fp_live


def test_register_pressure_duplicate_load_free():
    regs = RegisterPressure(fp_budget=8, int_budget=8)
    regs.note_load("x", True)
    assert regs.note_load("x", True) is None
    assert len(regs.fp_live) == 1


def test_register_pressure_pools_are_separate():
    regs = RegisterPressure(fp_budget=8, int_budget=8)
    for i in range(4):
        regs.note_load(f"f{i}", True)
        regs.note_load(f"i{i}", False)
    assert regs.spills == 0


def test_register_pressure_forget():
    regs = RegisterPressure(fp_budget=8, int_budget=8)
    regs.note_load("x", True)
    regs.forget("x")
    assert "x" not in regs.fp_live


# -- instruction streams -------------------------------------------------------

def test_instr_validation():
    with pytest.raises(ValueError):
        Instr(1, "fadd", deps=(1,))   # self-dep
    with pytest.raises(ValueError):
        Instr(1, "fadd", deps=(2,))   # forward dep
    with pytest.raises(ValueError):
        Instr(0, "fadd", deps=(-1,))


def test_stream_append_and_query():
    stream = InstrStream(machine_name="power", label="b")
    a = stream.append("lsu_load", tag="load x")
    b = stream.append("fpu_arith", (a.index,), one_time=True)
    assert len(stream) == 2
    assert stream[1].one_time
    assert stream.counts() == {"lsu_load": 1, "fpu_arith": 1}
    assert len(stream.iterative()) == 1
    assert len(stream.one_time()) == 1
    listing = stream.listing()
    assert "load x" in listing and "power" in listing


def test_reindex_drops_external_deps():
    instrs = [
        Instr(0, "lsu_load"),
        Instr(2, "fpu_arith", deps=(0, 1)),  # dep 1 not in list
    ]
    dense = reindex(instrs)
    assert [i.index for i in dense] == [0, 1]
    assert dense[1].deps == (0,)


def test_reindex_preserves_one_time():
    instrs = [Instr(3, "lsu_load", one_time=True)]
    assert reindex(instrs)[0].one_time
