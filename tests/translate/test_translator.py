"""Tests for the translator: imitated back-end optimizations."""

import pytest

from repro.ir import SymbolTable, parse_fragment, parse_program
from repro.machine import power_machine, scalar_machine
from repro.translate import (
    AGGRESSIVE_BACKEND,
    NAIVE_BACKEND,
    BackendFlags,
    Translator,
)

PROGRAM = """
program t
  integer n, i, j, k, idx(n)
  real a(n,n), b(n,n), c(n,n), x(n), y(n), s, alpha
  s = 0.0
end
"""


def _translator(machine=None, flags=AGGRESSIVE_BACKEND):
    prog = parse_program(PROGRAM)
    return Translator(machine or power_machine(),
                      SymbolTable.from_program(prog), flags)


def _atomics(info):
    return [i.atomic for i in info.stream]


def test_simple_assign_emits_loads_fma_store():
    tr = _translator()
    stmts = parse_fragment("c(i,j) = c(i,j) + a(i,k) * b(k,j)\n")
    info = tr.translate_block(stmts, loop_indices=("i", "j"))
    atomics = _atomics(info)
    # 3 loads, one fused multiply-add, one store.
    assert atomics.count("lsu_load") == 3
    assert atomics.count("fpu_arith") == 1
    assert atomics.count("fpu_store") == 1


def test_fma_not_fused_without_flag():
    tr = _translator(flags=AGGRESSIVE_BACKEND.without(fuse_fma=True))
    stmts = parse_fragment("x(i) = x(i) + alpha * y(i)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    atomics = _atomics(info)
    # Separate multiply and add on the FPU.
    assert atomics.count("fpu_arith") == 2


def test_fma_falls_back_on_machine_without_it():
    tr = _translator(machine=scalar_machine())
    stmts = parse_fragment("x(i) = x(i) + alpha * y(i)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    atomics = _atomics(info)
    assert "alu_fmul" in atomics and "alu_fadd" in atomics


def test_cse_shares_subexpression():
    tr = _translator()
    stmts = parse_fragment("x(i) = a(i,j) * b(i,j) + a(i,j) * b(i,j)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    # a*b computed once: loads 2, one mul... but the outer + fuses with
    # the (cached) mul, so expect 2 loads and 2 FPU ops at most.
    assert _atomics(info).count("lsu_load") == 2


def test_cse_off_recomputes():
    on = _translator()
    off = _translator(flags=AGGRESSIVE_BACKEND.without(cse=True, fuse_fma=True))
    stmts = parse_fragment("x(i) = (a(i,j) + b(i,j)) * (a(i,j) + b(i,j))\n")
    with_cse = on.translate_block(stmts, loop_indices=("i",))
    without = off.translate_block(stmts, loop_indices=("i",))
    fpu = lambda info: _atomics(info).count("fpu_arith")
    assert fpu(with_cse) < fpu(without)


def test_register_reuse_of_scalars():
    tr = _translator()
    stmts = parse_fragment("x(i) = alpha * a(i,j)\ny(i) = alpha * b(i,j)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    # alpha loaded once only.
    tags = [i.tag for i in info.stream]
    assert tags.count("load alpha") == 1


def test_licm_marks_invariant_one_time():
    tr = _translator()
    stmts = parse_fragment("x(i) = a(j,k) * x(i)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    one_time_tags = [i.tag for i in info.stream if i.one_time]
    assert any("a(j, k)" in t for t in one_time_tags)
    # The multiply itself varies with x(i): stays iterative.
    assert not all(i.one_time for i in info.stream)


def test_licm_off():
    tr = _translator(flags=AGGRESSIVE_BACKEND.without(licm=True))
    stmts = parse_fragment("x(i) = a(j,k) * x(i)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    assert not any(i.one_time for i in info.stream)


def test_scalar_reduction_registerized():
    tr = _translator()
    stmts = parse_fragment("s = s + x(i) * y(i)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    assert len(info.reductions) == 1
    assert info.carried_latency == 2  # FMA latency on POWER
    # Accumulator load and post-loop store are one-time.
    one_time = [i for i in info.stream if i.one_time]
    assert any("acc" in i.tag for i in one_time)
    assert any("post-loop" in i.tag for i in one_time)
    # Iterative part: two loads + one FMA only.
    iterative = [i for i in info.stream if not i.one_time]
    assert len(iterative) == 3


def test_array_accumulator_registerized_when_invariant():
    """c(i,j) accumulating over innermost k behaves like a register."""
    tr = _translator()
    stmts = parse_fragment("c(i,j) = c(i,j) + a(i,k) * b(k,j)\n")
    info = tr.translate_block(stmts, loop_indices=("i", "j", "k"))
    assert len(info.reductions) == 1
    iterative = [i for i in info.stream if not i.one_time]
    # 2 loads (a, b) + 1 FMA; c load and store are one-time.
    assert len(iterative) == 3


def test_moving_target_not_treated_as_accumulator():
    """c(i) += ... over loop index i is elementwise, not a reduction."""
    tr = _translator()
    stmts = parse_fragment("c(i,1) = c(i,1) + a(i,1) * b(i,1)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    assert info.reductions == []
    assert info.carried_latency == 0
    atomics = _atomics(info)
    assert atomics.count("fpu_store") == 1
    assert not any(i.one_time for i in info.stream)


def test_non_reduction_scalar_chain_detected():
    tr = _translator()
    stmts = parse_fragment("s = x(i) - s * s\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    assert info.has_carried_chain


def test_dce_removes_unused_value():
    tr = _translator()
    # y is assigned but never used nor stored (registerized scalars).
    stmts = parse_fragment("y(i) = a(i,j)\nx(i) = b(i,j)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    # Both have stores (arrays): nothing dead here.
    assert _atomics(info).count("fpu_store") == 2
    # A computed-but-unused scalar is dead with dce on:
    stmts2 = parse_fragment("s = a(i,j) * b(i,j)\nx(i) = a(i,j)\n")
    info2 = tr.translate_block(stmts2, loop_indices=("i",))
    # s's value is live-out (could be used after block): NOT removed.
    assert _atomics(info2).count("fpu_arith") == 1


def test_dce_removes_orphan_condition_work():
    """Dead arithmetic with no users vanishes under dce."""
    tr_on = _translator()
    tr_off = _translator(flags=AGGRESSIVE_BACKEND.without(dce=True))
    # Emit a condition stream then drop the branch dep chain artificially:
    # simplest observable: subscript arithmetic of an unused load is dead
    # once its load is dead.  Build via translate_condition which keeps
    # the branch alive -- then nothing is dead.  So instead check that
    # dce is a no-op when everything is live.
    stmts = parse_fragment("x(i) = a(i,j) + 1.0\n")
    assert len(tr_on.translate_block(stmts, ("i",)).stream) == len(
        tr_off.translate_block(stmts, ("i",)).stream
    )


def test_naive_backend_stores_scalars():
    tr = _translator(flags=NAIVE_BACKEND)
    stmts = parse_fragment("s = x(i) + 1.0\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    assert _atomics(info).count("fpu_store") == 1


def test_non_affine_subscript_charged():
    """Indirect addressing x(idx(i)) costs the idx load."""
    tr = _translator()
    stmts = parse_fragment("s = s + x(idx(i))\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    loads = [i for i in info.stream if i.atomic == "lsu_load" and not i.one_time]
    # idx(i) load + x(...) load.
    assert len(loads) == 2


def test_affine_subscript_free():
    tr = _translator()
    stmts = parse_fragment("y(i) = x(2*i+1)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    # Only the x load and y store; no integer ops for the subscript.
    atomics = _atomics(info)
    assert "fxu_mul3" not in atomics and "fxu_mul5" not in atomics
    assert atomics.count("fxu_add") == 0


def test_non_affine_without_strength_reduction():
    tr = _translator(
        flags=AGGRESSIVE_BACKEND.without(strength_reduce_addressing=True)
    )
    stmts = parse_fragment("y(i) = x(2*i+1)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    atomics = _atomics(info)
    # Subscript arithmetic now costs integer ops.
    assert "fxu_mul3" in atomics or "fxu_add" in atomics


def test_store_load_forwarding():
    tr = _translator()
    stmts = parse_fragment("x(i) = a(i,j) + 1.0\ny(i) = x(i) * 2.0\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    # x(i) is forwarded from the store: only the a(i,j) load happens.
    assert _atomics(info).count("lsu_load") == 1


def test_aliasing_load_ordered_after_store():
    tr = _translator()
    stmts = parse_fragment("x(i) = 1.0\ns = s + x(j)\n")
    info = tr.translate_block(stmts, loop_indices=("i",))
    load_xj = next(i for i in info.stream if "x(j)" in i.tag)
    store_xi = next(i for i in info.stream if i.tag == "store x(i)")
    assert store_xi.index in load_xj.deps


def test_call_statement():
    tr = _translator()
    stmts = parse_fragment("call dgemm(a, b, c)\n")
    info = tr.translate_block(stmts)
    assert info.external_calls == ["dgemm"]
    assert "call_overhead" in _atomics(info)


def test_loop_overhead():
    tr = _translator()
    info = tr.loop_overhead()
    atomics = _atomics(info)
    assert atomics.count("fxu_add") == 1
    assert "branch" in atomics


def test_translate_condition():
    tr = _translator()
    from repro.ir import parse_expression

    info = tr.translate_condition(parse_expression("i .le. k"), ("i",))
    atomics = _atomics(info)
    assert "fxu_cmp" in atomics or "cr_logic" in atomics
    assert "branch" in atomics


def test_register_pressure_spills():
    """More live loads than registers forces spill stores."""
    prog_lines = ["program big", "  real " + ", ".join(f"v{i}" for i in range(40))]
    prog_lines.append("  real acc")
    body = "acc = " + " + ".join(f"v{i}" for i in range(40))
    prog = parse_program("\n".join(prog_lines) + f"\n  {body}\nend\n")
    tr = Translator(power_machine(), SymbolTable.from_program(prog))
    info = tr.translate_block(parse_fragment(body + "\n"))
    assert info.spills > 0
    assert any("spill" in i.tag for i in info.stream)


def test_rejects_control_flow():
    tr = _translator()
    with pytest.raises(TypeError):
        tr.translate_block(parse_fragment("do i = 1, 10\n x = 1\nend do\n"))


def test_flags_without():
    flags = BackendFlags().without(cse=True)
    assert not flags.cse and flags.licm
