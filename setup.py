"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires bdist_wheel; offline boxes without the
wheel package can instead run `python setup.py develop`.
"""

from setuptools import setup

setup()
